"""Glushkov position automaton and subset-construction DFA.

Construction follows the classic ``nullable`` / ``first`` / ``last`` /
``follow`` scheme (Aho, Sethi, Ullman — the paper's reference [2]): each
symbol occurrence becomes a numbered *position*; ``follow`` links give the
NFA transitions; subset construction keyed by a caller-supplied key
function yields the DFA used for matching and for the determinism check.

NFA shape (states = positions plus a start state ``q0``):

* ``q0 --a--> q``  iff ``q ∈ first``  and ``key(q) = a``,
* ``p  --a--> q``  iff ``q ∈ follow(p)`` and ``key(q) = a``,
* accepting: ``q0`` iff the regex is nullable, and every ``q ∈ last``.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.automata.rex import (
    Alternation,
    Empty,
    Epsilon,
    Regex,
    Repetition,
    Sequence,
    Symbol,
    UNBOUNDED,
    check_budget,
)

KeyFunction = Callable[[Any], Hashable]

_START = -1  # the q0 pseudo-position


class DfaBuildError(ReproError):
    """The regex could not be turned into a DFA."""


class NondeterminismError(DfaBuildError):
    """Two competing particles match the same key from one state.

    For XML this violates the deterministic-content-model rule of DTDs
    and the Unique Particle Attribution constraint of XML Schema.
    """


@dataclass
class _Facts:
    nullable: bool
    first: frozenset[int]
    last: frozenset[int]


class _Analysis:
    """One pass computing positions and the Glushkov functions."""

    def __init__(self) -> None:
        self.payloads: list[Any] = []
        self.follow: dict[int, set[int]] = {}

    def new_position(self, payload: Any) -> int:
        position = len(self.payloads)
        self.payloads.append(payload)
        self.follow[position] = set()
        return position

    def analyze(self, regex: Regex) -> _Facts:
        if isinstance(regex, Empty):
            return _Facts(False, frozenset(), frozenset())
        if isinstance(regex, Epsilon):
            return _Facts(True, frozenset(), frozenset())
        if isinstance(regex, Symbol):
            position = self.new_position(regex.payload)
            singleton = frozenset({position})
            return _Facts(False, singleton, singleton)
        if isinstance(regex, Sequence):
            facts = _Facts(True, frozenset(), frozenset())
            for part in regex.parts:
                part_facts = self.analyze(part)
                for last_position in facts.last:
                    self.follow[last_position] |= part_facts.first
                first = (
                    facts.first | part_facts.first if facts.nullable else facts.first
                )
                last = (
                    facts.last | part_facts.last
                    if part_facts.nullable
                    else part_facts.last
                )
                facts = _Facts(facts.nullable and part_facts.nullable, first, last)
            return facts
        if isinstance(regex, Alternation):
            nullable = False
            first: frozenset[int] = frozenset()
            last: frozenset[int] = frozenset()
            for alternative in regex.alternatives:
                alt_facts = self.analyze(alternative)
                nullable = nullable or alt_facts.nullable
                first |= alt_facts.first
                last |= alt_facts.last
            return _Facts(nullable, first, last)
        if isinstance(regex, Repetition):
            # Regex.expanded() leaves only {0,1} and {0|1, UNBOUNDED} here.
            child_facts = self.analyze(regex.child)
            if regex.max_occurs == UNBOUNDED:
                for last_position in child_facts.last:
                    self.follow[last_position] |= child_facts.first
                nullable = regex.min_occurs == 0 or child_facts.nullable
                return _Facts(nullable, child_facts.first, child_facts.last)
            return _Facts(True, child_facts.first, child_facts.last)
        raise DfaBuildError(f"unknown regex node {type(regex).__name__}")


class Dfa:
    """Deterministic automaton over keys, retaining symbol payloads.

    ``transitions[state][key] -> (next_state, payload)``; the payload is
    the particle (element declaration, V-DOM interface, ...) that consumed
    the key, letting validators attribute children to particles.
    """

    def __init__(
        self,
        transitions: list[dict[Hashable, tuple[int, Any]]],
        accepting: frozenset[int],
    ):
        self.transitions = transitions
        self.accepting = accepting
        self._expected: dict[int, list[Hashable]] = {}

    @property
    def start_state(self) -> int:
        return 0

    def matcher(self) -> Matcher:
        return Matcher(self)

    def accepts(self, keys: list[Hashable]) -> bool:
        """Full-word match convenience."""
        matcher = self.matcher()
        for key in keys:
            if matcher.step(key) is None:
                return False
        return matcher.at_accepting_state()

    def state_count(self) -> int:
        return len(self.transitions)

    def expected_keys(self, state: int) -> list[Hashable]:
        # Sorting the alphabet by repr on every call sat on the checker's
        # expected-names error path; the transition map is immutable after
        # construction, so memoize the sorted listing per state.
        cached = self._expected.get(state)
        if cached is None:
            cached = sorted(self.transitions[state], key=repr)
            self._expected[state] = cached
        return cached


class Matcher:
    """Stateful single-word runner over a :class:`Dfa`."""

    def __init__(self, dfa: Dfa):
        self._dfa = dfa
        self.state = dfa.start_state

    def step(self, key: Hashable) -> Any | None:
        """Consume *key*; return the matched payload or ``None`` on failure.

        A failed step leaves the state unchanged so the caller can still
        ask :meth:`expected` what would have been acceptable.
        """
        entry = self._dfa.transitions[self.state].get(key)
        if entry is None:
            return None
        self.state, payload = entry
        return payload

    def at_accepting_state(self) -> bool:
        return self.state in self._dfa.accepting

    def expected(self) -> list[Hashable]:
        """Keys acceptable in the current state (for error messages)."""
        return self._dfa.expected_keys(self.state)

    def reset(self) -> None:
        self.state = self._dfa.start_state


def build_dfa(
    regex: Regex,
    key: KeyFunction = lambda payload: payload,
    require_deterministic: bool = False,
    position_budget: int = 4096,
) -> Dfa:
    """Compile *regex* to a :class:`Dfa`.

    With ``require_deterministic`` the builder raises
    :class:`NondeterminismError` whenever two *distinct* positions compete
    for the same key out of one state — the UPA / deterministic content
    model check.  Without it, subset construction resolves the ambiguity
    (the lowest position's payload wins attribution).
    """
    expanded = regex.expanded()
    check_budget(expanded, position_budget)
    analysis = _Analysis()
    facts = analysis.analyze(expanded)
    payloads = analysis.payloads
    first = facts.first
    follow = analysis.follow
    last = facts.last

    def successors(position: int) -> frozenset[int]:
        if position == _START:
            return first
        return frozenset(follow[position])

    def accepts(subset: frozenset[int]) -> bool:
        if _START in subset and facts.nullable:
            return True
        return bool(subset & last)

    start_subset = frozenset({_START})
    state_ids: dict[frozenset[int], int] = {start_subset: 0}
    transitions: list[dict[Hashable, tuple[int, Any]]] = [{}]
    accepting: set[int] = set()
    if accepts(start_subset):
        accepting.add(0)

    worklist = [start_subset]
    while worklist:
        subset = worklist.pop()
        subset_id = state_ids[subset]
        # Candidate next positions, grouped by key.
        by_key: dict[Hashable, set[int]] = {}
        for position in subset:
            for candidate in successors(position):
                by_key.setdefault(key(payloads[candidate]), set()).add(candidate)
        for key_value, candidates in by_key.items():
            if require_deterministic and len(candidates) > 1:
                raise NondeterminismError(
                    f"content model is not deterministic: {key_value!r} is "
                    f"matched by {len(candidates)} competing particles"
                )
            target = frozenset(candidates)
            if target not in state_ids:
                state_ids[target] = len(transitions)
                transitions.append({})
                if accepts(target):
                    accepting.add(state_ids[target])
                worklist.append(target)
            transitions[subset_id][key_value] = (
                state_ids[target],
                payloads[min(candidates)],
            )

    return Dfa(transitions, frozenset(accepting))

"""Finite automata over content models.

The paper's preprocessor builds its grammar "using an algorithm of [2]
(Aho/Sethi/Ullman), which constructs deterministic finite automata from
regular expressions" (Sect. 6).  This package is that algorithm, shared by
every consumer in the stack:

* the DTD validator (content models are classic regexes),
* the XML Schema validator (particles with occurrence bounds),
* V-DOM's construction-time enforcement,
* the P-XML static checker (holes are matched as typed symbols).

Terminals are arbitrary *symbol* objects; matching happens over a *key*
derived from each symbol (usually an element name), so one automaton can
carry rich symbols (e.g. element declarations) while the matcher runs on
plain names.
"""

from repro.automata.rex import (
    Alternation,
    Empty,
    Epsilon,
    Regex,
    Repetition,
    Sequence,
    Symbol,
    UNBOUNDED,
)
from repro.automata.glushkov import (
    Dfa,
    DfaBuildError,
    Matcher,
    NondeterminismError,
    build_dfa,
)
from repro.automata.tables import DfaTable, TableMatcher

__all__ = [
    "Alternation",
    "Dfa",
    "DfaBuildError",
    "DfaTable",
    "Empty",
    "Epsilon",
    "Matcher",
    "NondeterminismError",
    "Regex",
    "Repetition",
    "Sequence",
    "Symbol",
    "TableMatcher",
    "UNBOUNDED",
    "build_dfa",
]

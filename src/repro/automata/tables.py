"""Flat integer transition tables compiled from :class:`~repro.automata.glushkov.Dfa`.

The object DFA keeps ``transitions[state][key] -> (next_state, payload)``
— one dict per state, one tuple per edge.  That shape is ideal for
construction and for error reporting, but a hot loop that steps it pays
a method call, a dict probe, and a tuple unpack per event.

:class:`DfaTable` re-compiles the same automaton *down to data*:

* a per-DFA **interned symbol table** mapping element QNames to dense
  integer ids (``symbol_ids``),
* an ``array('i')`` **next-state matrix** of shape (states × symbols)
  where ``-1`` means "no transition", and
* a parallel ``array('i')`` **payload matrix** indexing into a tuple of
  the distinct payload objects (element declarations).

The inner loop of a consumer becomes one dict probe (symbol → id) and
two array indexings — no per-step allocation, no method dispatch::

    sym = table.symbol_ids.get(name)
    if sym is not None:
        cell = state * table.n_symbols + sym
        target = table.nxt[cell]          # -1 = rejected
        payload = table.payloads[table.pay[cell]]

State numbering, acceptance, attribution (which payload consumes which
key) and the *order* of expected-key error listings are all identical to
the source DFA — ``tests/automata/test_tables.py`` holds every table to
its object twin over the schema corpus — so an integer state produced by
one route (e.g. the fused ingest's ``_content_state``) can be resumed by
the other.

Tables pickle compactly (the paper's "preparation time" artifact): the
persistent compilation cache stores them prewarmed next to the object
DFAs, so a warm start pays neither Glushkov construction nor table
flattening.
"""

from __future__ import annotations

from array import array
from collections.abc import Hashable
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.automata.glushkov import Dfa


class DfaTable:
    """One content-model DFA flattened to integer arrays."""

    __slots__ = (
        "symbols",
        "symbol_ids",
        "n_symbols",
        "nxt",
        "pay",
        "payloads",
        "accepting",
        "_expected",
    )

    #: state numbering is inherited from the source DFA, so the start
    #: state is always subset-construction state 0
    start_state = 0

    def __init__(
        self,
        symbols: tuple[Hashable, ...],
        nxt: array,
        pay: array,
        payloads: tuple[Any, ...],
        accepting: bytes,
    ):
        self.symbols = symbols
        self.symbol_ids = {symbol: index for index, symbol in enumerate(symbols)}
        self.n_symbols = len(symbols)
        self.nxt = nxt
        self.pay = pay
        self.payloads = payloads
        self.accepting = accepting
        self._expected: dict[int, list[Hashable]] = {}

    @classmethod
    def from_dfa(cls, dfa: "Dfa") -> "DfaTable":
        """Flatten *dfa* (state numbering and attribution preserved)."""
        symbols: list[Hashable] = []
        symbol_ids: dict[Hashable, int] = {}
        for state_transitions in dfa.transitions:
            for key in state_transitions:
                if key not in symbol_ids:
                    symbol_ids[key] = len(symbols)
                    symbols.append(key)
        n_states = len(dfa.transitions)
        n_symbols = len(symbols)
        nxt = array("i", [-1]) * (n_states * n_symbols)
        pay = array("i", [0]) * (n_states * n_symbols)
        payloads: list[Any] = []
        payload_ids: dict[int, int] = {}
        for state, transitions in enumerate(dfa.transitions):
            base = state * n_symbols
            for key, (target, payload) in transitions.items():
                cell = base + symbol_ids[key]
                nxt[cell] = target
                payload_id = payload_ids.get(id(payload))
                if payload_id is None:
                    payload_id = len(payloads)
                    payload_ids[id(payload)] = payload_id
                    payloads.append(payload)
                pay[cell] = payload_id
        accepting = bytes(
            1 if state in dfa.accepting else 0 for state in range(n_states)
        )
        return cls(tuple(symbols), nxt, pay, tuple(payloads), accepting)

    # -- the object-matcher API, table-backed ---------------------------------

    def matcher(self) -> "TableMatcher":
        return TableMatcher(self)

    def state_count(self) -> int:
        return len(self.accepting)

    def step(self, state: int, key: Hashable) -> tuple[int, Any] | None:
        """One transition: ``(next_state, payload)`` or ``None``."""
        sym = self.symbol_ids.get(key)
        if sym is None:
            return None
        cell = state * self.n_symbols + sym
        target = self.nxt[cell]
        if target < 0:
            return None
        return target, self.payloads[self.pay[cell]]

    def is_accepting(self, state: int) -> bool:
        return self.accepting[state] == 1

    def expected_keys(self, state: int) -> list[Hashable]:
        """Keys with a transition out of *state*, in the exact order
        ``Dfa.expected_keys`` reports them (sorted by ``repr``), memoized
        per state — this sits on every content-model error path."""
        cached = self._expected.get(state)
        if cached is None:
            base = state * self.n_symbols
            nxt = self.nxt
            cached = sorted(
                (
                    self.symbols[sym]
                    for sym in range(self.n_symbols)
                    if nxt[base + sym] >= 0
                ),
                key=repr,
            )
            self._expected[state] = cached
        return cached

    def accepts(self, keys: list[Hashable]) -> bool:
        """Full-word match convenience (mirrors ``Dfa.accepts``)."""
        state = 0
        for key in keys:
            entry = self.step(state, key)
            if entry is None:
                return False
            state = entry[0]
        return self.accepting[state] == 1

    # -- pickling -------------------------------------------------------------

    def __reduce__(self):
        # The memoized expected-key lists are derived data; rebuilding
        # the symbol-id dict from the symbol tuple keeps the artifact
        # minimal and the load path a plain __init__.
        return (
            DfaTable,
            (self.symbols, self.nxt, self.pay, self.payloads, self.accepting),
        )


class TableMatcher:
    """Drop-in :class:`~repro.automata.glushkov.Matcher` over a table.

    Same API (``step`` / ``at_accepting_state`` / ``expected`` /
    ``reset`` and a plain-int ``state`` attribute), same return values,
    same error-listing order — consumers written against the object
    matcher (the streaming validator, the checker) switch by changing
    only where the matcher comes from.  Hot loops that cannot afford the
    per-step method call inline the two array indexings instead.
    """

    __slots__ = ("table", "state")

    def __init__(self, table: DfaTable):
        self.table = table
        self.state = 0

    def step(self, key: Hashable) -> Any | None:
        """Consume *key*; return the matched payload or ``None``.

        A failed step leaves the state unchanged (the caller may still
        ask :meth:`expected` what would have been acceptable).
        """
        table = self.table
        sym = table.symbol_ids.get(key)
        if sym is None:
            return None
        cell = self.state * table.n_symbols + sym
        target = table.nxt[cell]
        if target < 0:
            return None
        self.state = target
        return table.payloads[table.pay[cell]]

    def at_accepting_state(self) -> bool:
        return self.table.accepting[self.state] == 1

    def expected(self) -> list[Hashable]:
        return self.table.expected_keys(self.state)

    def reset(self) -> None:
        self.state = 0

"""Regular expressions over symbol objects, with occurrence bounds.

The grammar is the one shared by DTD content models and XML Schema
particles::

    R ::= empty | epsilon | symbol | R R ... | R "|" R "|" ... | R{min,max}

``Repetition`` carries schema-style ``minOccurs``/``maxOccurs`` bounds
(``UNBOUNDED`` for ``*``-like behaviour).  Before automaton construction,
:meth:`Regex.expanded` rewrites bounded repetitions into sequences of
copies — the classical reduction that keeps the Glushkov construction
applicable; a position budget guards against pathological bounds.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError

#: Sentinel for an unbounded ``maxOccurs``.
UNBOUNDED: int = -1


class RegexTooLargeError(ReproError):
    """Expanding occurrence bounds would exceed the position budget."""


class Regex:
    """Base class of the regex AST."""

    def nullable(self) -> bool:
        """Can this expression match the empty word?"""
        raise NotImplementedError

    def count_positions(self) -> int:
        """Number of symbol positions after expansion."""
        raise NotImplementedError

    def expanded(self) -> Regex:
        """Rewrite bounded repetitions; result uses only {0|1|n, UNBOUNDED}."""
        raise NotImplementedError

    # Convenience combinators keep call sites readable.
    def star(self) -> Regex:
        return Repetition(self, 0, UNBOUNDED)

    def plus(self) -> Regex:
        return Repetition(self, 1, UNBOUNDED)

    def optional(self) -> Regex:
        return Repetition(self, 0, 1)


class Empty(Regex):
    """The empty *language*: matches nothing at all."""

    def nullable(self) -> bool:
        return False

    def count_positions(self) -> int:
        return 0

    def expanded(self) -> Regex:
        return self

    def __repr__(self) -> str:
        return "Empty()"


class Epsilon(Regex):
    """Matches exactly the empty word."""

    def nullable(self) -> bool:
        return True

    def count_positions(self) -> int:
        return 0

    def expanded(self) -> Regex:
        return self

    def __repr__(self) -> str:
        return "Epsilon()"


class Symbol(Regex):
    """A terminal occurrence of *payload* (any hashable or not — identity
    is positional, the payload is just carried along)."""

    def __init__(self, payload: Any):
        self.payload = payload

    def nullable(self) -> bool:
        return False

    def count_positions(self) -> int:
        return 1

    def expanded(self) -> Regex:
        # Each expansion site needs a *fresh* position, so copy.
        return Symbol(self.payload)

    def __repr__(self) -> str:
        return f"Symbol({self.payload!r})"


class Sequence(Regex):
    """Concatenation of parts, in order."""

    def __init__(self, parts: list[Regex]):
        self.parts = list(parts)

    def nullable(self) -> bool:
        return all(part.nullable() for part in self.parts)

    def count_positions(self) -> int:
        return sum(part.count_positions() for part in self.parts)

    def expanded(self) -> Regex:
        return Sequence([part.expanded() for part in self.parts])

    def __repr__(self) -> str:
        return f"Sequence({self.parts!r})"


class Alternation(Regex):
    """Choice between alternatives."""

    def __init__(self, alternatives: list[Regex]):
        self.alternatives = list(alternatives)

    def nullable(self) -> bool:
        return any(alt.nullable() for alt in self.alternatives)

    def count_positions(self) -> int:
        return sum(alt.count_positions() for alt in self.alternatives)

    def expanded(self) -> Regex:
        return Alternation([alt.expanded() for alt in self.alternatives])

    def __repr__(self) -> str:
        return f"Alternation({self.alternatives!r})"


class Repetition(Regex):
    """``child`` repeated between ``min_occurs`` and ``max_occurs`` times."""

    def __init__(self, child: Regex, min_occurs: int, max_occurs: int):
        if min_occurs < 0:
            raise ValueError("min_occurs must be >= 0")
        if max_occurs != UNBOUNDED and max_occurs < min_occurs:
            raise ValueError("max_occurs must be >= min_occurs or UNBOUNDED")
        self.child = child
        self.min_occurs = min_occurs
        self.max_occurs = max_occurs

    def nullable(self) -> bool:
        return self.min_occurs == 0 or self.child.nullable()

    def count_positions(self) -> int:
        per_copy = self.child.count_positions()
        if self.max_occurs == UNBOUNDED:
            return per_copy * max(self.min_occurs, 1)
        return per_copy * self.max_occurs

    def expanded(self) -> Regex:
        """Unroll bounds into copies.

        ``R{m,n}``     → ``R₁ … R_m  R?₁ … R?_{n-m}``
        ``R{m,∞}``     → ``R₁ … R_{m-1}  R₊`` (Kleene-plus on the last copy)
        ``R{0,∞}``     → ``R*``; ``R{0,1}`` stays an optional copy.
        """
        child = self.child
        if self.max_occurs == UNBOUNDED:
            if self.min_occurs <= 1:
                return Repetition(child.expanded(), self.min_occurs, UNBOUNDED)
            required = [child.expanded() for _ in range(self.min_occurs - 1)]
            return Sequence(required + [Repetition(child.expanded(), 1, UNBOUNDED)])
        if (self.min_occurs, self.max_occurs) in ((0, 1), (1, 1)):
            if self.min_occurs == 1:
                return child.expanded()
            return Repetition(child.expanded(), 0, 1)
        required = [child.expanded() for _ in range(self.min_occurs)]
        optional = [
            Repetition(child.expanded(), 0, 1)
            for _ in range(self.max_occurs - self.min_occurs)
        ]
        return Sequence(required + optional)

    def __repr__(self) -> str:
        bound = "unbounded" if self.max_occurs == UNBOUNDED else self.max_occurs
        return f"Repetition({self.child!r}, {self.min_occurs}, {bound})"


def check_budget(regex: Regex, budget: int = 4096) -> None:
    """Raise when expansion would produce more than *budget* positions.

    Schema authors occasionally write ``maxOccurs="10000"``; unrolling that
    is the textbook construction's weak spot, so the library refuses past a
    budget rather than silently consuming memory.
    """
    count = regex.count_positions()
    if count > budget:
        raise RegexTooLargeError(
            f"content model expands to {count} positions "
            f"(budget {budget}); lower maxOccurs or raise the budget"
        )

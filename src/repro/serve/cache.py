"""Bounded in-process response cache for the serving tier.

The paper's claim is that schema-checked preparation makes runtime
serving nearly free; this cache takes the last step — not rendering at
all.  Entries are final response bytes plus their strong ETag, keyed on
``(route content fingerprint, typed hole values)``: the fingerprint
pins the template source the bytes came from, the hole values pin the
one render they parameterize.  Because a template's output is a pure
function of its hole values (the checker guarantees it — no clocks, no
I/O, no per-request state), replaying the stored bytes *is* the render.

Keys deliberately exclude query-string noise: parameters that do not
name a hole cannot change the body, so they must not fragment the
cache.  Only complete 200 responses are stored — errors are cheap to
recompute and must never be replayed stale.

The store is a plain LRU over an :class:`~collections.OrderedDict`,
bounded by ``max_entries``; eviction, like every other outcome, counts
into both the instance stats (served at ``/-/stats``) and
:mod:`repro.obs` (``serve.cache{outcome=...}``).  Invalidation is
explicit: :meth:`ResponseCache.clear` is called whenever the route
table is rebuilt, because a rebuilt route may compile different bytes
for the same key shape.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro import obs

#: default entry cap — bounds memory, not correctness
DEFAULT_MAX_ENTRIES = 512


class CachedResponse:
    """One stored response: the exact body bytes and their validator."""

    __slots__ = ("body", "etag", "content_type")

    def __init__(self, body: bytes, etag: str, content_type: str):
        self.body = body
        self.etag = etag
        self.content_type = content_type


class ResponseCache:
    """LRU map from response keys to :class:`CachedResponse` entries."""

    def __init__(self, max_entries: int = DEFAULT_MAX_ENTRIES):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[Hashable, CachedResponse] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0

    def get(self, key: Hashable) -> CachedResponse | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            obs.count("serve.cache", outcome="miss")
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        obs.count("serve.cache", outcome="hit")
        return entry

    def put(
        self, key: Hashable, body: bytes, etag: str, content_type: str
    ) -> CachedResponse:
        entry = CachedResponse(body, etag, content_type)
        if key in self._entries:
            self._entries.move_to_end(key)
        else:
            while len(self._entries) >= self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
                obs.count("serve.cache", outcome="evict")
        self._entries[key] = entry
        self.stores += 1
        obs.count("serve.cache", outcome="store")
        return entry

    def clear(self) -> int:
        """Drop every entry (route-table rebuild); returns the count."""
        dropped = len(self._entries)
        self._entries.clear()
        if dropped:
            self.invalidations += dropped
            obs.count("serve.cache", n=dropped, outcome="invalidate")
        return dropped

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        # Membership probe without touching recency or the counters.
        return key in self._entries

    def snapshot(self) -> dict[str, Any]:
        """The stats block ``/-/stats`` serves under ``server.cache``."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
        }

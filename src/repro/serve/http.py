"""A minimal HTTP/1.1 message layer for :mod:`repro.serve`.

Only what a page server needs, built on the stdlib alone: parse one
request head (request line + headers) from the bytes an
``asyncio.StreamReader`` hands over, format one response with a
``Content-Length`` body, and frame one response as
``Transfer-Encoding: chunked`` for the streaming mode.  Requests with
bodies are read and discarded up to a small cap, everything else is
rejected with a clear status code.

Validators come with the framing: strong ETags (a content hash, so two
responses carry the same tag exactly when their bytes match) and the
``If-None-Match`` comparison that turns a revalidation into a bodiless
304.  Every response carries a ``Date`` header (RFC 9110 §6.6.1),
memoized per second so the hot path formats it at most once a second.

The parser is strict where sloppiness would be ambiguous (malformed
request line, header without ``:``, non-integer ``Content-Length``) and
lenient where the RFC says to be (header names are case-insensitive,
empty header values are fine).
"""

from __future__ import annotations

import hashlib
import time
from email.utils import formatdate
from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ReproError

#: request-head size cap (also the StreamReader limit the server uses)
MAX_HEAD_BYTES = 32 * 1024

#: largest request body the server will read-and-discard
MAX_BODY_BYTES = 1 << 20

#: the subset of status codes this server emits
REASONS = {
    200: "OK",
    304: "Not Modified",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    422: "Unprocessable Content",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError):
    """A request that cannot be served; carries the response status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class HttpRequest:
    """One parsed request head."""

    __slots__ = ("method", "target", "path", "query", "version", "headers")

    def __init__(
        self,
        method: str,
        target: str,
        path: str,
        query: dict[str, str],
        version: str,
        headers: dict[str, str],
    ):
        self.method = method
        self.target = target
        self.path = path
        self.query = query
        self.version = version
        self.headers = headers  # keys lower-cased

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length {raw!r}")
        if length < 0:
            raise HttpError(400, f"malformed Content-Length {raw!r}")
        return length

    def wants_keep_alive(self) -> bool:
        """Connection persistence per HTTP/1.1 (default on) vs 1.0."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.target})"


def parse_request(head: bytes) -> HttpRequest:
    """Parse one request head (everything up to the blank line).

    Raises :class:`HttpError` with a 400-family status on anything
    malformed; the caller turns that into the response.
    """
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError:
        raise HttpError(400, "request head is not ASCII")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if not method.isalpha() or method != method.upper():
        raise HttpError(400, f"malformed method {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if not target.startswith("/"):
        # Absolute-form targets (proxy requests) are out of scope.
        raise HttpError(400, f"unsupported request target {target!r}")
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator or not name or name != name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.lower()] = value.strip()
    return HttpRequest(method, target, path, query, version, headers)


#: ``(whole_second, formatted)`` memo behind :func:`http_date`
_DATE_MEMO: tuple[int, str] = (0, "")


def http_date() -> str:
    """The current time as an IMF-fixdate, memoized per second."""
    global _DATE_MEMO
    now = int(time.time())
    if _DATE_MEMO[0] != now:
        _DATE_MEMO = (now, formatdate(now, usegmt=True))
    return _DATE_MEMO[1]


def make_etag(body: bytes) -> str:
    """A strong validator for *body*: quoted truncated content hash.

    Deterministic in the bytes alone, so a re-rendered (or re-cached)
    response revalidates against a tag handed out before any rebuild —
    exactly the semantics a content-addressed cache wants.
    """
    return '"' + hashlib.sha256(body).hexdigest()[:32] + '"'


def etag_matches(if_none_match: str, etag: str) -> bool:
    """Does an ``If-None-Match`` value match *etag*?

    Handles ``*``, comma-separated candidate lists, and ``W/`` weak
    prefixes (If-None-Match comparison is weak per RFC 9110 §13.1.2,
    so ``W/"x"`` matches ``"x"``).
    """
    if if_none_match.strip() == "*":
        return True
    for candidate in if_none_match.split(","):
        candidate = candidate.strip()
        if candidate.startswith("W/"):
            candidate = candidate[2:]
        if candidate == etag:
            return True
    return False


def _head_lines(
    status: int,
    content_type: str | None,
    *,
    keep_alive: bool,
    extra_headers: tuple[tuple[str, str], ...],
) -> list[str]:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    if content_type is not None:
        lines.append(f"Content-Type: {content_type}")
    lines += [
        f"Date: {http_date()}",
        "Server: repro-serve",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    return lines


def build_response(
    status: int,
    body: bytes,
    content_type: str = "text/plain; charset=utf-8",
    *,
    keep_alive: bool = True,
    head_only: bool = False,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Format one complete response (status line, headers, body).

    *head_only* answers a HEAD request: full headers — including the
    ``Content-Length`` the body would have — with no body bytes.
    """
    lines = _head_lines(
        status, content_type, keep_alive=keep_alive, extra_headers=extra_headers
    )
    lines.insert(2, f"Content-Length: {len(body)}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    if head_only:
        return head
    return head + body


def not_modified_response(
    etag: str,
    *,
    keep_alive: bool = True,
) -> bytes:
    """A 304 for a conditional request that hit: headers only, no body.

    A 304 has no body by definition, so it omits ``Content-Length``
    entirely — the connection stays correctly framed for keep-alive.
    """
    lines = _head_lines(
        304, None, keep_alive=keep_alive, extra_headers=(("ETag", etag),)
    )
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def start_chunked_response(
    status: int,
    content_type: str = "text/plain; charset=utf-8",
    *,
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """The head of a ``Transfer-Encoding: chunked`` response.

    No ``Content-Length`` — the body follows as :func:`encode_chunk`
    frames terminated by :data:`LAST_CHUNK`, so writing can begin
    before the total size is known.
    """
    lines = _head_lines(
        status, content_type, keep_alive=keep_alive, extra_headers=extra_headers
    )
    lines.insert(2, "Transfer-Encoding: chunked")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def encode_chunk(data: bytes) -> bytes:
    """One chunked-transfer frame: hex size, CRLF, data, CRLF."""
    return b"%x\r\n%s\r\n" % (len(data), data)


#: the zero-length chunk that terminates a chunked body (no trailers)
LAST_CHUNK = b"0\r\n\r\n"


def error_response(
    status: int, message: str, *, keep_alive: bool = False
) -> bytes:
    """A plain-text error body; errors always close the connection by
    default (the stream state after a malformed request is unknown)."""
    body = f"{status} {REASONS.get(status, 'Unknown')}: {message}\n".encode()
    return build_response(status, body, keep_alive=keep_alive)

"""A minimal HTTP/1.1 message layer for :mod:`repro.serve`.

Only what a page server needs, built on the stdlib alone: parse one
request head (request line + headers) from the bytes an
``asyncio.StreamReader`` hands over, and format one response with a
``Content-Length`` body.  No chunked transfer, no multipart, no
trailers — requests with bodies are read and discarded up to a small
cap, everything else is rejected with a clear status code.

The parser is strict where sloppiness would be ambiguous (malformed
request line, header without ``:``, non-integer ``Content-Length``) and
lenient where the RFC says to be (header names are case-insensitive,
empty header values are fine).
"""

from __future__ import annotations

from urllib.parse import parse_qsl, unquote, urlsplit

from repro.errors import ReproError

#: request-head size cap (also the StreamReader limit the server uses)
MAX_HEAD_BYTES = 32 * 1024

#: largest request body the server will read-and-discard
MAX_BODY_BYTES = 1 << 20

#: the subset of status codes this server emits
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Content Too Large",
    422: "Unprocessable Content",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(ReproError):
    """A request that cannot be served; carries the response status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


class HttpRequest:
    """One parsed request head."""

    __slots__ = ("method", "target", "path", "query", "version", "headers")

    def __init__(
        self,
        method: str,
        target: str,
        path: str,
        query: dict[str, str],
        version: str,
        headers: dict[str, str],
    ):
        self.method = method
        self.target = target
        self.path = path
        self.query = query
        self.version = version
        self.headers = headers  # keys lower-cased

    @property
    def content_length(self) -> int:
        raw = self.headers.get("content-length")
        if raw is None:
            return 0
        try:
            length = int(raw)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length {raw!r}")
        if length < 0:
            raise HttpError(400, f"malformed Content-Length {raw!r}")
        return length

    def wants_keep_alive(self) -> bool:
        """Connection persistence per HTTP/1.1 (default on) vs 1.0."""
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return "keep-alive" in connection
        return "close" not in connection

    def __repr__(self) -> str:
        return f"HttpRequest({self.method} {self.target})"


def parse_request(head: bytes) -> HttpRequest:
    """Parse one request head (everything up to the blank line).

    Raises :class:`HttpError` with a 400-family status on anything
    malformed; the caller turns that into the response.
    """
    try:
        text = head.decode("ascii")
    except UnicodeDecodeError:
        raise HttpError(400, "request head is not ASCII")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, version = parts
    if not method.isalpha() or method != method.upper():
        raise HttpError(400, f"malformed method {method!r}")
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    if not target.startswith("/"):
        # Absolute-form targets (proxy requests) are out of scope.
        raise HttpError(400, f"unsupported request target {target!r}")
    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, separator, value = line.partition(":")
        if not separator or not name or name != name.strip():
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.lower()] = value.strip()
    return HttpRequest(method, target, path, query, version, headers)


def build_response(
    status: int,
    body: bytes,
    content_type: str = "text/plain; charset=utf-8",
    *,
    keep_alive: bool = True,
    head_only: bool = False,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """Format one complete response (status line, headers, body).

    *head_only* answers a HEAD request: full headers — including the
    ``Content-Length`` the body would have — with no body bytes.
    """
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Server: repro-serve",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in extra_headers:
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    if head_only:
        return head
    return head + body


def error_response(
    status: int, message: str, *, keep_alive: bool = False
) -> bytes:
    """A plain-text error body; errors always close the connection by
    default (the stream state after a malformed request is unknown)."""
    body = f"{status} {REASONS.get(status, 'Unknown')}: {message}\n".encode()
    return build_response(status, body, keep_alive=keep_alive)

"""HTTP serving tier for validated pages (:mod:`repro.serve`).

The paper's server pages exist to be *served*; this package closes the
loop with a stdlib-only asyncio HTTP server that maps URL paths to
compiled :class:`~repro.pxml.Template` /
:class:`~repro.serverpages.ServerPage` objects and answers requests
with the segment pipeline's ``render_text`` output — guaranteed-valid
markup straight to the socket, no DOM on the hot path.

Layers:

* :mod:`repro.serve.http` — minimal HTTP/1.1 request parsing and
  response formatting;
* :mod:`repro.serve.routes` — the route table and the directory
  compiler (``*.pxml`` / ``*.page`` sources to compiled routes, keyed
  through :class:`repro.cache.ReproCache`);
* :mod:`repro.serve.server` — :class:`ReproServer`: connection cap
  with backpressure, per-request timeouts, graceful drain on SIGTERM,
  and ``/-/stats`` observability.

``vdom-generate serve <schema.xsd> <directory>`` is the CLI front end.
"""

from repro.serve.http import (
    HttpError,
    HttpRequest,
    build_response,
    error_response,
    parse_request,
)
from repro.serve.routes import Route, RouteTable, build_routes
from repro.serve.server import ReproServer, serve

__all__ = [
    "HttpError",
    "HttpRequest",
    "ReproServer",
    "Route",
    "RouteTable",
    "build_response",
    "build_routes",
    "error_response",
    "parse_request",
    "serve",
]

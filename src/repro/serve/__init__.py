"""HTTP serving tier for validated pages (:mod:`repro.serve`).

The paper's server pages exist to be *served*; this package closes the
loop with a stdlib-only asyncio HTTP server that maps URL paths to
compiled :class:`~repro.pxml.Template` /
:class:`~repro.serverpages.ServerPage` objects and answers requests
with the segment pipeline's ``render_text`` output — guaranteed-valid
markup straight to the socket, no DOM on the hot path.

Layers:

* :mod:`repro.serve.http` — minimal HTTP/1.1 request parsing, response
  formatting (``Content-Length`` and chunked framing), strong ETags and
  the ``If-None-Match`` comparison;
* :mod:`repro.serve.cache` — the bounded in-process response cache,
  keyed on ``(route fingerprint, typed hole values)``;
* :mod:`repro.serve.routes` — the route table and the directory
  compiler (``*.pxml`` / ``*.page`` sources to compiled routes, keyed
  through :class:`repro.cache.ReproCache`);
* :mod:`repro.serve.server` — :class:`ReproServer`: response caching
  with conditional GETs, chunked segment streaming, connection cap
  with backpressure, per-request timeouts, graceful drain on SIGTERM,
  and ``/-/stats`` observability.

``vdom-generate serve <schema.xsd> <directory>`` is the CLI front end.
"""

from repro.serve.cache import CachedResponse, ResponseCache
from repro.serve.http import (
    HttpError,
    HttpRequest,
    build_response,
    error_response,
    etag_matches,
    make_etag,
    parse_request,
)
from repro.serve.routes import Route, RouteTable, build_routes
from repro.serve.server import ReproServer, serve

__all__ = [
    "CachedResponse",
    "HttpError",
    "HttpRequest",
    "ReproServer",
    "ResponseCache",
    "Route",
    "RouteTable",
    "build_response",
    "build_routes",
    "error_response",
    "etag_matches",
    "make_etag",
    "parse_request",
    "serve",
]

"""Route table: URL paths to compiled pages.

Two kinds of route, mirroring the paper's two poles:

* a **template** route serves a P-XML :class:`~repro.pxml.Template` —
  statically checked against the schema at compile time, rendered
  through the segment pipeline, so every byte it ever emits is
  schema-valid by construction;
* a **page** route serves a JSP-style
  :class:`~repro.serverpages.ServerPage` — the paper's negative
  baseline, kept servable so the difference stays demonstrable (every
  hit on one is counted as a ``serve.fallback``).

:func:`build_routes` compiles a directory of page sources into a table:
``name.pxml`` becomes ``/name`` (``index.pxml`` also claims ``/``),
``name.page`` likewise.  Compilation goes through the same
:class:`repro.cache.ReproCache` the rest of the stack uses, so a warm
start skips the parse + static check + codegen per route and goes
straight to the stored artifact.

Query-string parameters feed template holes by name: ``/item?q=3``
renders the ``$q$`` hole with ``"3"``, which the hole's simple type
parses — a schema-invalid parameter is rejected *before* a single byte
is emitted.  Unknown parameters are ignored (query noise must not 500 a
page); missing ones surface as a client error in the server layer.
"""

from __future__ import annotations

import hashlib
import os
from typing import Any, Hashable

from repro import obs
from repro.errors import ReproError
from repro.pxml import Template
from repro.serverpages import ServerPage

#: file extensions the directory loader compiles, in kind order
TEMPLATE_SUFFIX = ".pxml"
PAGE_SUFFIX = ".page"


class Route:
    """One path bound to one compiled page."""

    __slots__ = (
        "path",
        "name",
        "kind",
        "_template",
        "_page",
        "_hole_names",
        "_ordered_holes",
        "fingerprint",
    )

    def __init__(
        self,
        path: str,
        *,
        template: Template | None = None,
        page: ServerPage | None = None,
        name: str | None = None,
    ):
        if (template is None) == (page is None):
            raise ValueError("a Route serves exactly one template or page")
        self.path = path
        self.name = name or path.lstrip("/") or "index"
        self.kind = "template" if template is not None else "page"
        self._template = template
        self._page = page
        self._hole_names = (
            frozenset(template.hole_names) if template is not None else None
        )
        # Hole order is fixed at construction so a response key is built
        # with len(holes) dict lookups, no sort on the hot path.
        self._ordered_holes = (
            tuple(template.hole_names) if template is not None else ()
        )
        # Content-addressed identity: path plus a hash of the template
        # source.  Response-cache keys embed it, so even without the
        # explicit clear-on-rebuild a route recompiled from an edited
        # source can never replay the old bytes.
        self.fingerprint = (
            f"{path}|{hashlib.sha256(template.source.encode('utf-8')).hexdigest()[:16]}"
            if template is not None
            else None
        )

    @property
    def validated(self) -> bool:
        """Does this route carry the paper's validity guarantee?"""
        return self.kind == "template"

    def render(self, params: dict[str, str]) -> str:
        """Render this route with *params* (query-string values).

        Template routes see only parameters naming one of their holes;
        page routes get the full dict as their namespace.  Exceptions
        propagate — the server layer maps them to status codes.
        """
        if self._template is not None:
            holes = self._hole_names
            values = {
                key: value for key, value in params.items() if key in holes
            }
            return self._template.render_text(**values)
        obs.count("serve.fallback", route=self.name, reason="serverpage")
        return self._page.render(**params)

    def stream(self, params: dict[str, str]) -> list[str] | None:
        """Render as a validated piece list for chunked streaming.

        Returns ``None`` when this route cannot stream — server pages
        (no segment program, arbitrary code) and templates whose shape
        fell back to the DOM route; the caller then uses
        :meth:`render` buffered.  Hole errors raise here, before any
        piece exists, so the server's 422/400 mapping is untouched.
        """
        if self._template is None:
            return None
        holes = self._hole_names
        values = {
            key: value for key, value in params.items() if key in holes
        }
        return self._template.stream_text(**values)

    def response_key(self, params: dict[str, str]) -> Hashable | None:
        """The response-cache key for *params*, or ``None``: uncacheable.

        ``(route fingerprint, typed hole values in hole order)`` — only
        parameters naming a hole participate, so query noise neither
        fragments the cache nor leaks into keys.  Server pages are never
        cached: their output is arbitrary code, not a pure function the
        checker vouches for.
        """
        if self.fingerprint is None:
            return None
        return (
            self.fingerprint,
            tuple(params.get(name) for name in self._ordered_holes),
        )


class RouteTable:
    """Exact-match path lookup over :class:`Route` objects."""

    def __init__(self, routes: tuple[Route, ...] = ()):
        self._routes: dict[str, Route] = {}
        for route in routes:
            self.add(route)

    def add(self, route: Route) -> Route:
        if route.path in self._routes:
            raise ReproError(f"duplicate route for path {route.path!r}")
        self._routes[route.path] = route
        return route

    def add_template(
        self, path: str, template: Template, name: str | None = None
    ) -> Route:
        return self.add(Route(path, template=template, name=name))

    def add_page(
        self, path: str, page: ServerPage, name: str | None = None
    ) -> Route:
        return self.add(Route(path, page=page, name=name))

    def resolve(self, path: str) -> Route | None:
        return self._routes.get(path)

    def paths(self) -> list[str]:
        return sorted(self._routes)

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self):
        return iter(self._routes.values())


def build_routes(
    binding: Any, directory: str | os.PathLike, cache: Any = None
) -> RouteTable:
    """Compile every page source under *directory* into a route table.

    ``<stem>.pxml`` (validated template, checked against *binding*'s
    schema) and ``<stem>.page`` (baseline server page) each map to
    ``/<stem>``; ``index.*`` additionally claims ``/``.  Other files are
    ignored.  *cache* is the compiled-artifact cache every route's
    compilation is keyed into; pass the same :class:`repro.cache.ReproCache`
    the binding came from and a warm start compiles nothing.

    A source that fails to compile aborts the build with the underlying
    error — a serving tier with a half-broken route table is worse than
    one that refuses to start.
    """
    directory = os.fspath(directory)
    table = RouteTable()
    entries = sorted(os.listdir(directory))
    for entry in entries:
        stem, suffix = os.path.splitext(entry)
        if suffix not in (TEMPLATE_SUFFIX, PAGE_SUFFIX):
            continue
        full = os.path.join(directory, entry)
        with open(full, encoding="utf-8") as handle:
            source = handle.read()
        with obs.timeit("serve.route_compile", route=stem):
            if suffix == TEMPLATE_SUFFIX:
                compiled = Template(binding, source, cache=cache)
                route = table.add_template(f"/{stem}", compiled, name=stem)
            else:
                compiled = ServerPage(source, name=entry, cache=cache)
                route = table.add_page(f"/{stem}", compiled, name=stem)
        if stem == "index":
            table.add(
                Route(
                    "/",
                    template=route._template,
                    page=route._page,
                    name=route.name,
                )
            )
    if not len(table):
        raise ReproError(
            f"no page sources (*{TEMPLATE_SUFFIX}, *{PAGE_SUFFIX}) "
            f"under {directory!r}"
        )
    return table

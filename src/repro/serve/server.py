"""The asyncio HTTP server serving compiled, schema-valid pages.

``asyncio.start_server`` accepts connections; each connection runs a
keep-alive loop: read one request head (bounded in time and size),
dispatch it through the :class:`~repro.serve.routes.RouteTable`, write
one ``Content-Length``-framed response.  Rendering is the segment
pipeline's ``render_text`` — the same precomputed-string path the
benchmarks measure — so the serving tier adds framing, not tree walks.

Serve v2 takes the next step, not rendering at all when it can prove it
does not have to:

* **response cache** — a bounded LRU
  (:class:`~repro.serve.cache.ResponseCache`) keyed on ``(route
  fingerprint, typed hole values)`` replays final response bytes; every
  200 carries a strong ETag (content hash), ``If-None-Match`` matches
  collapse to bodiless 304s, and the cache is explicitly invalidated
  when :meth:`ReproServer.set_routes` swaps in a rebuilt table;
* **streaming mode** — with ``stream=True``, template routes answer as
  ``Transfer-Encoding: chunked``, writing precomputed static segments
  to the socket piece by piece.  Holes are validated *before* the first
  chunk is committed (the segment fill raises with zero bytes written),
  so 422/400 semantics are identical to the buffered path; server
  pages, HEAD, and HTTP/1.0 clients fall back to buffered responses.

Operational behaviour:

* **connection cap with backpressure** — at most ``max_connections``
  connections are *served* concurrently; beyond that, new connections
  queue on a semaphore (their bytes wait in kernel buffers) instead of
  being refused;
* **per-request timeout** — a request head that does not arrive within
  ``request_timeout`` seconds gets a 408 and the connection is closed;
  the same budget bounds body reads;
* **graceful drain** — SIGTERM (or :meth:`request_shutdown`) stops the
  listener, lets every in-flight request finish, then returns from
  :meth:`run`; responses sent while draining carry
  ``Connection: close``;
* **observability** — every request counts into :mod:`repro.obs`
  (``serve.request`` by route and status, ``serve.latency`` timings,
  ``serve.fallback`` for unvalidated/missed routes) and into a
  process-local ``stats`` dict served at ``/-/stats`` so a scrape needs
  no obs opt-in.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any

from repro import obs
from repro.errors import (
    PxmlError,
    ReproError,
    ValidationError,
    VdomError,
    XmlSyntaxError,
)
from repro.serve.cache import DEFAULT_MAX_ENTRIES, ResponseCache
from repro.serve.http import (
    LAST_CHUNK,
    MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
    HttpError,
    HttpRequest,
    build_response,
    encode_chunk,
    error_response,
    etag_matches,
    make_etag,
    not_modified_response,
    parse_request,
    start_chunked_response,
)
from repro.serve.routes import Route, RouteTable

#: content type of every rendered page (they are XML by construction)
PAGE_CONTENT_TYPE = "application/xml; charset=utf-8"

#: streamed pieces are coalesced into chunks of at least this many bytes
#: (per-chunk framing and drain cost would otherwise dominate tiny runs)
STREAM_CHUNK_BYTES = 8 * 1024

#: parameter-shaped failures: the request named holes that do not fit
_CLIENT_PARAM_ERRORS = (TypeError, KeyError, NameError)

#: validity-shaped failures: the value reached the schema and lost
_VALIDITY_ERRORS = (VdomError, ValidationError, PxmlError)


class ReproServer:
    """Serve a :class:`RouteTable` over HTTP/1.1."""

    def __init__(
        self,
        routes: RouteTable,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        request_timeout: float = 10.0,
        cache_entries: int = DEFAULT_MAX_ENTRIES,
        stream: bool = False,
        schema: Any = None,
        validate_pool: Any = None,
    ):
        self.routes = routes
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        #: bounded response cache; ``cache_entries=0`` serves uncached
        self.cache = ResponseCache(cache_entries) if cache_entries else None
        #: chunked streaming of segment pieces for template routes
        self.stream = stream
        #: schema backing ``POST /-/validate`` (table-driven streaming
        #: pre-check for incoming documents); ``None`` disables the route
        self.schema = schema
        self._validator = None
        if schema is not None:
            from repro.xsd import StreamingValidator

            self._validator = StreamingValidator(schema)
        #: persistent :class:`~repro.ingest.pool.ValidationPool` backing
        #: ``POST /-/validate`` — documents fan out to warm worker
        #: processes so the validation tier scales past one core.  The
        #: caller owns the pool's lifecycle; ``None`` validates inline.
        self.validate_pool = validate_pool
        self.stats: dict[str, Any] = {
            "connections": 0,
            "requests": 0,
            "responses": {},  # status code (str, for JSON) -> count
            "active": 0,
            "peak_active": 0,
            "timeouts": 0,
            "bytes_sent": 0,
            "not_modified": 0,
            "streamed": 0,
            "validated": 0,
            "pool_validated": 0,
            "draining": False,
        }
        self._server: asyncio.base_events.Server | None = None
        self._gate = asyncio.Semaphore(max_connections)
        self._connections: set[asyncio.Task] = set()
        self._shutdown_requested: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (returns once listening)."""
        self._shutdown_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def set_routes(self, routes: RouteTable) -> None:
        """Swap in a rebuilt route table and invalidate cached responses.

        The explicit clear is the cache's correctness contract on
        rebuild: a recompiled route may produce different bytes for the
        same key shape, and stale entries must not outlive the table
        they were rendered from.  (Content-addressed route fingerprints
        are defense in depth, not a substitute.)
        """
        self.routes = routes
        if self.cache is not None:
            self.cache.clear()

    def request_shutdown(self) -> None:
        """Ask :meth:`run` to drain and return (signal-handler safe)."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, close up."""
        self.stats["draining"] = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._connections if not task.done()}
        if pending:
            # Keep-alive loops notice the drain flag after their current
            # response; an idle connection is bounded by the request
            # timeout.  Anything still alive after that grace window is
            # cancelled rather than holding shutdown hostage.
            _done, stragglers = await asyncio.wait(
                pending, timeout=self.request_timeout + 1.0
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.wait(stragglers)

    async def run(self, *, install_signal_handlers: bool = True) -> None:
        """Start, serve until SIGTERM/SIGINT (or
        :meth:`request_shutdown`), then drain gracefully."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    # Platforms/embeddings without signal support still
                    # get programmatic shutdown.
                    break
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.drain()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.stats["connections"] += 1
        try:
            # The cap: waiting here *is* the backpressure — the client's
            # request bytes sit in kernel buffers until a slot frees up.
            async with self._gate:
                self.stats["active"] += 1
                self.stats["peak_active"] = max(
                    self.stats["peak_active"], self.stats["active"]
                )
                try:
                    await self._serve_connection(reader, writer)
                finally:
                    self.stats["active"] -= 1
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing left to tell it
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self.stats["draining"]:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.request_timeout
                )
            except asyncio.TimeoutError:
                self.stats["timeouts"] += 1
                obs.count("serve.timeout")
                await self._send(writer, error_response(408, "request timed out"))
                return
            except asyncio.IncompleteReadError as partial:
                if partial.partial:
                    await self._send(
                        writer, error_response(400, "truncated request head")
                    )
                return  # clean EOF between requests: client hung up
            except asyncio.LimitOverrunError:
                await self._send(
                    writer, error_response(431, "request head too large")
                )
                return
            body = b""
            try:
                request = parse_request(head[:-4])
                length = request.content_length
                if length > MAX_BODY_BYTES:
                    raise HttpError(413, "request body too large")
                if length:
                    # Page serving is GET-shaped, but ``POST /-/validate``
                    # consumes its body; reading it always keeps the
                    # stream framed either way.
                    body = await asyncio.wait_for(
                        reader.readexactly(length), self.request_timeout
                    )
            except HttpError as error:
                self._record(None, error.status)
                await self._send(
                    writer, error_response(error.status, error.message)
                )
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                self.stats["timeouts"] += 1
                await self._send(writer, error_response(408, "body timed out"))
                return
            keep_alive = request.wants_keep_alive()
            if (
                self.validate_pool is not None
                and request.path == "/-/validate"
                and request.method == "POST"
            ):
                # Fan the document out to a warm pool worker; the
                # event loop stays free for other connections while the
                # worker runs the table-driven streaming validator.
                response = await self._validate_pooled(
                    request, body, keep_alive
                )
            else:
                response = self._respond(request, keep_alive, body)
            if isinstance(response, bytes):
                await self._send(writer, response)
            else:
                # A streamed response: the head, then each coalesced
                # chunk, drained as it goes — static markup reaches the
                # client while later chunks are still being written.
                for part in response:
                    await self._send(writer, part)
            if not keep_alive:
                return

    async def _send(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        self.stats["bytes_sent"] += len(payload)
        await writer.drain()

    # -- request dispatch ----------------------------------------------------

    def _record(self, route_name: str | None, status: int) -> None:
        self.stats["requests"] += 1
        responses = self.stats["responses"]
        key = str(status)
        responses[key] = responses.get(key, 0) + 1
        obs.count(
            "serve.request", route=route_name or "-", status=status
        )

    def _respond(
        self, request: HttpRequest, keep_alive: bool, body: bytes = b""
    ) -> bytes | list[bytes]:
        """One request to one response: complete bytes, or — for the
        streaming mode — a list of ``[head, chunk..., last-chunk]``
        parts the connection loop writes and drains one by one."""
        keep_alive = keep_alive and not self.stats["draining"]
        head_only = request.method == "HEAD"
        if request.path == "/-/validate":
            return self._validate_body(request, body, keep_alive)
        if request.method not in ("GET", "HEAD"):
            self._record(None, 405)
            body = f"405 Method Not Allowed: {request.method}\n".encode()
            return build_response(
                405,
                body,
                keep_alive=keep_alive,
                head_only=head_only,
                extra_headers=(("Allow", "GET, HEAD"),),
            )
        if request.path == "/-/stats":
            self._record("-/stats", 200)
            return build_response(
                200,
                self._stats_body(),
                "application/json; charset=utf-8",
                keep_alive=keep_alive,
                head_only=head_only,
            )
        if request.path == "/-/health":
            status = 503 if self.stats["draining"] else 200
            self._record("-/health", status)
            body = b"draining\n" if status == 503 else b"ok\n"
            return build_response(
                status, body, keep_alive=keep_alive, head_only=head_only
            )
        route = self.routes.resolve(request.path)
        if route is None:
            self._record(None, 404)
            obs.count("serve.fallback", route="-", reason="no-route")
            body = f"404 Not Found: no route for {request.path}\n".encode()
            return build_response(
                404, body, keep_alive=keep_alive, head_only=head_only
            )
        started = time.perf_counter()
        params = request.query
        if_none_match = request.headers.get("if-none-match")
        key = (
            route.response_key(params) if self.cache is not None else None
        )
        if key is not None:
            entry = self.cache.get(key)
            if entry is not None:
                # Replaying the stored bytes *is* the render: template
                # output is a pure function of its typed hole values.
                return self._finish(
                    route,
                    entry.body,
                    entry.etag,
                    if_none_match,
                    keep_alive=keep_alive,
                    head_only=head_only,
                )
        pieces: list[str] | None = None
        try:
            with obs.timeit("serve.render", route=route.name):
                # Streaming needs the segment piece list and HTTP/1.1
                # chunked framing; HEAD has no body to stream.  Hole
                # validation happens inside stream()/render() — before
                # a single piece exists — so every error below arrives
                # with no bytes committed.
                if (
                    self.stream
                    and not head_only
                    and request.version == "HTTP/1.1"
                ):
                    pieces = route.stream(params)
                if pieces is None:
                    text = route.render(params)
        except _VALIDITY_ERRORS as error:
            # The page would have been schema-invalid; it is refused
            # whole instead of served broken.
            self._record(route.name, 422)
            obs.count("serve.fallback", route=route.name, reason="invalid")
            return error_response(422, str(error), keep_alive=False)
        except _CLIENT_PARAM_ERRORS as error:
            self._record(route.name, 400)
            obs.count("serve.fallback", route=route.name, reason="bad-params")
            return error_response(
                400,
                f"missing or unusable page parameter ({error})",
                keep_alive=False,
            )
        except Exception as error:  # noqa: BLE001
            # Audited boundary: an arbitrary page bug must become one
            # 500, never a dropped connection or a dead server.
            self._record(route.name, 500)
            obs.count(
                "serve.fallback",
                route=route.name,
                reason=type(error).__name__,
            )
            return error_response(500, "page failed to render", keep_alive=False)
        if pieces is not None:
            encoded = [piece.encode("utf-8") for piece in pieces]
            body = b"".join(encoded)
        else:
            encoded = None
            body = text.encode("utf-8")
        etag = make_etag(body)
        if key is not None:
            self.cache.put(key, body, etag, PAGE_CONTENT_TYPE)
        self._observe_latency(route.name, time.perf_counter() - started)
        if encoded is not None:
            if if_none_match and etag_matches(if_none_match, etag):
                self._record(route.name, 304)
                self.stats["not_modified"] += 1
                return not_modified_response(etag, keep_alive=keep_alive)
            self._record(route.name, 200)
            self.stats["streamed"] += 1
            obs.count("serve.stream", route=route.name)
            return self._chunked_parts(encoded, etag, keep_alive)
        return self._finish(
            route,
            body,
            etag,
            if_none_match,
            keep_alive=keep_alive,
            head_only=head_only,
        )

    def _validate_body(
        self, request: HttpRequest, body: bytes, keep_alive: bool
    ) -> bytes:
        """``POST /-/validate``: the 422 pre-check as a service.

        The posted document streams through the table-driven
        :class:`~repro.xsd.stream.StreamingValidator` — no DOM, no typed
        tree — and the verdict comes back as JSON: 200 with
        ``{"valid": true}`` or 422 listing every validation error (or
        the one fatal syntax error) with line/column positions.
        """
        json_type = "application/json; charset=utf-8"
        if request.method != "POST":
            self._record("-/validate", 405)
            return build_response(
                405,
                b"405 Method Not Allowed: POST an XML document to validate\n",
                keep_alive=keep_alive,
                head_only=request.method == "HEAD",
                extra_headers=(("Allow", "POST"),),
            )
        if self._validator is None:
            self._record("-/validate", 404)
            return build_response(
                404,
                b"404 Not Found: the server has no schema to validate "
                b"against\n",
                keep_alive=keep_alive,
            )
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            self._record("-/validate", 400)
            return error_response(400, "request body is not valid UTF-8")
        try:
            with obs.timeit("serve.validate"):
                errors = self._validator.validate_text(text)
        except XmlSyntaxError as error:
            errors = [error]
        self.stats["validated"] += 1
        obs.count(
            "serve.validate", outcome="valid" if not errors else "invalid"
        )
        status = 200 if not errors else 422
        self._record("-/validate", status)
        payload = {
            "valid": not errors,
            "errors": [_error_entry(error) for error in errors],
        }
        return build_response(
            status,
            (json.dumps(payload, indent=2) + "\n").encode(),
            json_type,
            keep_alive=keep_alive,
        )

    async def _validate_pooled(
        self, request: HttpRequest, body: bytes, keep_alive: bool
    ) -> bytes:
        """``POST /-/validate`` through the persistent worker pool.

        Verdict JSON is byte-identical to the inline path — workers
        shape errors with the same helper — but the validation itself
        runs in another process, so N pool workers validate N posted
        documents genuinely in parallel.
        """
        keep_alive = keep_alive and not self.stats["draining"]
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError:
            self._record("-/validate", 400)
            return error_response(400, "request body is not valid UTF-8")
        try:
            with obs.timeit("serve.validate", route="pool"):
                future = self.validate_pool.submit_text(text)
                payload = await asyncio.wrap_future(future)
        except ReproError as error:
            # The pool lost every worker (or was closed under us):
            # fail the request, not the server.
            self._record("-/validate", 503)
            obs.count("serve.fallback", route="-/validate", reason="pool-down")
            return error_response(
                503, f"validation pool unavailable ({error})", keep_alive=False
            )
        self.stats["validated"] += 1
        self.stats["pool_validated"] += 1
        obs.count(
            "serve.validate",
            outcome="valid" if payload["valid"] else "invalid",
        )
        obs.count("serve.validate.pool")
        status = 200 if payload["valid"] else 422
        self._record("-/validate", status)
        return build_response(
            status,
            (json.dumps(payload, indent=2) + "\n").encode(),
            "application/json; charset=utf-8",
            keep_alive=keep_alive,
        )

    def _finish(
        self,
        route: Route,
        body: bytes,
        etag: str,
        if_none_match: str | None,
        *,
        keep_alive: bool,
        head_only: bool,
    ) -> bytes:
        """A buffered 200 with its validator, or a 304 when it matches."""
        if if_none_match and etag_matches(if_none_match, etag):
            self._record(route.name, 304)
            self.stats["not_modified"] += 1
            return not_modified_response(etag, keep_alive=keep_alive)
        self._record(route.name, 200)
        return build_response(
            200,
            body,
            PAGE_CONTENT_TYPE,
            keep_alive=keep_alive,
            head_only=head_only,
            extra_headers=(("ETag", etag),),
        )

    def _chunked_parts(
        self, encoded: list[bytes], etag: str, keep_alive: bool
    ) -> list[bytes]:
        """Frame validated pieces as a chunked response part list.

        Pieces are coalesced up to :data:`STREAM_CHUNK_BYTES` per chunk;
        empty pieces are dropped (a zero-length chunk would terminate
        the body early).  De-chunked, the body is byte-identical to the
        buffered response.
        """
        parts = [
            start_chunked_response(
                200,
                PAGE_CONTENT_TYPE,
                keep_alive=keep_alive,
                extra_headers=(("ETag", etag),),
            )
        ]
        pending: list[bytes] = []
        size = 0
        for piece in encoded:
            if not piece:
                continue
            pending.append(piece)
            size += len(piece)
            if size >= STREAM_CHUNK_BYTES:
                parts.append(encode_chunk(b"".join(pending)))
                pending.clear()
                size = 0
        if pending:
            parts.append(encode_chunk(b"".join(pending)))
        parts.append(LAST_CHUNK)
        return parts

    def _observe_latency(self, route_name: str, seconds: float) -> None:
        self.stats.setdefault("render_seconds", 0.0)
        self.stats["render_seconds"] += seconds

    def _stats_body(self) -> bytes:
        snapshot = {
            "server": {
                **{
                    key: value
                    for key, value in self.stats.items()
                    if key != "responses"
                },
                "responses": dict(self.stats["responses"]),
                "routes": self.routes.paths(),
                "max_connections": self.max_connections,
                "request_timeout": self.request_timeout,
                "stream": self.stream,
                "cache": (
                    self.cache.snapshot() if self.cache is not None else None
                ),
                "validate_pool": (
                    self.validate_pool.stats_snapshot()
                    if self.validate_pool is not None
                    else None
                ),
            },
            "obs": obs.snapshot(),
        }
        return (json.dumps(snapshot, indent=2, sort_keys=True) + "\n").encode()


def _error_entry(error: Exception) -> dict[str, Any]:
    """JSON shape for one validation/syntax error (shared with the
    pool workers, so pooled and inline verdicts are byte-identical)."""
    from repro.xsd.stream import error_entry

    return error_entry(error)


async def serve(
    routes: RouteTable,
    host: str = "127.0.0.1",
    port: int = 8080,
    **options: Any,
) -> None:
    """Convenience: build a :class:`ReproServer` and run it to drain."""
    server = ReproServer(routes, host, port, **options)
    await server.run()

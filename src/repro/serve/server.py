"""The asyncio HTTP server serving compiled, schema-valid pages.

``asyncio.start_server`` accepts connections; each connection runs a
keep-alive loop: read one request head (bounded in time and size),
dispatch it through the :class:`~repro.serve.routes.RouteTable`, write
one ``Content-Length``-framed response.  Rendering is the segment
pipeline's ``render_text`` — the same precomputed-string path the
benchmarks measure — so the serving tier adds framing, not tree walks.

Operational behaviour:

* **connection cap with backpressure** — at most ``max_connections``
  connections are *served* concurrently; beyond that, new connections
  queue on a semaphore (their bytes wait in kernel buffers) instead of
  being refused;
* **per-request timeout** — a request head that does not arrive within
  ``request_timeout`` seconds gets a 408 and the connection is closed;
  the same budget bounds body reads;
* **graceful drain** — SIGTERM (or :meth:`request_shutdown`) stops the
  listener, lets every in-flight request finish, then returns from
  :meth:`run`; responses sent while draining carry
  ``Connection: close``;
* **observability** — every request counts into :mod:`repro.obs`
  (``serve.request`` by route and status, ``serve.latency`` timings,
  ``serve.fallback`` for unvalidated/missed routes) and into a
  process-local ``stats`` dict served at ``/-/stats`` so a scrape needs
  no obs opt-in.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any

from repro import obs
from repro.errors import PxmlError, ValidationError, VdomError
from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEAD_BYTES,
    HttpError,
    HttpRequest,
    build_response,
    error_response,
    parse_request,
)
from repro.serve.routes import RouteTable

#: content type of every rendered page (they are XML by construction)
PAGE_CONTENT_TYPE = "application/xml; charset=utf-8"

#: parameter-shaped failures: the request named holes that do not fit
_CLIENT_PARAM_ERRORS = (TypeError, KeyError, NameError)

#: validity-shaped failures: the value reached the schema and lost
_VALIDITY_ERRORS = (VdomError, ValidationError, PxmlError)


class ReproServer:
    """Serve a :class:`RouteTable` over HTTP/1.1."""

    def __init__(
        self,
        routes: RouteTable,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_connections: int = 64,
        request_timeout: float = 10.0,
    ):
        self.routes = routes
        self.host = host
        self.port = port  # replaced by the bound port after start()
        self.max_connections = max_connections
        self.request_timeout = request_timeout
        self.stats: dict[str, Any] = {
            "connections": 0,
            "requests": 0,
            "responses": {},  # status code (str, for JSON) -> count
            "active": 0,
            "peak_active": 0,
            "timeouts": 0,
            "bytes_sent": 0,
            "draining": False,
        }
        self._server: asyncio.base_events.Server | None = None
        self._gate = asyncio.Semaphore(max_connections)
        self._connections: set[asyncio.Task] = set()
        self._shutdown_requested: asyncio.Event | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting (returns once listening)."""
        self._shutdown_requested = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_HEAD_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Ask :meth:`run` to drain and return (signal-handler safe)."""
        if self._shutdown_requested is not None:
            self._shutdown_requested.set()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests finish, close up."""
        self.stats["draining"] = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        pending = {task for task in self._connections if not task.done()}
        if pending:
            # Keep-alive loops notice the drain flag after their current
            # response; an idle connection is bounded by the request
            # timeout.  Anything still alive after that grace window is
            # cancelled rather than holding shutdown hostage.
            _done, stragglers = await asyncio.wait(
                pending, timeout=self.request_timeout + 1.0
            )
            for task in stragglers:
                task.cancel()
            if stragglers:
                await asyncio.wait(stragglers)

    async def run(self, *, install_signal_handlers: bool = True) -> None:
        """Start, serve until SIGTERM/SIGINT (or
        :meth:`request_shutdown`), then drain gracefully."""
        if self._server is None:
            await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    # Platforms/embeddings without signal support still
                    # get programmatic shutdown.
                    break
        assert self._shutdown_requested is not None
        await self._shutdown_requested.wait()
        await self.drain()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        self.stats["connections"] += 1
        try:
            # The cap: waiting here *is* the backpressure — the client's
            # request bytes sit in kernel buffers until a slot frees up.
            async with self._gate:
                self.stats["active"] += 1
                self.stats["peak_active"] = max(
                    self.stats["peak_active"], self.stats["active"]
                )
                try:
                    await self._serve_connection(reader, writer)
                finally:
                    self.stats["active"] -= 1
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-write; nothing left to tell it
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while not self.stats["draining"]:
            try:
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), self.request_timeout
                )
            except asyncio.TimeoutError:
                self.stats["timeouts"] += 1
                obs.count("serve.timeout")
                await self._send(writer, error_response(408, "request timed out"))
                return
            except asyncio.IncompleteReadError as partial:
                if partial.partial:
                    await self._send(
                        writer, error_response(400, "truncated request head")
                    )
                return  # clean EOF between requests: client hung up
            except asyncio.LimitOverrunError:
                await self._send(
                    writer, error_response(431, "request head too large")
                )
                return
            try:
                request = parse_request(head[:-4])
                length = request.content_length
                if length > MAX_BODY_BYTES:
                    raise HttpError(413, "request body too large")
                if length:
                    # Bodies are irrelevant to GET-shaped page serving;
                    # read and discard to keep the stream framed.
                    await asyncio.wait_for(
                        reader.readexactly(length), self.request_timeout
                    )
            except HttpError as error:
                self._record(None, error.status)
                await self._send(
                    writer, error_response(error.status, error.message)
                )
                return
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                self.stats["timeouts"] += 1
                await self._send(writer, error_response(408, "body timed out"))
                return
            keep_alive = request.wants_keep_alive()
            response = self._respond(request, keep_alive)
            await self._send(writer, response)
            if not keep_alive:
                return

    async def _send(self, writer: asyncio.StreamWriter, payload: bytes) -> None:
        writer.write(payload)
        self.stats["bytes_sent"] += len(payload)
        await writer.drain()

    # -- request dispatch ----------------------------------------------------

    def _record(self, route_name: str | None, status: int) -> None:
        self.stats["requests"] += 1
        responses = self.stats["responses"]
        key = str(status)
        responses[key] = responses.get(key, 0) + 1
        obs.count(
            "serve.request", route=route_name or "-", status=status
        )

    def _respond(self, request: HttpRequest, keep_alive: bool) -> bytes:
        """One request to one complete response byte string."""
        keep_alive = keep_alive and not self.stats["draining"]
        head_only = request.method == "HEAD"
        if request.method not in ("GET", "HEAD"):
            self._record(None, 405)
            body = f"405 Method Not Allowed: {request.method}\n".encode()
            return build_response(
                405,
                body,
                keep_alive=keep_alive,
                head_only=head_only,
                extra_headers=(("Allow", "GET, HEAD"),),
            )
        if request.path == "/-/stats":
            self._record("-/stats", 200)
            return build_response(
                200,
                self._stats_body(),
                "application/json; charset=utf-8",
                keep_alive=keep_alive,
                head_only=head_only,
            )
        if request.path == "/-/health":
            status = 503 if self.stats["draining"] else 200
            self._record("-/health", status)
            body = b"draining\n" if status == 503 else b"ok\n"
            return build_response(
                status, body, keep_alive=keep_alive, head_only=head_only
            )
        route = self.routes.resolve(request.path)
        if route is None:
            self._record(None, 404)
            obs.count("serve.fallback", route="-", reason="no-route")
            body = f"404 Not Found: no route for {request.path}\n".encode()
            return build_response(
                404, body, keep_alive=keep_alive, head_only=head_only
            )
        started = time.perf_counter()
        try:
            with obs.timeit("serve.render", route=route.name):
                text = route.render(request.query)
        except _VALIDITY_ERRORS as error:
            # The page would have been schema-invalid; it is refused
            # whole instead of served broken.
            self._record(route.name, 422)
            obs.count("serve.fallback", route=route.name, reason="invalid")
            return error_response(422, str(error), keep_alive=False)
        except _CLIENT_PARAM_ERRORS as error:
            self._record(route.name, 400)
            obs.count("serve.fallback", route=route.name, reason="bad-params")
            return error_response(
                400,
                f"missing or unusable page parameter ({error})",
                keep_alive=False,
            )
        except Exception as error:  # noqa: BLE001
            # Audited boundary: an arbitrary page bug must become one
            # 500, never a dropped connection or a dead server.
            self._record(route.name, 500)
            obs.count(
                "serve.fallback",
                route=route.name,
                reason=type(error).__name__,
            )
            return error_response(500, "page failed to render", keep_alive=False)
        body = text.encode("utf-8")
        self._record(route.name, 200)
        self._observe_latency(route.name, time.perf_counter() - started)
        return build_response(
            200,
            body,
            PAGE_CONTENT_TYPE,
            keep_alive=keep_alive,
            head_only=head_only,
        )

    def _observe_latency(self, route_name: str, seconds: float) -> None:
        self.stats.setdefault("render_seconds", 0.0)
        self.stats["render_seconds"] += seconds

    def _stats_body(self) -> bytes:
        snapshot = {
            "server": {
                **{
                    key: value
                    for key, value in self.stats.items()
                    if key != "responses"
                },
                "responses": dict(self.stats["responses"]),
                "routes": self.routes.paths(),
                "max_connections": self.max_connections,
                "request_timeout": self.request_timeout,
            },
            "obs": obs.snapshot(),
        }
        return (json.dumps(snapshot, indent=2, sort_keys=True) + "\n").encode()


async def serve(
    routes: RouteTable,
    host: str = "127.0.0.1",
    port: int = 8080,
    **options: Any,
) -> None:
    """Convenience: build a :class:`ReproServer` and run it to drain."""
    server = ReproServer(routes, host, port, **options)
    await server.run()

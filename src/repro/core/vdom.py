"""The V-DOM runtime: schema-generated typed classes over the DOM.

For every element interface of the model, :func:`bind` materializes a
Python class extending :class:`repro.dom.Element` — the literal Python
rendering of the paper's "each interface extends the Element-interface of
the Document Object Model".  Choice groups become abstract marker
classes; substitution-group members subclass their head's class.

The paper's compile-time guarantee is re-hosted at the two moments a
dynamic language has (see DESIGN.md):

* **construction**: a typed constructor accepts children and attribute
  values, fills fixed/defaulted attributes, and verifies the result
  against the content-model DFA — an invalid element never exists;
* **mutation**: ``append_child``/``add``/``set_attribute`` & friends
  re-verify and roll back on failure, so the invariant "every live
  V-DOM tree is valid" survives edits (the property that lets the
  serializer skip validation entirely).

The occurrence-count caveat of the paper's rule 5 ("the resulting
interface does not allow to check statically whether the number of
elements matches") is where the DFA check does the runtime work.
"""

from __future__ import annotations

import datetime
import decimal
import functools
import keyword
import re
from typing import Any

from repro.errors import (
    SimpleTypeError,
    UnsupportedFeatureError,
    VdomStateError,
    VdomTypeError,
)
from repro.dom.charnodes import Text
from repro.dom.document import Document
from repro.dom.element import Element
from repro.dom.node import Node
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ContentType,
    ElementDeclaration,
    Schema,
)
from repro.xsd.schema_parser import parse_schema
from repro.xsd.simple import SimpleType
from repro.core.naming import NamingScheme
from repro.core.normalize import normalize
from repro.core.generate import ChoiceStrategy, generate_interfaces
from repro.core.model import (
    Field,
    FieldKind,
    Interface,
    InterfaceKind,
    InterfaceModel,
)


@functools.lru_cache(maxsize=4096)
def snake_case(name: str) -> str:
    """``purchaseOrder`` → ``purchase_order``; ``USPrice`` → ``us_price``."""
    step1 = re.sub(r"(.)([A-Z][a-z]+)", r"\1_\2", name)
    step2 = re.sub(r"([a-z0-9])([A-Z])", r"\1_\2", step1)
    result = step2.replace("-", "_").replace(".", "_").lower()
    if keyword.iskeyword(result) or not result.isidentifier():
        result += "_"
    return result


@functools.lru_cache(maxsize=4096)
def class_case(name: str) -> str:
    """``purchaseOrderElement`` → ``PurchaseOrderElement``."""
    cleaned = re.sub(r"[^0-9a-zA-Z]+", " ", name)
    return "".join(word[:1].upper() + word[1:] for word in cleaned.split())


def lexicalize(value: Any) -> str:
    """Turn a Python value into its XML literal form."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float, decimal.Decimal)):
        return str(value)
    if isinstance(value, (datetime.date, datetime.datetime, datetime.time)):
        return value.isoformat()
    raise VdomTypeError(
        f"cannot render a {type(value).__name__} value as XML text"
    )


class VdomGroup:
    """Base of all choice-group marker classes."""


class TypedElement(Element):
    """Base of every generated element class.

    Subclasses carry class-level metadata installed by :func:`bind`:
    ``_DECLARATION`` (the schema element declaration), ``_TYPE`` (its
    resolved type), ``_BINDING`` (the owning :class:`Binding`).
    """

    _DECLARATION: ElementDeclaration
    _TYPE: Any
    _BINDING: "Binding"
    _ATTRIBUTE_FIELDS: dict[str, Field]  # python name -> field

    #: incremental-append cache: (element-child count, total node count,
    #: DFA state) as of the last successful full content check; cleared
    #: by any other mutation.  Makes ``parent.add(child)`` loops O(n)
    #: instead of O(n²) without weakening the invariant.
    _content_state: tuple[int, int, int] | None = None

    def __init__(self, *children: Any, **attribute_values: Any):
        declaration = type(self)._DECLARATION
        if declaration.abstract:
            raise VdomTypeError(
                f"element '{declaration.name}' is abstract; construct a "
                "member of its substitution group instead"
            )
        type_definition = type(self)._TYPE
        if isinstance(type_definition, ComplexType) and type_definition.abstract:
            raise VdomTypeError(
                f"type '{type_definition.name}' of element "
                f"'{declaration.name}' is abstract"
            )
        super().__init__(declaration.name, None)
        for child in children:
            self._append_value(child)
        self._apply_attribute_defaults()
        for python_name, value in attribute_values.items():
            field = self._attribute_field(python_name)
            self._set_typed_attribute(field, value)
        self._check()

    # -- constructor helpers ------------------------------------------------

    def _append_value(self, child: Any) -> None:
        if child is None:
            return
        if isinstance(child, TypedElement):
            Element.append_child(self, child)
            return
        if isinstance(child, Element):
            raise VdomTypeError(
                f"<{self.tag_name}> only accepts typed children; got the "
                f"untyped DOM element <{child.tag_name}>"
            )
        if isinstance(child, (list, tuple)):
            for item in child:
                self._append_value(item)
            return
        literal = self._lexicalize(child)
        Element.append_child(self, Text(literal, None))

    def _lexicalize(self, value: Any) -> str:
        """Turn a Python value into its XML literal."""
        try:
            return lexicalize(value)
        except VdomTypeError:
            raise VdomTypeError(
                f"cannot use a {type(value).__name__} value as content of "
                f"<{self.tag_name}>"
            )

    def _apply_attribute_defaults(self) -> None:
        for field in type(self)._ATTRIBUTE_FIELDS.values():
            if field.fixed is not None:
                Element.set_attribute(self, field.xml_name or field.name, field.fixed)
            elif field.default is not None:
                Element.set_attribute(
                    self, field.xml_name or field.name, field.default
                )

    def _attribute_field(self, python_name: str) -> Field:
        fields = type(self)._ATTRIBUTE_FIELDS
        if python_name in fields:
            return fields[python_name]
        # Also accept the literal XML attribute name.
        for field in fields.values():
            if field.xml_name == python_name or field.name == python_name:
                return field
        raise VdomTypeError(
            f"<{self.tag_name}> has no attribute '{python_name}' "
            f"(known: {', '.join(sorted(fields)) or 'none'})"
        )

    def _set_typed_attribute(self, field: Field, value: Any) -> None:
        if value is None:
            Element.remove_attribute(self, field.xml_name or field.name)
            return
        literal = value if isinstance(value, str) else self._lexicalize(value)
        Element.set_attribute(self, field.xml_name or field.name, literal)

    # -- validation -----------------------------------------------------------

    def _check(self) -> None:
        if type(self)._BINDING.validate_on_mutate:
            self.check_valid()

    def check_valid(self) -> None:
        """Verify this element (shallow: children assumed valid)."""
        declaration = type(self)._DECLARATION
        type_definition = type(self)._TYPE
        if isinstance(type_definition, SimpleType):
            self._check_simple(type_definition)
        elif type_definition is not ANY_TYPE:
            self._check_complex(type_definition)
        if declaration.fixed is not None and self.text_content != declaration.fixed:
            raise VdomTypeError(
                f"element '{declaration.name}' must have the fixed value "
                f"{declaration.fixed!r}"
            )

    def check_valid_deep(self) -> None:
        """Verify this element and every typed descendant."""
        self.check_valid()
        for node in self.iter_descendants():
            if isinstance(node, TypedElement):
                node.check_valid()

    def _check_simple(self, simple_type: SimpleType) -> None:
        if self.child_elements():
            raise VdomTypeError(
                f"<{self.tag_name}> has a simple type and may not contain "
                "child elements"
            )
        if len(self.attributes):
            raise VdomTypeError(
                f"<{self.tag_name}> has a simple type and may not carry "
                "attributes"
            )
        try:
            simple_type.parse(self.text_content)
        except SimpleTypeError as error:
            raise VdomTypeError(
                f"content of <{self.tag_name}>: {error.message}"
            )

    def _check_complex(self, complex_type: ComplexType) -> None:
        self._check_attributes(complex_type)
        content_type = complex_type.content_type
        children = self.child_elements()
        has_text = any(
            isinstance(node, Text) and node.data.strip()
            for node in self.iter_children()
        )
        if content_type is ContentType.EMPTY:
            if children or has_text:
                raise VdomTypeError(f"<{self.tag_name}> must be empty")
            return
        if content_type is ContentType.SIMPLE:
            if children:
                raise VdomTypeError(
                    f"<{self.tag_name}> has simple content and may not "
                    "contain child elements"
                )
            assert complex_type.simple_content is not None
            try:
                complex_type.simple_content.parse(self.text_content)
            except SimpleTypeError as error:
                raise VdomTypeError(
                    f"content of <{self.tag_name}>: {error.message}"
                )
            return
        if content_type is ContentType.ELEMENT_ONLY and has_text:
            raise VdomTypeError(
                f"<{self.tag_name}> has element-only content and may not "
                "contain text"
            )
        schema = type(self)._BINDING.schema
        matcher = schema.content_dfa(complex_type).matcher()
        for index, child in enumerate(children):
            matched = matcher.step(child.tag_name)
            if matched is None:
                expected = ", ".join(
                    f"<{key}>" for key in matcher.expected()
                ) or "no further children"
                raise VdomTypeError(
                    f"child {index + 1} of <{self.tag_name}> is "
                    f"<{child.tag_name}>; expected {expected}"
                )
            if not isinstance(child, TypedElement):
                raise VdomTypeError(
                    f"child <{child.tag_name}> of <{self.tag_name}> is not "
                    "a typed element"
                )
            assert isinstance(matched, ElementDeclaration)
            expected_class = type(self)._BINDING.class_by_declaration.get(
                id(matched)
            )
            if expected_class is None or not isinstance(child, expected_class):
                raise VdomTypeError(
                    f"child <{child.tag_name}> of <{self.tag_name}> was "
                    "built for a different declaration of that name"
                )
        if not matcher.at_accepting_state():
            expected = ", ".join(f"<{key}>" for key in matcher.expected())
            raise VdomTypeError(
                f"content of <{self.tag_name}> is incomplete; expected "
                f"{expected}"
            )
        self._content_state = (
            len(children),
            len(self._children),
            matcher.state,
        )

    def _check_attributes(self, complex_type: ComplexType) -> None:
        uses = complex_type.effective_attribute_uses()
        for name, value in self.attributes.items():
            use = uses.get(name)
            if use is None:
                raise VdomTypeError(
                    f"attribute '{name}' is not declared on <{self.tag_name}>"
                )
            if use.fixed is not None and value != use.fixed:
                raise VdomTypeError(
                    f"attribute '{name}' of <{self.tag_name}> must have the "
                    f"fixed value {use.fixed!r}"
                )
            try:
                use.declaration.resolved_type().parse(value)
            except SimpleTypeError as error:
                raise VdomTypeError(
                    f"attribute '{name}' of <{self.tag_name}>: {error.message}"
                )
        for name, use in uses.items():
            if use.required and not self.has_attribute(name):
                raise VdomTypeError(
                    f"required attribute '{name}' missing on <{self.tag_name}>"
                )

    # -- guarded mutation ---------------------------------------------------------

    def _insert(self, node: Node, index: int) -> None:
        """Re-parenting a typed node steals it from its old parent; make
        sure that theft cannot invalidate the *source* tree."""
        if isinstance(node, TypedElement):
            self._release_from_old_parent(node)
        Element._insert(self, node, index)

    def _release_from_old_parent(self, child: "TypedElement") -> None:
        old_parent = child.parent_node
        if not isinstance(old_parent, TypedElement) or old_parent is self:
            return
        position = old_parent._children.index(child)
        old_parent._children.remove(child)
        child._parent = None
        try:
            if type(old_parent)._BINDING.validate_on_mutate:
                old_parent.check_valid()
        except VdomTypeError:
            old_parent._children.insert(position, child)
            child._parent = old_parent
            raise VdomTypeError(
                f"moving <{child.tag_name}> out of <{old_parent.tag_name}> "
                "would invalidate it; replace it there explicitly first"
            )

    def _try_fast_append(self, node: Any) -> bool:
        """Append *node* with an incremental content check when safe.

        Resumes the DFA from the state cached by the last full check,
        steps it once, and requires the result to be accepting — the
        same verdict a full re-check would reach, in O(1).
        Returns False when the fast path does not apply (the caller
        falls back to the guarded full check).
        """
        if not isinstance(node, TypedElement):
            return False
        binding = type(self)._BINDING
        if not binding.validate_on_mutate:
            return False
        declaration = type(self)._DECLARATION
        if declaration.fixed is not None:
            return False
        type_definition = type(self)._TYPE
        if not isinstance(type_definition, ComplexType):
            return False
        if type_definition.content_type not in (
            ContentType.ELEMENT_ONLY,
            ContentType.MIXED,
        ):
            return False
        cache = self._content_state
        if cache is None or cache[1] != len(self._children):
            return False
        dfa = binding.schema.content_dfa(type_definition)
        matcher = dfa.matcher()
        matcher.state = cache[2]
        matched = matcher.step(node.tag_name)
        if matched is None:
            expected = ", ".join(
                f"<{key}>" for key in matcher.expected()
            ) or "no further children"
            raise VdomTypeError(
                f"child {cache[0] + 1} of <{self.tag_name}> is "
                f"<{node.tag_name}>; expected {expected}"
            )
        if not matcher.at_accepting_state():
            expected = ", ".join(f"<{key}>" for key in matcher.expected())
            raise VdomTypeError(
                f"content of <{self.tag_name}> would become incomplete; "
                f"expected {expected}"
            )
        assert isinstance(matched, ElementDeclaration)
        expected_class = binding.class_by_declaration.get(id(matched))
        if expected_class is None or not isinstance(node, expected_class):
            raise VdomTypeError(
                f"child <{node.tag_name}> of <{self.tag_name}> was built "
                "for a different declaration of that name"
            )
        Element.append_child(self, node)
        self._content_state = (
            cache[0] + 1,
            len(self._children),
            matcher.state,
        )
        return True

    def _guarded(self, action):
        """Run a mutation, re-validate, roll back on failure."""
        self._content_state = None  # any slow-path mutation invalidates
        children_snapshot = list(self._children)
        parents_snapshot = [child._parent for child in children_snapshot]
        attrs_snapshot = dict(self.attributes._attrs)
        values_snapshot = {
            name: attr.value for name, attr in attrs_snapshot.items()
        }
        try:
            result = action()
            self._check()
            return result
        except VdomTypeError:
            self._children[:] = children_snapshot
            for child, parent in zip(children_snapshot, parents_snapshot):
                child._parent = parent
            self.attributes._attrs.clear()
            self.attributes._attrs.update(attrs_snapshot)
            for name, attr in attrs_snapshot.items():
                attr.value = values_snapshot[name]
            raise

    def append_child(self, node: Node) -> Node:
        if self._try_fast_append(node):
            return node
        return self._guarded(lambda: Element.append_child(self, node))

    def insert_before(self, node: Node, reference: Node | None) -> Node:
        return self._guarded(lambda: Element.insert_before(self, node, reference))

    def remove_child(self, node: Node) -> Node:
        return self._guarded(lambda: Element.remove_child(self, node))

    def replace_child(self, new: Node, old: Node) -> Node:
        return self._guarded(lambda: Element.replace_child(self, new, old))

    def set_attribute(self, name: str, value: str) -> None:
        self._guarded(lambda: Element.set_attribute(self, name, value))

    def remove_attribute(self, name: str) -> None:
        self._guarded(lambda: Element.remove_attribute(self, name))

    def add(self, child: Any) -> "TypedElement":
        """Typed append (the paper's ``s.add(o)``); returns self."""
        if isinstance(child, TypedElement) and self._try_fast_append(child):
            return self
        self._guarded(lambda: self._append_value(child))
        return self

    # -- generic typed access --------------------------------------------------------

    def _child_by_names(self, names: frozenset[str]) -> TypedElement | None:
        for child in self.child_elements():
            if child.tag_name in names and isinstance(child, TypedElement):
                return child
        return None

    def _children_by_names(self, names: frozenset[str]) -> list[TypedElement]:
        return [
            child
            for child in self.child_elements()
            if child.tag_name in names and isinstance(child, TypedElement)
        ]

    @property
    def content(self) -> str:
        """Text content of simple/mixed elements (paper: ``content``)."""
        return self.text_content

    @property
    def value(self) -> Any:
        """Parsed (typed) value for simple-typed elements."""
        type_definition = type(self)._TYPE
        if isinstance(type_definition, SimpleType):
            return type_definition.parse(self.text_content)
        if (
            isinstance(type_definition, ComplexType)
            and type_definition.simple_content is not None
        ):
            return type_definition.simple_content.parse(self.text_content)
        raise VdomStateError(
            f"<{self.tag_name}> has complex content; use its typed "
            "properties instead of .value"
        )


class Factory:
    """``create_*`` constructors, one per element class (Fig. 11 style)."""

    def __init__(self, binding: "Binding"):
        self._binding = binding

    def __repr__(self) -> str:
        return f"Factory({sorted(self._binding.factory_names())!r})"


class Binding:
    """Everything generated for one schema."""

    #: content fingerprint of the schema source this binding came from,
    #: stamped by :meth:`repro.cache.ReproCache.bind`; downstream caches
    #: (P-XML templates) chain their keys off it.  ``None`` when the
    #: binding was built without a cache.
    cache_fingerprint: str | None = None

    def __init__(
        self,
        schema: Schema,
        model: InterfaceModel,
        validate_on_mutate: bool = True,
    ):
        self.schema = schema
        self.model = model
        self.validate_on_mutate = validate_on_mutate
        self.classes: dict[str, type] = {}  # interface key -> class
        self.class_names: dict[str, str] = {}  # interface key -> python name
        self._global_elements: dict[str, type] = {}
        self._factory_methods: dict[str, type] = {}
        #: element name -> every class generated for a declaration of
        #: that name (usually one; more when local declarations collide)
        self.declarations_by_name: dict[str, list[type]] = {}
        #: id(ElementDeclaration) -> generated class
        self.class_by_declaration: dict[int, type] = {}
        #: generated class -> its factory method name
        self.factory_method_by_class: dict[type, str] = {}
        self._build()
        self.factory = self._make_factory()

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        taken: set[str] = set()
        # Group marker classes first (element classes inherit from them).
        for interface in self.model.by_kind(InterfaceKind.GROUP):
            name = self._allocate_name(interface, taken)
            cls = type(name, (VdomGroup,), {"__doc__": interface.doc})
            self.classes[interface.key] = cls
            self.class_names[interface.key] = name
        # Element classes in dependency order (substitution heads first).
        pending = [
            interface
            for interface in self.model.by_kind(InterfaceKind.ELEMENT)
        ]
        progress = True
        while pending and progress:
            progress = False
            remaining: list[Interface] = []
            for interface in pending:
                if all(
                    base_key in self.classes
                    or self.model[base_key].kind is not InterfaceKind.ELEMENT
                    for base_key in interface.extends
                ):
                    self._build_element_class(interface, taken)
                    progress = True
                else:
                    remaining.append(interface)
            pending = remaining
        if pending:  # pragma: no cover - cycles are rejected at parse time
            raise VdomTypeError(
                f"circular element inheritance through "
                f"{pending[0].name}"
            )

    def _allocate_name(self, interface: Interface, taken: set[str]) -> str:
        candidate = class_case(interface.name)
        if candidate in taken:
            candidate = class_case(interface.key)
        counter = 2
        base = candidate
        while candidate in taken:
            candidate = f"{base}{counter}"
            counter += 1
        taken.add(candidate)
        return candidate

    def _build_element_class(self, interface: Interface, taken: set[str]) -> None:
        assert interface.declaration is not None
        bases: list[type] = []
        for base_key in interface.extends:
            base_interface = self.model[base_key]
            if base_interface.kind is InterfaceKind.ELEMENT:
                bases.append(self.classes[base_key])
        if not any(issubclass(base, TypedElement) for base in bases):
            bases.append(TypedElement)
        for base_key in interface.extends:
            base_interface = self.model[base_key]
            if base_interface.kind is InterfaceKind.GROUP:
                bases.append(self.classes[base_key])
        name = self._allocate_name(interface, taken)
        tag = interface.declaration.name
        namespace: dict[str, Any] = {
            "__doc__": interface.doc,
            "_DECLARATION": interface.declaration,
            "_TYPE": interface.type_definition,
            "_BINDING": self,
            "_ATTRIBUTE_FIELDS": {},
            # Start/end tag text precomputed at bind time: the schema
            # guarantees the name, so serialization never re-runs is_name().
            "_TAG_PARTS": ("<" + tag, "</" + tag + ">"),
        }
        self._install_properties(interface, namespace)
        cls = type(name, tuple(bases), namespace)
        self.classes[interface.key] = cls
        self.class_names[interface.key] = name
        if interface.nested_in is None and interface.declaration.is_global:
            self._global_elements[interface.declaration.name] = cls
        self.declarations_by_name.setdefault(
            interface.declaration.name, []
        ).append(cls)
        self.class_by_declaration[id(interface.declaration)] = cls
        for extra in interface.extra_declarations:
            self.class_by_declaration[id(extra)] = cls
        self._register_factory_method(interface, cls)

    def _install_properties(
        self, interface: Interface, namespace: dict[str, Any]
    ) -> None:
        """Typed properties from the *type* interface's fields."""
        content_field = next(
            (f for f in interface.fields if f.kind is FieldKind.CONTENT), None
        )
        if content_field is None or content_field.target_key is None:
            return
        target = self.model[content_field.target_key]
        if target.kind is not InterfaceKind.TYPE:
            return
        fields = self._effective_fields(target)
        attribute_fields: dict[str, Field] = {}
        for field in fields:
            python_name = snake_case(field.name)
            if field.kind is FieldKind.ATTRIBUTE:
                attribute_fields[python_name] = field
                namespace[python_name] = self._attribute_property(field)
            elif field.kind in (FieldKind.CHILD, FieldKind.CONTENT):
                namespace[python_name] = self._child_property(field)
            elif field.kind is FieldKind.LIST:
                namespace[python_name] = self._list_property(field)
            elif field.kind in (FieldKind.CHOICE, FieldKind.GROUP):
                namespace[python_name] = self._choice_property(field)
        namespace["_ATTRIBUTE_FIELDS"] = attribute_fields

    def _effective_fields(self, type_interface: Interface) -> list[Field]:
        fields: list[Field] = []
        for base_key in type_interface.extends:
            base = self.model[base_key]
            if base.kind is InterfaceKind.TYPE:
                fields.extend(self._effective_fields(base))
        fields.extend(type_interface.fields)
        return fields

    def _names_for_field(self, field: Field) -> frozenset[str]:
        """The element names a child field can match in the tree.

        Memoized on the field itself: the result depends only on the
        schema + model the field belongs to, so cached artifacts carry
        it and warm starts skip the substitution-group scans.
        """
        if field.resolved_names is None:
            field.resolved_names = self._compute_names_for_field(field)
        return field.resolved_names

    def _compute_names_for_field(self, field: Field) -> frozenset[str]:
        if field.target_key is None:
            return frozenset({field.xml_name or field.name})
        target = self.model[field.target_key]
        if target.kind is InterfaceKind.ELEMENT:
            assert target.declaration is not None
            names = {
                alt.name
                for alt in self.schema.substitution_alternatives(
                    target.declaration
                )
            }
            names.add(target.declaration.name)
            return frozenset(names)
        if target.kind is InterfaceKind.GROUP:
            names: set[str] = set()
            for nested in self.model.nested_interfaces(target.key):
                if nested.declaration is not None:
                    names.add(nested.declaration.name)
            # Global alternatives extend the group without nesting.
            for interface in self.model.by_kind(InterfaceKind.ELEMENT):
                if target.key in interface.extends and interface.declaration:
                    for alt in self.schema.substitution_alternatives(
                        interface.declaration
                    ):
                        names.add(alt.name)
                    names.add(interface.declaration.name)
            return frozenset(names)
        return frozenset({field.xml_name or field.name})

    def _attribute_property(self, field: Field):
        xml_name = field.xml_name or field.name
        simple_type = (
            field.simple_type
            if isinstance(field.simple_type, SimpleType)
            else None
        )

        def getter(element: TypedElement) -> Any:
            if not element.has_attribute(xml_name):
                return None
            literal = element.get_attribute(xml_name)
            return simple_type.parse(literal) if simple_type else literal

        def setter(element: TypedElement, value: Any) -> None:
            if value is None:
                element.remove_attribute(xml_name)
                return
            literal = (
                value if isinstance(value, str) else element._lexicalize(value)
            )
            element.set_attribute(xml_name, literal)

        return property(getter, setter, doc=f"attribute '{xml_name}'")

    def _child_property(self, field: Field):
        names = self._names_for_field(field)

        def getter(element: TypedElement) -> TypedElement | None:
            return element._child_by_names(names)

        def setter(element: TypedElement, value: TypedElement | None) -> None:
            current = element._child_by_names(names)
            if value is None:
                if current is not None:
                    element.remove_child(current)
                return
            if current is not None:
                element.replace_child(value, current)
            else:
                element.append_child(value)

        return property(getter, setter, doc=f"child element '{field.name}'")

    def _list_property(self, field: Field):
        names = self._names_for_field(field)

        def getter(element: TypedElement) -> list[TypedElement]:
            return element._children_by_names(names)

        return property(getter, doc=f"repeated children '{field.name}'")

    def _choice_property(self, field: Field):
        names = self._names_for_field(field)

        def getter(element: TypedElement) -> TypedElement | None:
            return element._child_by_names(names)

        def setter(element: TypedElement, value: TypedElement) -> None:
            current = element._child_by_names(names)
            if current is not None:
                element.replace_child(value, current)
            else:
                element.append_child(value)

        return property(getter, setter, doc=f"choice slot '{field.name}'")

    # -- factory -----------------------------------------------------------------

    def _register_factory_method(self, interface: Interface, cls: type) -> None:
        assert interface.declaration is not None
        method = f"create_{snake_case(interface.declaration.name)}"
        if method in self._factory_methods:
            owner = interface.nested_in or ""
            method = f"create_{snake_case(class_case(owner))}_" + snake_case(
                interface.declaration.name
            )
        self._factory_methods[method] = cls
        self.factory_method_by_class[cls] = method

    def _make_factory(self) -> Factory:
        factory = Factory(self)
        for method_name, cls in self._factory_methods.items():
            def make(cls=cls):
                def create(self_factory, *children, **attributes):
                    return cls(*children, **attributes)
                return create
            setattr(
                Factory, "_noop", None
            )  # keep Factory pickle-friendly; methods go on the instance
            bound = make().__get__(factory, Factory)
            object.__setattr__(factory, method_name, bound)
        return factory

    def factory_names(self) -> list[str]:
        return sorted(self._factory_methods)

    # -- public lookups -------------------------------------------------------------

    def element_class(self, element_name: str) -> type:
        """Class of a *global* element declaration."""
        try:
            return self._global_elements[element_name]
        except KeyError:
            raise VdomStateError(
                f"no generated class for global element '{element_name}'"
            )

    def class_for(self, interface_key: str) -> type:
        try:
            return self.classes[interface_key]
        except KeyError:
            raise VdomStateError(f"no generated class for '{interface_key}'")

    def class_named(self, python_name: str) -> type:
        for key, name in self.class_names.items():
            if name == python_name:
                return self.classes[key]
        raise VdomStateError(f"no generated class named '{python_name}'")

    def from_dom(self, element: Element) -> TypedElement:
        """Unmarshal a generic DOM element into the typed model.

        Children are attributed to declarations with the same content
        DFAs the validator uses, then typed objects are constructed
        bottom-up — so the result exists only if the input is valid:
        unmarshalling *is* validation, one of the paper's selling points
        for typed bindings.
        """
        self._require_no_namespaces("from_dom")
        declaration = self.schema.elements.get(element.tag_name)
        if declaration is None:
            raise VdomTypeError(
                f"<{element.tag_name}> is not a global element of the schema"
            )
        return self._from_dom(element, declaration)

    def _require_no_namespaces(self, operation: str) -> None:
        # The typed layer matches by local tag name; namespaced schemas
        # validate through the streaming lanes instead.
        if self.schema.uses_namespaces:
            raise UnsupportedFeatureError(
                f"{operation} is not available for schemas with a target "
                "namespace; use the streaming or DOM validators instead"
            )

    def _from_dom(
        self, element: Element, declaration: ElementDeclaration
    ) -> TypedElement:
        cls = self.class_by_declaration.get(id(declaration))
        if cls is None:
            raise VdomTypeError(
                f"no generated class for declaration '{declaration.name}'"
            )
        attributes = {
            name: value
            for name, value in element.attributes.items()
            if not name.startswith("xmlns")
        }
        type_definition = declaration.resolved_type()
        children: list[Any] = []
        if isinstance(type_definition, ComplexType) and (
            type_definition.content_type
            in (ContentType.ELEMENT_ONLY, ContentType.MIXED)
        ):
            matcher = self.schema.content_dfa(type_definition).matcher()
            for node in element.iter_children():
                if isinstance(node, Element):
                    matched = matcher.step(node.tag_name)
                    if matched is None:
                        raise VdomTypeError(
                            f"<{node.tag_name}> is not allowed inside "
                            f"<{element.tag_name}>"
                        )
                    assert isinstance(matched, ElementDeclaration)
                    children.append(self._from_dom(node, matched))
                elif isinstance(node, Text) and node.data.strip():
                    children.append(node.data)
        else:
            text = element.text_content
            if text:
                children.append(text)
        return cls(*children, **attributes)

    def idl(self) -> str:
        """The generated interfaces in the paper's IDL notation."""
        from repro.core.idl import render_idl

        return render_idl(self.model)

    def document(self, root: TypedElement) -> Document:
        """Wrap a typed root element in a document."""
        declaration = type(root)._DECLARATION
        if declaration.key not in self.schema.elements:
            raise VdomTypeError(
                f"<{root.tag_name}> is not a global element and cannot be "
                "a document root"
            )
        document = Document()
        document.append_child(root)
        return document

    def __repr__(self) -> str:
        return (
            f"Binding({len(self._global_elements)} global elements, "
            f"{len(self.classes)} classes)"
        )


def bind(
    schema_or_text: Schema | str,
    naming: NamingScheme | None = None,
    choice_strategy: ChoiceStrategy = ChoiceStrategy.INHERITANCE,
    validate_on_mutate: bool = True,
    cache: Any = None,
    location: str | None = None,
) -> Binding:
    """Generate a live binding for a schema (text or parsed).

    This is the whole Fig. 9 front half in one call: parse → normalize →
    generate interfaces → materialize classes.  With a
    :class:`repro.cache.ReproCache` (schema text only), the prepared
    schema and interface model are reused across calls and processes.
    *location* is where schema text came from, the base that relative
    ``xsd:include``/``xsd:import`` locations resolve against.
    """
    if cache is not None and isinstance(schema_or_text, str):
        return cache.bind(
            schema_or_text,
            naming=naming,
            choice_strategy=choice_strategy,
            validate_on_mutate=validate_on_mutate,
            location=location,
        )
    if isinstance(schema_or_text, str):
        schema = parse_schema(schema_or_text, location=location)
    else:
        schema = schema_or_text
    normalize(schema, naming)
    model = generate_interfaces(schema, choice_strategy)
    return Binding(schema, model, validate_on_mutate=validate_on_mutate)

"""Schema normal form (paper, Sect. 3).

The paper defines three normal-form rules before interface generation:

1. *Element declarations* are in normal form if they have a **named type**
   as content model.
2. *Complex type definitions* are in normal form if they have **no nested
   group expressions**; unnamed types are converted to named types.
3. Every unnamed nested group expression becomes a separate **named group
   definition**.

``normalize`` applies the rules in place (the schema object is owned by
the caller) and reports every generated name, so tests — and the
naming-stability experiment (CLAIM-3) — can inspect exactly which names a
schema evolution step changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.xsd.components import (
    ComplexType,
    ElementDeclaration,
    GroupDefinition,
    GroupReference,
    ModelGroup,
    Schema,
)
from repro.xsd.simple import SimpleType
from repro.core.naming import (
    ExplicitFirstNaming,
    NamingScheme,
    type_name_for_element,
)


@dataclass
class NormalizationResult:
    """The normalized schema plus a record of what was named."""

    schema: Schema
    #: anonymous type -> generated name, keyed by the element that owned it
    generated_type_names: dict[str, str] = field(default_factory=dict)
    #: generated group names in creation order
    generated_group_names: list[str] = field(default_factory=list)

    def all_names(self) -> set[str]:
        return set(self.generated_type_names.values()) | set(
            self.generated_group_names
        )


def normalize(
    schema: Schema, naming: NamingScheme | None = None
) -> NormalizationResult:
    """Bring *schema* into the paper's normal form."""
    return _Normalizer(schema, naming or ExplicitFirstNaming()).run()


class _Normalizer:
    def __init__(self, schema: Schema, naming: NamingScheme):
        self._schema = schema
        self._naming = naming
        self._result = NormalizationResult(schema)
        self._visited_types: set[int] = set()

    def run(self) -> NormalizationResult:
        # Named types first (stable iteration: sorted for determinism).
        for name in sorted(self._schema.types):
            definition = self._schema.types[name]
            if isinstance(definition, ComplexType):
                self._normalize_complex_type(definition)
        for name in sorted(self._schema.groups):
            group_definition = self._schema.groups[name]
            self._normalize_group_body(
                group_definition.model_group, group_definition.name
            )
        for name in sorted(self._schema.elements):
            self._normalize_element(self._schema.elements[name], context=None)
        return self._result

    # -- rule 1: elements get named types ---------------------------------------

    def _normalize_element(
        self, declaration: ElementDeclaration, context: str | None
    ) -> None:
        definition = declaration.type_definition
        if definition is None:
            raise GenerationError(
                f"element '{declaration.name}' has no resolved type"
            )
        named = getattr(definition, "name", None)
        if named:
            return
        type_name = self._allocate_type_name(declaration.name, context)
        definition.name = type_name
        self._schema.types[type_name] = definition
        self._result.generated_type_names[declaration.name] = type_name
        declaration.type_name = type_name
        if isinstance(definition, ComplexType):
            self._normalize_complex_type(definition)

    def _allocate_type_name(
        self, element_name: str, context: str | None
    ) -> str:
        short = type_name_for_element(element_name, None)
        if short not in self._schema.types:
            return short
        qualified = type_name_for_element(element_name, context or "X")
        candidate = qualified
        counter = 2
        while candidate in self._schema.types:
            candidate = f"{qualified}{counter}"
            counter += 1
        return candidate

    # -- rules 2 and 3: no anonymous nested groups ---------------------------------

    def _normalize_complex_type(self, complex_type: ComplexType) -> None:
        if id(complex_type) in self._visited_types:
            return
        self._visited_types.add(id(complex_type))
        if complex_type.content is None:
            return
        context = complex_type.name or "Anonymous"
        particle = complex_type.content
        term = particle.term
        if isinstance(term, ModelGroup):
            # The outermost group stays inline (the paper's normal-form
            # example keeps the top sequence); only nested groups are
            # extracted.  Its inherited-context name is '<Type>C'.
            self._extract_nested_groups(term, context + "C")
        elif isinstance(term, ElementDeclaration):
            self._normalize_element(term, context)
        elif isinstance(term, GroupReference):
            pass  # already named

    def _normalize_group_body(self, group: ModelGroup, group_name: str) -> None:
        self._extract_nested_groups(group, group_name)

    def _extract_nested_groups(self, group: ModelGroup, context_name: str) -> None:
        for index, particle in enumerate(group.particles, start=1):
            term = particle.term
            if isinstance(term, ElementDeclaration):
                self._normalize_element(term, context_name)
            elif isinstance(term, ModelGroup):
                # Recurse first (with the positional path as context, the
                # way the paper's inherited recursion is defined) so child
                # names exist before a synthesized parent name is computed
                # from them.
                self._extract_nested_groups(term, f"{context_name}C{index}")
                name = self._naming.group_name(term, context_name, index)
                final_name = self._unique_group_name(name)
                term.name = final_name
                definition = GroupDefinition(final_name, term)
                self._schema.groups[final_name] = definition
                particle.term = GroupReference(final_name, definition)
                self._result.generated_group_names.append(final_name)
            elif isinstance(term, GroupReference):
                pass  # already a named definition

    def _unique_group_name(self, name: str) -> str:
        if name not in self._schema.groups:
            return name
        counter = 2
        while f"{name}{counter}" in self._schema.groups:
            counter += 1
        return f"{name}{counter}"


def is_normal_form(schema: Schema) -> bool:
    """Check the three normal-form rules (used by tests and generators)."""

    def group_is_flat(group: ModelGroup) -> bool:
        for particle in group.particles:
            term = particle.term
            if isinstance(term, ModelGroup):
                return False
            if isinstance(term, ElementDeclaration):
                named = getattr(term.type_definition, "name", None)
                if not named:
                    return False
        return True

    for definition in schema.types.values():
        if isinstance(definition, ComplexType) and definition.content is not None:
            term = definition.content.term
            if isinstance(term, ModelGroup) and not group_is_flat(term):
                return False
            if isinstance(term, ElementDeclaration):
                if not getattr(term.type_definition, "name", None):
                    return False
    for group_definition in schema.groups.values():
        if not group_is_flat(group_definition.model_group):
            return False
    for declaration in schema.elements.values():
        definition = declaration.type_definition
        if definition is not None and not getattr(definition, "name", None):
            if isinstance(definition, (ComplexType, SimpleType)):
                return False
    return True

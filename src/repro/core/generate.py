"""The eight transformation rules: normalized schema → interface model.

Paper, Sect. 3:

1. element declarations → interfaces (one ``content`` attribute),
2. type definitions → interfaces,
3. group definitions → interfaces,
4. sequence content → one attribute per sequence member,
5. list content (maxOccurs > 1) → attributes of a generated list
   interface (occurrence bounds checked at runtime, as the paper notes),
6. choice content → an attribute typed by the common supertype of all
   alternatives (inheritance), or a union type under the Fig. 5 strategy,
7. XML attributes → attributes of suitable type,
8. simple types → primitive types.

Plus the XML-Schema-specific mappings: type extension → inheritance,
type restriction → inheritance with runtime checks, substitution groups
→ inheritance, abstract elements/types → abstract interfaces.
"""

from __future__ import annotations

import enum

from repro.errors import GenerationError
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    Compositor,
    DerivationMethod,
    ElementDeclaration,
    GroupDefinition,
    GroupReference,
    ModelGroup,
    Particle,
    Schema,
    TypeDefinition,
)
from repro.xsd.simple import BUILTIN_TYPES, SimpleType
from repro.core.model import (
    Field,
    FieldKind,
    Interface,
    InterfaceKind,
    InterfaceModel,
    TypeRef,
    UnionAlternative,
)


class ChoiceStrategy(enum.Enum):
    """How choice groups are reflected (paper compares both).

    ``UNION`` is the Fig. 5 approach the paper *rejects* for its
    extension problems; ``INHERITANCE`` is the Fig. 6 approach it adopts.
    Both are implemented so the extension experiment can show the
    difference.
    """

    UNION = "union"
    INHERITANCE = "inheritance"


def generate_interfaces(
    schema: Schema,
    choice_strategy: ChoiceStrategy = ChoiceStrategy.INHERITANCE,
) -> InterfaceModel:
    """Apply the transformation rules to a *normalized* schema."""
    return _Generator(schema, choice_strategy).run()


class _Generator:
    def __init__(self, schema: Schema, choice_strategy: ChoiceStrategy):
        self._schema = schema
        self._strategy = choice_strategy
        self._model = InterfaceModel(schema)
        self._type_keys: dict[int, str] = {}
        self._group_keys: dict[int, str] = {}
        self._element_keys: dict[int, str] = {}
        #: (element name, type identity) -> interface key, for local
        #: declaration deduplication
        self._local_by_signature: dict[tuple[str, int], str] = {}

    def run(self) -> InterfaceModel:
        for name in self._schema.types:
            definition = self._schema.types[name]
            if isinstance(definition, SimpleType):
                self._simple_interface(definition)
            else:
                self._type_interface(definition)
        for name in self._schema.groups:
            self._group_interface(self._schema.groups[name])
        for name in self._schema.elements:
            self._element_interface(self._schema.elements[name], owner_key=None)
        return self._model

    # -- rule 8: simple types --------------------------------------------------

    _PRIMITIVE_NAMES = {
        "string": "string",
        "normalizedString": "string",
        "token": "string",
        "language": "string",
        "Name": "string",
        "NCName": "string",
        "NMTOKEN": "NMToken",
        "ID": "string",
        "IDREF": "string",
        "ENTITY": "string",
        "anyURI": "string",
        "QName": "string",
        "NOTATION": "string",
        "boolean": "boolean",
        "decimal": "decimal",
        "float": "float",
        "double": "double",
        "duration": "Duration",
        "dateTime": "DateTime",
        "date": "Date",
        "time": "Time",
        "gYear": "string",
        "gYearMonth": "string",
        "gMonthDay": "string",
        "gDay": "string",
        "gMonth": "string",
        "hexBinary": "binary",
        "base64Binary": "binary",
        "anySimpleType": "string",
    }

    def _primitive_ref(self, simple_type: SimpleType) -> TypeRef:
        """Map a built-in simple type to a primitive TypeRef."""
        current: SimpleType | None = simple_type
        while current is not None:
            name = current.name
            if name in self._PRIMITIVE_NAMES:
                return TypeRef(self._PRIMITIVE_NAMES[name], primitive=True)
            if name is not None and name in BUILTIN_TYPES:
                # integer hierarchy and friends keep their own names
                return TypeRef(name, primitive=True)
            current = current.base
        return TypeRef("string", primitive=True)

    def _simple_ref(self, simple_type: SimpleType) -> tuple[TypeRef, str | None]:
        """(TypeRef, target interface key) for any simple type."""
        if simple_type.name and simple_type.name in BUILTIN_TYPES:
            return self._primitive_ref(simple_type), None
        if simple_type.name and simple_type.name in self._schema.types:
            interface = self._simple_interface(simple_type)
            return TypeRef(interface.name), interface.key
        # Anonymous simple type that survived normalization (e.g. an
        # attribute's inline type): fall back to its primitive.
        return self._primitive_ref(simple_type), None

    def _simple_interface(self, simple_type: SimpleType) -> Interface:
        assert simple_type.name is not None
        key = simple_type.name
        if key in self._model:
            return self._model[key]
        base = simple_type.base
        extends: list[str] = []
        base_primitive: TypeRef | None = None
        if (
            base is not None
            and base.name
            and base.name in self._schema.types
            and base.name not in BUILTIN_TYPES
        ):
            extends.append(self._simple_interface(base).key)
        else:
            base_primitive = self._primitive_ref(simple_type)
        interface = Interface(
            key=key,
            name=simple_type.name,
            kind=InterfaceKind.SIMPLE,
            extends=extends,
            base_primitive=base_primitive,
            type_definition=simple_type,
            doc=f"simple type '{simple_type.name}'",
        )
        return self._model.add(interface)

    # -- rule 2 (+ extension/restriction/abstract): complex types -----------------

    def _type_interface(self, complex_type: ComplexType) -> Interface:
        cache_key = id(complex_type)
        if cache_key in self._type_keys:
            return self._model[self._type_keys[cache_key]]
        if complex_type is ANY_TYPE:
            raise GenerationError("anyType cannot be generated as an interface")
        if not complex_type.name:
            raise GenerationError(
                "anonymous complex type reached the generator; "
                "normalize the schema first"
            )
        key = f"{complex_type.name}Type"
        interface = Interface(
            key=key,
            name=key,
            kind=InterfaceKind.TYPE,
            abstract=complex_type.abstract,
            mixed=complex_type.content_type.value == "mixed",
            type_definition=complex_type,
            doc=f"complex type '{complex_type.name}'",
        )
        self._type_keys[cache_key] = key
        self._model.add(interface)
        base = complex_type.base
        if isinstance(base, ComplexType) and base is not ANY_TYPE:
            base_interface = self._type_interface(base)
            interface.extends.append(base_interface.key)
            if complex_type.derivation is DerivationMethod.RESTRICTION:
                interface.doc += " (restriction: runtime value checks apply)"
        self._fill_type_fields(interface, complex_type)
        return interface

    def _fill_type_fields(
        self, interface: Interface, complex_type: ComplexType
    ) -> None:
        if complex_type.simple_content is not None:
            ref, target = self._simple_ref(complex_type.simple_content)
            interface.fields.append(
                Field(
                    "content",
                    ref,
                    FieldKind.SIMPLE_CONTENT,
                    target_key=target,
                    simple_type=complex_type.simple_content,
                    doc="text content (simpleContent)",
                )
            )
        elif complex_type.content is not None:
            self._content_fields(interface, complex_type.content)
        for use in complex_type.attribute_uses.values():
            ref, target = self._simple_ref(use.declaration.resolved_type())
            interface.fields.append(
                Field(
                    use.name,
                    ref,
                    FieldKind.ATTRIBUTE,
                    optional=not use.required,
                    required=use.required,
                    fixed=use.fixed,
                    default=use.default,
                    xml_name=use.name,
                    target_key=target,
                    simple_type=use.declaration.resolved_type(),
                )
            )

    def _content_fields(self, interface: Interface, content: Particle) -> None:
        term = content.term
        if isinstance(term, ModelGroup):
            if term.compositor is Compositor.CHOICE:
                # A top-level choice: reflect through an implicit group.
                group_name = term.name or f"{interface.name}C"
                definition = GroupDefinition(group_name, term)
                group_interface = self._group_interface(definition)
                interface.fields.append(
                    self._group_field(group_name, group_interface, content)
                )
                return
            for particle in term.particles:
                self._member_field(interface, particle)
            return
        self._member_field(interface, content)

    def _member_field(self, interface: Interface, particle: Particle) -> None:
        """Rule 4/5/6 for one member of a (top-level) sequence."""
        term = particle.term
        if isinstance(term, ElementDeclaration):
            target = self._element_interface(
                term, owner_key=None if term.is_global else interface.key
            )
            ref = TypeRef(target.name)
            if particle.is_list():
                interface.fields.append(
                    Field(
                        f"{term.name}List",
                        TypeRef.list_of(ref),
                        FieldKind.LIST,
                        xml_name=term.name,
                        min_occurs=particle.min_occurs,
                        max_occurs=particle.max_occurs,
                        target_key=target.key,
                    )
                )
            else:
                interface.fields.append(
                    Field(
                        term.name,
                        ref,
                        FieldKind.CHILD,
                        optional=particle.is_optional(),
                        xml_name=term.name,
                        min_occurs=particle.min_occurs,
                        max_occurs=particle.max_occurs,
                        target_key=target.key,
                    )
                )
            return
        if isinstance(term, GroupReference):
            definition = term.definition or self._schema.group(term.ref)
            group_interface = self._group_interface(definition)
            interface.fields.append(
                self._group_field(definition.name, group_interface, particle)
            )
            return
        raise GenerationError(
            "nested anonymous group reached the generator; "
            "normalize the schema first"
        )

    def _group_field(
        self,
        group_name: str,
        group_interface: Interface,
        particle: Particle,
    ) -> Field:
        is_choice = (
            group_interface.type_definition is not None
            and isinstance(group_interface.type_definition, ModelGroup)
            and group_interface.type_definition.compositor is Compositor.CHOICE
        )
        kind = FieldKind.CHOICE if is_choice else FieldKind.GROUP
        ref = TypeRef(group_interface.name)
        if particle.is_list():
            return Field(
                f"{group_name}List",
                TypeRef.list_of(ref),
                FieldKind.LIST,
                min_occurs=particle.min_occurs,
                max_occurs=particle.max_occurs,
                target_key=group_interface.key,
            )
        return Field(
            group_name,
            ref,
            kind,
            optional=particle.is_optional(),
            min_occurs=particle.min_occurs,
            max_occurs=particle.max_occurs,
            target_key=group_interface.key,
        )

    # -- rule 3 + rule 6: group definitions ----------------------------------------

    def _group_interface(self, definition: GroupDefinition) -> Interface:
        cache_key = id(definition.model_group)
        if cache_key in self._group_keys:
            return self._model[self._group_keys[cache_key]]
        key = f"{definition.name}Group"
        group = definition.model_group
        is_choice = group.compositor is Compositor.CHOICE
        interface = Interface(
            key=key,
            name=key,
            kind=InterfaceKind.GROUP,
            abstract=is_choice and self._strategy is ChoiceStrategy.INHERITANCE,
            type_definition=group,  # type: ignore[arg-type]
            doc=f"{group.compositor.value} group '{definition.name}'",
        )
        self._group_keys[cache_key] = key
        self._model.add(interface)
        if is_choice:
            self._fill_choice_group(interface, group)
        else:
            for particle in group.particles:
                self._member_field(interface, particle)
        return interface

    def _fill_choice_group(self, interface: Interface, group: ModelGroup) -> None:
        alternatives: list[UnionAlternative] = []
        for particle in group.particles:
            term = particle.term
            if isinstance(term, ElementDeclaration):
                target = self._element_interface(
                    term,
                    owner_key=None if term.is_global else interface.key,
                )
                if self._strategy is ChoiceStrategy.INHERITANCE:
                    if interface.key not in target.extends:
                        target.extends.append(interface.key)
                else:
                    alternatives.append(
                        UnionAlternative(term.name, target.key, TypeRef(target.name))
                    )
            elif isinstance(term, GroupReference):
                definition = term.definition or self._schema.group(term.ref)
                nested = self._group_interface(definition)
                if self._strategy is ChoiceStrategy.INHERITANCE:
                    if interface.key not in nested.extends:
                        nested.extends.append(interface.key)
                else:
                    alternatives.append(
                        UnionAlternative(
                            definition.name, nested.key, TypeRef(nested.name)
                        )
                    )
            else:
                raise GenerationError(
                    "anonymous group inside a choice; normalize first"
                )
        if self._strategy is ChoiceStrategy.UNION:
            interface.union = alternatives
            interface.abstract = False

    # -- rule 1 (+ substitution groups, abstract): element declarations -----------

    def _element_interface(
        self, declaration: ElementDeclaration, owner_key: str | None
    ) -> Interface:
        cache_key = id(declaration)
        if cache_key in self._element_keys:
            return self._model[self._element_keys[cache_key]]
        if declaration.is_global and declaration.key in self._schema.elements:
            # Use the canonical global declaration object.
            canonical = self._schema.elements[declaration.key]
            if canonical is not declaration:
                return self._element_interface(canonical, owner_key=None)
        if owner_key is not None and declaration.type_definition is not None:
            # Deduplicate local declarations that agree on name and type
            # (e.g. WML's <br> inside several choice groups): one
            # interface, one class, one factory method.
            signature = (declaration.name, id(declaration.type_definition))
            existing_key = self._local_by_signature.get(signature)
            if existing_key is not None:
                existing = self._model[existing_key]
                existing.extra_declarations.append(declaration)
                self._element_keys[cache_key] = existing_key
                return existing
        short_name = f"{declaration.name}Element"
        key = short_name if owner_key is None else f"{owner_key}.{short_name}"
        if key in self._model:
            # Two local elements with the same name under one owner can
            # only be one declaration repeated; reuse it.
            self._element_keys[cache_key] = key
            return self._model[key]
        interface = Interface(
            key=key,
            name=short_name,
            kind=InterfaceKind.ELEMENT,
            abstract=declaration.abstract,
            nested_in=owner_key,
            declaration=declaration,
            doc=f"element '{declaration.name}'",
        )
        self._element_keys[cache_key] = key
        self._model.add(interface)
        if owner_key is not None and declaration.type_definition is not None:
            self._local_by_signature[
                (declaration.name, id(declaration.type_definition))
            ] = key
        if declaration.substitution_group:
            head = self._schema.element(declaration.substitution_group)
            head_interface = self._element_interface(head, owner_key=None)
            interface.extends.append(head_interface.key)
        definition = declaration.resolved_type()
        interface.type_definition = definition
        self._add_content_field(interface, definition)
        return interface

    def _add_content_field(
        self, interface: Interface, definition: TypeDefinition
    ) -> None:
        if isinstance(definition, SimpleType):
            ref, target = self._simple_ref(definition)
            interface.fields.append(
                Field("content", ref, FieldKind.CONTENT, target_key=target)
            )
            return
        if definition is ANY_TYPE:
            interface.fields.append(
                Field(
                    "content",
                    TypeRef("any", primitive=True),
                    FieldKind.CONTENT,
                    doc="ur-type content (anyType)",
                )
            )
            return
        type_interface = self._type_interface(definition)
        interface.fields.append(
            Field(
                "content",
                TypeRef(type_interface.name),
                FieldKind.CONTENT,
                target_key=type_interface.key,
            )
        )

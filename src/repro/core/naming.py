"""Naming schemes for anonymous group expressions (paper, Sect. 3).

When a complex type nests anonymous groups, the generated interfaces need
names.  The paper analyses three options and their behaviour under schema
evolution:

* **synthesized naming** — the name is built from the nested
  subexpressions: the choice ``singAddr | twoAddr`` becomes
  ``singAddrORtwoAddr``.  Adding an alternative *renames* the group
  (``singAddrORtwoAddrORmultAddr``), breaking every use site.
* **inherited naming** — the name is built from the *defining context*:
  the first particle of ``PurchaseOrderType``'s content is
  ``PurchaseOrderTypeCC1``, its children ``PurchaseOrderTypeCC1C1`` …
  Adding a choice alternative keeps all names stable; but extending a
  *sequence* silently reuses the old name for different content, which
  is wrong in the other direction.
* **merged naming** (the paper's resolution) — inherited naming for
  choice groups, synthesized naming for sequence groups and list
  expressions.
* **explicit naming** — a named ``<xsd:group>`` definition always wins;
  the paper recommends it for sequences extended in the middle.

Each scheme is a strategy object consumed by
:func:`repro.core.normalize.normalize`.
"""

from __future__ import annotations

from repro.xsd.components import (
    Compositor,
    ElementDeclaration,
    GroupReference,
    ModelGroup,
    Particle,
)


class NamingScheme:
    """Strategy interface: name one anonymous group expression.

    ``context_name`` is the name of the enclosing construct (the complex
    type for the outermost group, the parent group otherwise) and
    ``child_index`` the 1-based position of the group in its parent —
    enough to implement both directions.
    """

    name = "abstract"

    def group_name(
        self,
        group: ModelGroup,
        context_name: str,
        child_index: int,
    ) -> str:
        raise NotImplementedError


def particle_label(particle: Particle) -> str:
    """The label a particle contributes to a synthesized name."""
    term = particle.term
    if isinstance(term, ElementDeclaration):
        label = term.name
    elif isinstance(term, GroupReference):
        label = term.ref
    else:
        label = term.name or "group"
    if particle.is_list():
        return label + "List"
    return label


class SynthesizedNaming(NamingScheme):
    """Name from the child expressions: ``singAddrORtwoAddr``."""

    name = "synthesized"

    #: connector per compositor; the paper prints the choice case.
    _CONNECTORS = {
        Compositor.CHOICE: "OR",
        Compositor.SEQUENCE: "AND",
        Compositor.ALL: "AND",
    }

    def group_name(
        self,
        group: ModelGroup,
        context_name: str,
        child_index: int,
    ) -> str:
        connector = self._CONNECTORS[group.compositor]
        labels = [particle_label(particle) for particle in group.particles]
        if not labels:
            return f"{context_name}Empty{child_index}"
        return connector.join(labels)


class InheritedNaming(NamingScheme):
    """Name from the defining context: ``PurchaseOrderTypeCC1``.

    The outermost group of complex type ``T`` is named ``TC``; the i-th
    child group of a group named ``N`` is ``NCi`` — the recursion given
    in the paper ("the entire expression is named PurchaseOrderTypeC,
    the first element … PurchaseOrderTypeCC1, … recursively the singAddr
    … PurchaseOrderTypeCC1C1").
    """

    name = "inherited"

    def group_name(
        self,
        group: ModelGroup,
        context_name: str,
        child_index: int,
    ) -> str:
        return f"{context_name}C{child_index}"


class MergedNaming(NamingScheme):
    """The paper's merged scheme: inherited for choices, synthesized for
    sequences and list expressions."""

    name = "merged"

    def __init__(self) -> None:
        self._synthesized = SynthesizedNaming()
        self._inherited = InheritedNaming()

    def group_name(
        self,
        group: ModelGroup,
        context_name: str,
        child_index: int,
    ) -> str:
        if group.compositor is Compositor.CHOICE:
            return self._inherited.group_name(group, context_name, child_index)
        return self._synthesized.group_name(group, context_name, child_index)


class ExplicitFirstNaming(NamingScheme):
    """Explicit names win; fall back to another scheme (default merged).

    Explicitness is carried by ``ModelGroup.name`` — set when the schema
    author used a named ``<xsd:group>`` definition, the case the paper
    recommends for evolution-proof sequences.
    """

    name = "explicit-first"

    def __init__(self, fallback: NamingScheme | None = None):
        self._fallback = fallback or MergedNaming()

    def group_name(
        self,
        group: ModelGroup,
        context_name: str,
        child_index: int,
    ) -> str:
        if group.name:
            return group.name
        return self._fallback.group_name(group, context_name, child_index)


def type_name_for_element(element_name: str, context_name: str | None) -> str:
    """Generated name for an element's anonymous type (normal-form rule 2).

    ``item`` inside ``Items`` becomes ``ItemsItemType`` when a bare
    ``ItemType`` would be ambiguous; the context prefix is resolved by the
    normalizer, which passes ``context_name=None`` when the short form is
    free.
    """
    capitalized = element_name[:1].upper() + element_name[1:]
    if context_name:
        return f"{context_name}{capitalized}Type"
    return f"{capitalized}Type"

"""Render an interface model as OMG-IDL-flavoured text.

This reproduces the notation of the paper's Figures 5 and 6 and
Appendix A ("Analogous to Dom we note the interface in IDL stressing the
independence of a programming language").  Locally declared element
interfaces are printed nested inside their owning type interface, lists
use the parametric ``list<T>`` notation of the paper's footnote 3, and
the Fig. 5 union strategy prints ``typedef union ... switch`` blocks.
"""

from __future__ import annotations

from repro.core.model import (
    Field,
    FieldKind,
    Interface,
    InterfaceKind,
    InterfaceModel,
)


def render_idl(model: InterfaceModel, indent: str = "  ") -> str:
    """Render every top-level interface of *model*."""
    pieces: list[str] = []
    order = (
        InterfaceKind.ELEMENT,
        InterfaceKind.TYPE,
        InterfaceKind.GROUP,
        InterfaceKind.SIMPLE,
    )
    for kind in order:
        for interface in model.by_kind(kind):
            if interface.nested_in is not None:
                continue
            pieces.append(render_interface(model, interface, indent))
            pieces.append("")
    return "\n".join(pieces).rstrip() + "\n"


def render_interface(
    model: InterfaceModel,
    interface: Interface,
    indent: str = "  ",
    depth: int = 0,
) -> str:
    """Render one interface (with its nested interfaces)."""
    pad = indent * depth
    if interface.union is not None:
        return _render_union(model, interface, indent, depth)
    header = _header(model, interface)
    lines = [f"{pad}{header} {{"]
    for nested in model.nested_interfaces(interface.key):
        lines.append(render_interface(model, nested, indent, depth + 1))
    if model.nested_interfaces(interface.key) and interface.fields:
        lines.append("")
    if interface.mixed:
        lines.append(f"{pad}{indent}// mixed content: text freely interleaved")
    for field in interface.fields:
        lines.append(f"{pad}{indent}{_render_field(field)}")
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def _header(model: InterfaceModel, interface: Interface) -> str:
    keyword = "abstract interface" if interface.abstract else "interface"
    supers: list[str] = []
    for base_key in interface.extends:
        supers.append(model[base_key].name)
    if interface.base_primitive is not None:
        supers.append(str(interface.base_primitive))
    if supers:
        return f"{keyword} {interface.name}: {', '.join(supers)}"
    return f"{keyword} {interface.name}"


def _render_field(field: Field) -> str:
    type_name = str(field.type)
    comment = ""
    if field.kind is FieldKind.ATTRIBUTE:
        qualifiers: list[str] = []
        if field.required:
            qualifiers.append("required")
        if field.fixed is not None:
            qualifiers.append(f'fixed="{field.fixed}"')
        if field.default is not None:
            qualifiers.append(f'default="{field.default}"')
        if qualifiers:
            comment = f"  // {', '.join(qualifiers)}"
    elif field.optional:
        comment = "  // optional"
    elif field.kind is FieldKind.LIST:
        bound = "unbounded" if field.max_occurs == -1 else field.max_occurs
        comment = f"  // occurs {field.min_occurs}..{bound}"
    return f"attribute {type_name} {field.name};{comment}"


def _render_union(
    model: InterfaceModel,
    interface: Interface,
    indent: str,
    depth: int,
) -> str:
    """Fig. 5 shape: a discriminated union for a choice group."""
    pad = indent * depth
    assert interface.union is not None
    cases = ",".join(alternative.case_name for alternative in interface.union)
    discriminator = interface.name.replace("Group", "ST")
    lines = [
        f"{pad}typedef union {interface.name}",
        f"{pad}switch (enum {discriminator}({cases})){{",
    ]
    for alternative in interface.union:
        target = model[alternative.interface_key]
        lines.append(
            f"{pad}{indent}case {alternative.case_name}: "
            f"{target.name} {alternative.case_name};"
        )
    lines.append(f"{pad}}}")
    for nested in model.nested_interfaces(interface.key):
        lines.append(render_interface(model, nested, indent, depth))
    return "\n".join(lines)

"""V-DOM — the paper's primary contribution.

The pipeline implemented here is the one of Sect. 3:

1. :mod:`repro.core.normalize` brings a schema into the paper's *normal
   form* (named types, named groups, no anonymous nesting), using the
   naming schemes of :mod:`repro.core.naming` (synthesized / inherited /
   merged / explicit).
2. :mod:`repro.core.generate` applies the eight transformation rules to
   produce a language-independent *interface model*
   (:mod:`repro.core.model`).
3. :mod:`repro.core.idl` renders the interface model as OMG-IDL text —
   the notation of the paper's Figures 5/6 and Appendix A.
4. :mod:`repro.core.vdom` materializes the interface model as live
   Python classes extending :class:`repro.dom.Element`; construction and
   mutation enforce the content model, so every tree that exists is
   valid ("the validity of all generated structures is guaranteed
   without any test runs").
5. :mod:`repro.core.pygen` emits a standalone generated Python module
   for a schema (the artifact a user checks into their project).
"""

from repro.core.naming import (
    ExplicitFirstNaming,
    InheritedNaming,
    MergedNaming,
    NamingScheme,
    SynthesizedNaming,
)
from repro.core.normalize import NormalizationResult, normalize
from repro.core.model import Field, FieldKind, Interface, InterfaceKind, InterfaceModel, TypeRef
from repro.core.generate import ChoiceStrategy, generate_interfaces
from repro.core.idl import render_idl
from repro.core.vdom import Binding, TypedElement, bind
from repro.core.pygen import generate_python_module

__all__ = [
    "Binding",
    "ChoiceStrategy",
    "ExplicitFirstNaming",
    "Field",
    "FieldKind",
    "InheritedNaming",
    "Interface",
    "InterfaceKind",
    "InterfaceModel",
    "MergedNaming",
    "NamingScheme",
    "NormalizationResult",
    "SynthesizedNaming",
    "TypeRef",
    "TypedElement",
    "bind",
    "generate_interfaces",
    "generate_python_module",
    "normalize",
    "render_idl",
]

"""The language-independent interface model V-DOM generates.

This is the intermediate representation between the normalized schema and
the two renderers: the IDL printer (reproducing the paper's figures) and
the Python class materializer.  It mirrors the paper's vocabulary: an
*interface* per element declaration, type definition, and model group;
*attributes* (here: fields) for sequence members, choice slots, list
slots, XML attributes, and simple content.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field

from repro.xsd.components import ElementDeclaration, Schema, TypeDefinition


class InterfaceKind(enum.Enum):
    """What schema component an interface reflects."""

    ELEMENT = "element"  # rule 1: element declarations
    TYPE = "type"  # rule 2: type definitions
    GROUP = "group"  # rule 3: group definitions
    SIMPLE = "simple"  # rule 8: named simple types (e.g. SKU)


class FieldKind(enum.Enum):
    """What a field holds."""

    CONTENT = "content"  # the single content attribute of an element
    CHILD = "child"  # rule 4: one sequence member
    LIST = "list"  # rule 5: a repeated member (generated list)
    CHOICE = "choice"  # rule 6: a choice-group slot
    GROUP = "group"  # a named sequence-group slot
    ATTRIBUTE = "attribute"  # rule 7: an XML attribute
    SIMPLE_CONTENT = "simple-content"  # text value of simpleContent types
    MIXED_TEXT = "mixed-text"  # marker for mixed content


@dataclass(frozen=True)
class TypeRef:
    """A reference to an interface or a primitive, possibly a list.

    ``primitive`` means a host-language type (rule 8): ``string``,
    ``decimal``, ``date`` ... rendered as IDL primitives / Python types.
    """

    name: str
    primitive: bool = False
    item: TypeRef | None = None  # set for list<item>

    @staticmethod
    def list_of(item: TypeRef) -> TypeRef:
        return TypeRef("list", primitive=False, item=item)

    def __str__(self) -> str:
        if self.item is not None:
            return f"list<{self.item}>"
        return self.name


@dataclass
class Field:
    """One attribute of an interface."""

    name: str
    type: TypeRef
    kind: FieldKind
    optional: bool = False
    xml_name: str | None = None  # element/attribute name in markup
    min_occurs: int = 1
    max_occurs: int = 1  # -1 = unbounded
    required: bool = False  # attributes only
    fixed: str | None = None
    default: str | None = None
    #: registry key of the target interface (None for primitives)
    target_key: str | None = None
    #: runtime hook (not rendered): the simple type of attribute /
    #: simple-content fields, for typed value access
    simple_type: object | None = None
    #: runtime hook (not rendered): memoized set of element names this
    #: field can match — filled by the first Binding built over this
    #: model, and carried inside cached artifacts so warm starts skip
    #: the substitution-group scans
    resolved_names: frozenset[str] | None = None
    doc: str = ""


@dataclass
class UnionAlternative:
    """One case of a Fig. 5-style union group."""

    case_name: str
    interface_key: str
    type: TypeRef


@dataclass
class Interface:
    """One generated interface."""

    key: str  # unique registry key (may be owner-qualified)
    name: str  # short rendered name (as in the paper's figures)
    kind: InterfaceKind
    extends: list[str] = dataclass_field(default_factory=list)  # registry keys
    abstract: bool = False
    fields: list[Field] = dataclass_field(default_factory=list)
    #: owner type's registry key for locally declared (nested) interfaces
    nested_in: str | None = None
    #: Fig. 5 union alternatives (set only under ChoiceStrategy.UNION)
    union: list[UnionAlternative] | None = None
    mixed: bool = False
    doc: str = ""
    #: for SIMPLE interfaces: the primitive the type restricts
    base_primitive: TypeRef | None = None
    #: runtime hooks (not rendered): the schema components behind this
    declaration: ElementDeclaration | None = None
    type_definition: TypeDefinition | None = None
    #: further declarations this interface also serves (local elements
    #: deduplicated by name + type, e.g. WML's <br> in several groups)
    extra_declarations: list[ElementDeclaration] = dataclass_field(
        default_factory=list
    )

    def field(self, name: str) -> Field:
        for candidate in self.fields:
            if candidate.name == name:
                return candidate
        raise KeyError(f"interface '{self.name}' has no field '{name}'")

    def __repr__(self) -> str:
        return f"Interface({self.key!r}, {self.kind.value})"


class InterfaceModel:
    """All interfaces generated for one schema, in creation order."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.interfaces: dict[str, Interface] = {}

    def add(self, interface: Interface) -> Interface:
        if interface.key in self.interfaces:
            raise KeyError(f"duplicate interface key '{interface.key}'")
        self.interfaces[interface.key] = interface
        return interface

    def __getitem__(self, key: str) -> Interface:
        return self.interfaces[key]

    def __contains__(self, key: str) -> bool:
        return key in self.interfaces

    def __iter__(self):
        return iter(self.interfaces.values())

    def __len__(self) -> int:
        return len(self.interfaces)

    def by_kind(self, kind: InterfaceKind) -> list[Interface]:
        return [i for i in self.interfaces.values() if i.kind is kind]

    def element_interface(self, element_name: str) -> Interface:
        """The interface of a *global* element declaration."""
        for interface in self.interfaces.values():
            if (
                interface.kind is InterfaceKind.ELEMENT
                and interface.nested_in is None
                and interface.declaration is not None
                and interface.declaration.name == element_name
            ):
                return interface
        raise KeyError(f"no interface for global element '{element_name}'")

    def nested_interfaces(self, owner_key: str) -> list[Interface]:
        return [
            interface
            for interface in self.interfaces.values()
            if interface.nested_in == owner_key
        ]

"""Command-line interface: ``vdom-generate``.

Subcommands mirror the paper's tooling:

* ``idl <schema.xsd>``        — print generated V-DOM interfaces (Fig. 6),
* ``python <schema.xsd>``     — print the generated Python binding module,
* ``validate <schema> <doc…>`` — runtime-validate documents; several
  documents (or ``--jobs N`` / ``--report``) switch to the bulk ingest
  pipeline with warm-started worker processes,
* ``preprocess <schema> <m>`` — run the P-XML preprocessor on a module
  (Fig. 9), printing the rewritten source,
* ``query <schema> <doc> <path>`` — run a schema-typed path query over a
  document (a path the schema can never satisfy is a compile error, not
  an empty result),
* ``transform <schema> <doc>``   — apply a typed query→template transform,
  emitting one output fragment per hit through the segment pipeline,
* ``serve <schema> <dir>``    — serve a directory of compiled pages
  (``*.pxml`` templates, ``*.page`` server pages) over HTTP,
* ``cache stats|clear``       — inspect or empty the compilation cache.

Schema compilation is cached persistently: ``--cache-dir`` (or the
``REPRO_CACHE_DIR`` environment variable) names the directory, which
defaults to ``.repro-cache``; ``--no-cache`` disables the cache for one
invocation.

``--stats`` / ``--stats-json PATH`` (accepted both before and after the
subcommand) switch :mod:`repro.obs` on for the run and report which
pipeline routes actually executed — cache hit vs. recompile, fused vs.
legacy ingest, segment vs. DOM render — as a human table on stderr
and/or a JSON artifact.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro import obs
from repro.errors import ReproError
from repro.dom import parse_document
from repro.xsd import SchemaValidator
from repro.core import bind, generate_interfaces, normalize, render_idl
from repro.core.generate import ChoiceStrategy
from repro.core.pygen import generate_python_module
from repro.cache import ReproCache
from repro.pxml import preprocess_module


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _add_stats_flags(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """``--stats``/``--stats-json`` on the main parser *and* every
    subcommand: subparser defaults are SUPPRESS so a value given before
    the subcommand is not clobbered by the subparser's defaults."""
    parser.add_argument(
        "--stats",
        action="store_true",
        help="collect pipeline observability counters (repro.obs) and "
        "print them as a table on stderr",
        **({} if top_level else {"default": argparse.SUPPRESS}),
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="collect pipeline observability counters and write the "
        "JSON snapshot to PATH ('-' for stdout)",
        **({"default": None} if top_level else {"default": argparse.SUPPRESS}),
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="vdom-generate",
        description="V-DOM / P-XML tooling (Kempa & Linnemann, EDBT 2002)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="compilation cache directory (default: $REPRO_CACHE_DIR "
        "or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="compile from scratch, ignoring any cache",
    )
    _add_stats_flags(parser, top_level=True)
    commands = parser.add_subparsers(dest="command", required=True)

    idl = commands.add_parser("idl", help="print generated IDL interfaces")
    idl.add_argument("schema")
    idl.add_argument(
        "--unions",
        action="store_true",
        help="use the Fig. 5 union strategy instead of inheritance",
    )

    python_command = commands.add_parser(
        "python", help="print the generated Python binding module"
    )
    python_command.add_argument("schema")

    validate_command = commands.add_parser(
        "validate",
        help="validate documents against a schema (runtime path; several "
        "documents or --jobs/--report switch to the bulk ingest pipeline)",
    )
    validate_command.add_argument("schema")
    validate_command.add_argument("documents", nargs="+")
    validate_command.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="validate with N worker processes (bulk mode; workers "
        "warm-start their schema binding from the compilation cache); "
        "0 means one per CPU, and requests beyond the CPU count are "
        "clamped down",
    )
    validate_command.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="N",
        help="documents per pool batch (bulk mode; default: auto, "
        "files/jobs/4 — batches amortize queue round-trips and ship "
        "one obs delta each)",
    )
    validate_command.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the bulk-mode JSON report to PATH ('-' for stdout)",
    )
    validate_command.add_argument(
        "--lazy",
        action="store_true",
        help="bulk mode: sniff each document's root element and bind "
        "only the schema subset those roots reach (per-subset cached "
        "artifact; falls back to the full binding when a root cannot "
        "be sniffed)",
    )

    preprocess_command = commands.add_parser(
        "preprocess", help="statically check and rewrite a P-XML module"
    )
    preprocess_command.add_argument("schema")
    preprocess_command.add_argument("module")

    render_command = commands.add_parser(
        "render",
        help="render a P-XML template straight to markup text "
        "(the segment-compiled serving path)",
    )
    render_command.add_argument("schema")
    render_command.add_argument("template")
    render_command.add_argument(
        "--hole",
        action="append",
        default=[],
        metavar="NAME=VALUE",
        help="value for one template hole (repeatable)",
    )
    render_command.add_argument(
        "--dom",
        action="store_true",
        help="build the typed DOM tree and serialize it instead "
        "(reference path; output is byte-identical)",
    )

    query_command = commands.add_parser(
        "query",
        help="run a schema-typed path query over a document (impossible "
        "paths are compile errors, not empty results)",
    )
    query_command.add_argument("schema")
    query_command.add_argument("document")
    query_command.add_argument(
        "path",
        help="relative path from the document root, e.g. "
        "items/item[@partNum='872-AA']/productName, "
        "//shipDate, items/item/@partNum",
    )

    transform_command = commands.add_parser(
        "transform",
        help="apply a typed query→template transform to a document, "
        "printing one output fragment per hit (segment pipeline)",
    )
    transform_command.add_argument("schema")
    transform_command.add_argument("document")
    transform_command.add_argument(
        "--query",
        required=True,
        metavar="PATH",
        dest="query_path",
        help="path query selecting the hits (relative to the document root)",
    )
    transform_command.add_argument(
        "--template",
        required=True,
        metavar="FILE",
        help="template source file checked against the output schema",
    )
    transform_command.add_argument(
        "--hole",
        required=True,
        metavar="NAME",
        help="template hole each query hit fills",
    )
    transform_command.add_argument(
        "--out-schema",
        default=None,
        metavar="FILE",
        help="schema the output is valid against (default: the input schema)",
    )
    transform_command.add_argument(
        "--dom",
        action="store_true",
        help="build each fragment as a typed DOM tree and serialize it "
        "instead (reference path; output is byte-identical)",
    )

    serve_command = commands.add_parser(
        "serve",
        help="serve a directory of compiled pages over HTTP "
        "(*.pxml validated templates and *.page server pages; "
        "runs until SIGTERM, then drains gracefully)",
    )
    serve_command.add_argument("schema")
    serve_command.add_argument("directory")
    serve_command.add_argument(
        "--host", default="127.0.0.1", help="address to bind (default: %(default)s)"
    )
    serve_command.add_argument(
        "--port",
        type=int,
        default=8080,
        help="port to bind; 0 picks a free port (default: %(default)s)",
    )
    serve_command.add_argument(
        "--max-connections",
        type=int,
        default=64,
        metavar="N",
        help="serve at most N connections concurrently; further ones "
        "queue (default: %(default)s)",
    )
    serve_command.add_argument(
        "--request-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="per-request read budget before a 408 (default: %(default)s)",
    )
    response_cache = serve_command.add_mutually_exclusive_group()
    response_cache.add_argument(
        "--cache",
        dest="response_cache",
        action="store_true",
        default=True,
        help="cache rendered responses keyed on typed hole values, "
        "with ETag/If-None-Match 304 revalidation (default)",
    )
    response_cache.add_argument(
        "--no-cache",
        dest="response_cache",
        action="store_false",
        help="render every response (disables only the response cache; "
        "the top-level --no-cache controls the compilation cache)",
    )
    serve_command.add_argument(
        "--cache-entries",
        type=int,
        default=512,
        metavar="N",
        help="response-cache capacity in entries (default: %(default)s)",
    )
    serve_command.add_argument(
        "--stream",
        action="store_true",
        help="answer template routes as Transfer-Encoding: chunked, "
        "streaming precomputed static segments (holes are still "
        "validated before the first byte)",
    )
    serve_command.add_argument(
        "--validate-pool",
        type=int,
        default=0,
        metavar="N",
        help="fan POST /-/validate out to N persistent warm worker "
        "processes (0 = validate inline on the event loop; requests "
        "beyond the CPU count are clamped down, 0 workers per the "
        "--jobs convention is not accepted here)",
    )

    cache_command = commands.add_parser(
        "cache", help="inspect or clear the compilation cache"
    )
    cache_command.add_argument("action", choices=["stats", "clear"])

    for sub in (
        idl,
        python_command,
        validate_command,
        preprocess_command,
        render_command,
        query_command,
        transform_command,
        serve_command,
        cache_command,
    ):
        _add_stats_flags(sub, top_level=False)

    arguments = parser.parse_args(argv)
    if arguments.stats or arguments.stats_json:
        obs.enable(reset=True)
    try:
        exit_code = _dispatch(arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        exit_code = 1
    _emit_stats(arguments)
    return exit_code


def _emit_stats(arguments: argparse.Namespace) -> None:
    """Write the obs snapshot wherever ``--stats``/``--stats-json`` asked.

    Runs on error exits too: a failing pipeline is exactly when the
    route counters are most interesting.
    """
    if not (arguments.stats or arguments.stats_json):
        return
    snapshot = obs.snapshot()
    if arguments.stats:
        print(obs.render_table(snapshot), file=sys.stderr)
    if arguments.stats_json == "-":
        json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
        print()
    elif arguments.stats_json is not None:
        with open(arguments.stats_json, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)


def _make_cache(arguments: argparse.Namespace) -> ReproCache | None:
    if arguments.no_cache:
        return None
    from repro.errors import CacheError

    try:
        return ReproCache.persistent(arguments.cache_dir)
    except CacheError:
        # Unwritable directory: still run, just without persistence.
        return ReproCache()


def _bulk_validate(
    arguments: argparse.Namespace, schema_text: str, cache: ReproCache | None
) -> int:
    """``validate`` in bulk mode: the fused ingest path over a file list."""
    from repro.ingest import validate_files

    report = validate_files(
        schema_text,
        arguments.documents,
        jobs=arguments.jobs,
        cache_dir=cache.directory if cache is not None else None,
        schema_label=arguments.schema,
        batch_size=arguments.batch_size,
        schema_location=os.path.abspath(arguments.schema),
        lazy=getattr(arguments, "lazy", False),
    )
    for record in report["files"]:
        if record["valid"]:
            note = " (cached)" if record["cached"] else ""
            print(f"ok   {record['path']} [{record['ms']}ms]{note}")
        else:
            print(f"FAIL {record['path']}: {record['error']}")
    summary = report["summary"]
    print(
        f"{summary['documents']} document(s): {summary['valid']} valid, "
        f"{summary['invalid']} invalid "
        f"({report['jobs']} job(s), {summary['elapsed_ms']}ms)"
    )
    if arguments.report == "-":
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
    elif arguments.report is not None:
        with open(arguments.report, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {arguments.report}")
    return 0 if summary["invalid"] == 0 else 1


def _dispatch(arguments: argparse.Namespace) -> int:
    cache = _make_cache(arguments)
    if arguments.command == "idl":
        strategy = (
            ChoiceStrategy.UNION if arguments.unions
            else ChoiceStrategy.INHERITANCE
        )
        text = _read(arguments.schema)
        schema_location = os.path.abspath(arguments.schema)
        if cache is not None:
            binding = cache.bind(
                text, choice_strategy=strategy, location=schema_location
            )
            print(render_idl(binding.model), end="")
        else:
            from repro.xsd import parse_schema

            schema = parse_schema(text, location=schema_location)
            normalize(schema)
            print(render_idl(generate_interfaces(schema, strategy)), end="")
        return 0
    if arguments.command == "python":
        print(generate_python_module(_read(arguments.schema)), end="")
        return 0
    if arguments.command == "validate":
        text = _read(arguments.schema)
        bulk = (
            len(arguments.documents) > 1
            or arguments.jobs != 1
            or arguments.report is not None
        )
        if bulk:
            return _bulk_validate(arguments, text, cache)
        schema_location = os.path.abspath(arguments.schema)
        if cache is not None:
            schema = cache.schema(text, location=schema_location)
        else:
            from repro.xsd import parse_schema

            schema = parse_schema(text, location=schema_location)
        document = parse_document(_read(arguments.documents[0]))
        errors = SchemaValidator(schema).validate(document)
        for error in errors:
            print(error)
        print(f"{len(errors)} error(s)")
        return 0 if not errors else 1
    if arguments.command == "preprocess":
        binding = bind(
            _read(arguments.schema),
            cache=cache,
            location=os.path.abspath(arguments.schema),
        )
        result = preprocess_module(_read(arguments.module), binding)
        print(result.source, end="")
        print(
            f"# {result.replaced} constructor(s) replaced",
            file=sys.stderr,
        )
        return 0
    if arguments.command == "render":
        from repro.pxml import Template

        binding = bind(
            _read(arguments.schema),
            cache=cache,
            location=os.path.abspath(arguments.schema),
        )
        template = Template(binding, _read(arguments.template), cache=cache)
        values: dict[str, str] = {}
        for item in arguments.hole:
            name, separator, value = item.partition("=")
            if not separator:
                print(
                    f"error: --hole expects NAME=VALUE, got {item!r}",
                    file=sys.stderr,
                )
                return 2
            values[name] = value
        if arguments.dom:
            from repro.dom.serialize import serialize

            print(serialize(template.render(**values)))
        else:
            print(template.render_text(**values))
        return 0
    if arguments.command == "query":
        from repro.dom.serialize import serialize
        from repro.ingest import parse_typed
        from repro.query import Query

        binding = bind(
            _read(arguments.schema),
            cache=cache,
            location=os.path.abspath(arguments.schema),
        )
        typed = parse_typed(
            binding, _read(arguments.document), arguments.document
        )
        # Compiling the query typechecks the path against the schema: a
        # path no instance could satisfy raises QueryError here, before
        # any tree is walked.
        query = Query(binding, typed.tag_name, arguments.path)
        hits = query.apply(typed)
        if query.result_kind == "attribute-values":
            for value in hits:
                print(value)
        else:
            for hit in hits:
                print(serialize(hit))
        print(f"{len(hits)} hit(s)", file=sys.stderr)
        return 0
    if arguments.command == "transform":
        from repro.ingest import parse_typed
        from repro.query import Query, TypedTransform

        binding_in = bind(
            _read(arguments.schema),
            cache=cache,
            location=os.path.abspath(arguments.schema),
        )
        if arguments.out_schema is not None:
            binding_out = bind(
                _read(arguments.out_schema),
                cache=cache,
                location=os.path.abspath(arguments.out_schema),
            )
        else:
            binding_out = binding_in
        typed = parse_typed(
            binding_in, _read(arguments.document), arguments.document
        )
        compiled = TypedTransform(
            binding_out,
            Query(binding_in, typed.tag_name, arguments.query_path),
            _read(arguments.template),
            arguments.hole,
            cache=cache,
        )
        if arguments.dom:
            from repro.dom.serialize import serialize

            pieces = [serialize(item) for item in compiled.apply(typed)]
        else:
            pieces = compiled.apply_text(typed)
        for piece in pieces:
            print(piece)
        print(f"{len(pieces)} fragment(s)", file=sys.stderr)
        return 0
    if arguments.command == "serve":
        import asyncio

        from repro.serve import ReproServer, build_routes

        schema_text = _read(arguments.schema)
        schema_location = os.path.abspath(arguments.schema)
        binding = bind(schema_text, cache=cache, location=schema_location)
        routes = build_routes(binding, arguments.directory, cache=cache)
        validate_pool = None
        if arguments.validate_pool > 0:
            from repro.ingest import ValidationPool, effective_jobs

            pool_workers = effective_jobs(arguments.validate_pool)
            validate_pool = ValidationPool(
                schema_text,
                pool_workers,
                cache_dir=cache.directory if cache is not None else None,
                schema_location=schema_location,
            )
        server = ReproServer(
            routes,
            arguments.host,
            arguments.port,
            max_connections=arguments.max_connections,
            request_timeout=arguments.request_timeout,
            cache_entries=(
                arguments.cache_entries if arguments.response_cache else 0
            ),
            stream=arguments.stream,
            schema=binding.schema,
            validate_pool=validate_pool,
        )

        async def _serve() -> None:
            await server.start()
            # The "listening" line doubles as the readiness signal for
            # scripts that wait on our stdout before probing.
            mode = "streamed" if server.stream else "buffered"
            cache_state = (
                f"cache {server.cache.max_entries} entries"
                if server.cache is not None
                else "cache off"
            )
            print(
                f"serving {len(routes)} route(s) on "
                f"http://{server.host}:{server.port}/ "
                f"({mode}, {cache_state})",
                flush=True,
            )
            for path in routes.paths():
                print(f"  route {path}", flush=True)
            print("  route /-/validate (POST)", flush=True)
            if validate_pool is not None:
                print(
                    f"  validate pool: {validate_pool.workers} "
                    "warm worker(s)",
                    flush=True,
                )
            await server.run()

        try:
            asyncio.run(_serve())
        finally:
            if validate_pool is not None:
                validate_pool.close()
        return 0
    if arguments.command == "cache":
        store_cache = cache if cache is not None else ReproCache.persistent(
            arguments.cache_dir
        )
        if arguments.action == "clear":
            removed = store_cache.clear()
            print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
            return 0
        report = dict(store_cache.stats.as_dict())
        report["directory"] = store_cache.directory
        report["entries"] = len(store_cache)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    raise AssertionError(f"unknown command {arguments.command}")


if __name__ == "__main__":
    raise SystemExit(main())

"""The server-page engine: compile ``<% %>`` pages to Python, render.

Syntax (the JSP subset the paper's Fig. 8 uses):

* ``<% statement(s) %>``   — control flow; block nesting is handled by
  the translator (``<% for x in xs: %>`` ... ``<% end %>``),
* ``<%= expression %>``    — expression spliced into the output,
* ``<%-- comment --%>``    — dropped,
* everything else          — copied verbatim (no escaping, no checking:
  that *is* the baseline's flaw).

``ServerPage(source).render(**context)`` returns a string.  Nothing
validates it — exactly as the paper describes, the output may be
arbitrarily broken markup and no tool complains until a validator (or a
browser) sees it.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ServerPageError


class ServerPage:
    """A compiled server page.

    With a :class:`repro.cache.ReproCache` the page→Python translation
    is reused across processes (keyed by the page source); only the
    final byte-compile runs on a warm start.
    """

    def __init__(self, source: str, name: str = "<page>", cache: Any = None):
        self.source = source
        self.name = name
        self.translated: str | None = None
        if cache is not None:
            from repro.cache.fingerprint import fingerprint

            key = fingerprint("serverpage", source, name=name)
            self.translated = cache.get_text("serverpage", key)
            if self.translated is None:
                self.translated = self._translate_source(source)
                cache.put_text("serverpage", key, self.translated)
        else:
            self.translated = self._translate_source(source)
        self._code = self._compile(self.translated)

    # -- translation ----------------------------------------------------------

    def _compile(self, text: str):
        try:
            return compile(text, self.name, "exec")
        except SyntaxError as error:
            raise ServerPageError(
                f"server page {self.name} does not compile: {error}"
            )

    def _translate_source(self, source: str) -> str:
        lines: list[str] = ["__emit__ = __out__.append"]
        indent = 0
        pending_literal: list[str] = []

        def flush_literal() -> None:
            # Adjacent literal chunks (e.g. around a comment tag) fuse
            # into one append — precomputed runs, one call at render time.
            if pending_literal:
                literal = "".join(pending_literal)
                pending_literal.clear()
                lines.append("    " * indent + f"__emit__({literal!r})")

        def emit(statement: str) -> None:
            lines.append("    " * indent + statement)

        index = 0
        while index < len(source):
            open_tag = source.find("<%", index)
            if open_tag < 0:
                if source[index:]:
                    pending_literal.append(source[index:])
                break
            if open_tag > index:
                pending_literal.append(source[index:open_tag])
            close_tag = source.find("%>", open_tag + 2)
            if close_tag < 0:
                raise ServerPageError(
                    f"unterminated '<%' in server page {self.name}"
                )
            body = source[open_tag + 2 : close_tag]
            index = close_tag + 2
            if body.startswith("--"):
                continue  # comment: surrounding literals coalesce across it
            # Any executable tag ends the current literal run *at the
            # current indent* — a literal may never drift across a block
            # boundary, or it would render under the wrong condition.
            flush_literal()
            if body.startswith("="):
                expression = body[1:].strip()
                emit(f"__emit__(str({expression}))")
                continue
            statement = body.strip()
            if statement == "end":
                indent -= 1
                if indent < 0:
                    raise ServerPageError(
                        f"unbalanced '<% end %>' in server page {self.name}"
                    )
                continue
            if statement.startswith(("elif ", "else", "except", "finally")):
                indent -= 1
                if indent < 0:
                    raise ServerPageError(
                        f"'{statement}' without an open block in {self.name}"
                    )
                emit(statement if statement.endswith(":") else statement + ":")
                indent += 1
                emit("pass")
                continue
            if statement.endswith(":"):
                emit(statement)
                indent += 1
                emit("pass")
                continue
            emit(statement)
        flush_literal()
        if indent != 0:
            raise ServerPageError(
                f"unclosed block in server page {self.name} "
                f"(missing '<% end %>')"
            )
        return "\n".join(lines)

    # -- rendering -------------------------------------------------------------

    def render(self, **context: Any) -> str:
        """Render with *context* names visible to scriptlets by bare name."""
        output: list[str] = []
        namespace: dict[str, Any] = dict(context)
        namespace["__out__"] = output
        exec(self._code, namespace)
        return "".join(output)


def render_page(source: str, *, page_cache: Any = None, **context: Any) -> str:
    """One-shot convenience (``page_cache`` reuses the translation)."""
    return ServerPage(source, cache=page_cache).render(**context)

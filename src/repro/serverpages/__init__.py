"""A Java-Server-Pages-like template engine — the paper's *negative*
baseline (Sect. 1, Fig. 8).

Pages mix literal markup with ``<% ... %>`` scriptlets and ``<%= ... %>``
expressions.  The engine happily renders anything: "changing the program
… still results in a correct Java Server Page in the sense that the
Server Page processor and the … compiler accept the program although the
program does not generate correct Html."  The benchmarks run invalid
pages through it to show errors surface only at post-hoc validation.
"""

from repro.serverpages.engine import ServerPage, render_page

__all__ = ["ServerPage", "render_page"]

"""Exception hierarchy for the whole library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  The hierarchy mirrors the
paper's stages:

* parse-time problems with the *document text* (:class:`XmlSyntaxError`),
* problems with the *language description* itself — a broken DTD or XML
  Schema (:class:`DtdError`, :class:`SchemaError`),
* instance *validity* failures found by the runtime validator, i.e. the
  DOM baseline path the paper criticizes (:class:`ValidationError`),
* typed-construction failures raised by generated V-DOM classes at object
  creation time (:class:`VdomTypeError`),
* static failures reported by the P-XML preprocessor before the program
  runs (:class:`PxmlStaticError`), which is where the paper moves the
  whole class of validity errors.
"""

from __future__ import annotations


class Location:
    """A position in a source text (1-based line/column, 0-based offset).

    Hand-rolled rather than a frozen dataclass: one instance is built
    per parser event on the ingest hot path, and the generated frozen
    ``__init__`` pays an ``object.__setattr__`` call per field where a
    plain slot store suffices.  Equality, ordering, hashing, and repr
    keep the exact shapes ``dataclass(frozen=True, order=True)`` would
    generate.
    """

    __slots__ = ("line", "column", "offset", "source")

    def __init__(
        self,
        line: int = 1,
        column: int = 1,
        offset: int = 0,
        source: str | None = None,
    ):
        self.line = line
        self.column = column
        self.offset = offset
        self.source = source

    def _astuple(self) -> tuple:
        return (self.line, self.column, self.offset, self.source)

    def __eq__(self, other) -> bool:
        if other.__class__ is Location:
            return self._astuple() == other._astuple()
        return NotImplemented

    def __lt__(self, other) -> bool:
        if other.__class__ is Location:
            return self._astuple() < other._astuple()
        return NotImplemented

    def __le__(self, other) -> bool:
        if other.__class__ is Location:
            return self._astuple() <= other._astuple()
        return NotImplemented

    def __gt__(self, other) -> bool:
        if other.__class__ is Location:
            return self._astuple() > other._astuple()
        return NotImplemented

    def __ge__(self, other) -> bool:
        if other.__class__ is Location:
            return self._astuple() >= other._astuple()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:
        return (
            f"Location(line={self.line!r}, column={self.column!r}, "
            f"offset={self.offset!r}, source={self.source!r})"
        )

    def __str__(self) -> str:
        prefix = f"{self.source}:" if self.source else ""
        return f"{prefix}{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by this library."""


class LocatedError(ReproError):
    """An error tied to a position in some source text.

    *location* points into the text being processed; *path* is a slash
    path into the instance document (``/purchaseOrder/items/item[0]``)
    when the error concerns a tree rather than raw text.
    """

    def __init__(
        self,
        message: str,
        location: Location | None = None,
        path: str | None = None,
    ):
        self.message = message
        self.location = location
        self.path = path
        super().__init__(str(self))

    def __str__(self) -> str:
        text = self.message
        if self.location is not None:
            text = f"{self.location}: {text}"
        if self.path:
            text = f"{text} (at {self.path})"
        return text


class XmlError(LocatedError):
    """Any problem with XML document text."""


class XmlSyntaxError(XmlError):
    """The text is not well-formed XML (XML 1.0 fatal error)."""


class DomError(ReproError):
    """Illegal operation on the DOM tree (wrong child type, wrong doc...)."""


class HierarchyRequestError(DomError):
    """Node insertion that would violate the document tree shape."""


class DtdError(LocatedError):
    """The DTD text itself is malformed."""


class DtdValidationError(LocatedError):
    """A document violates its DTD (the prior-work baseline check)."""


class SchemaError(LocatedError):
    """The XML Schema document is broken or inconsistent."""


class UnsupportedFeatureError(SchemaError):
    """A schema feature the paper explicitly does not handle.

    Identity constraints and wildcards fall here (paper, Sect. 3).
    """


class ValidationError(LocatedError):
    """An instance document is invalid against its schema.

    This is the *runtime* failure mode of the generic-DOM approach: it can
    only surface after the document has been fully built.
    """


class SimpleTypeError(ValidationError):
    """A literal does not belong to a simple type's lexical/value space."""


class VdomError(ReproError):
    """Base for errors from generated V-DOM bindings."""


class VdomTypeError(VdomError):
    """A typed constructor or setter was given a value of the wrong type.

    Raised *at construction time* — the Python analogue of the paper's
    compile-time rejection: the invalid document never comes into being.
    """


class VdomStateError(VdomError):
    """A typed tree was asked for content it does not (yet) have."""


class GenerationError(ReproError):
    """The interface/code generator could not map a schema construct."""


class PxmlError(LocatedError):
    """Base for P-XML template errors."""


class PxmlSyntaxError(PxmlError):
    """The template text is not a syntactically correct XML constructor."""


class PxmlStaticError(PxmlError):
    """The template is well-formed but schema-invalid.

    This is the error class the paper's preprocessor reports *statically*,
    without running the generator program (Fig. 9).
    """


class ServerPageError(LocatedError):
    """Errors from the JSP-like baseline template engine."""


class QueryError(LocatedError):
    """Errors from the typed query extension (paper Sect. 8)."""


class CacheError(ReproError):
    """Misconfiguration of the compilation cache.

    Degraded cache *content* (corrupt files, stale formats) never raises —
    it falls back to recompilation; only programmer errors (unwritable
    store roots, bad parameters) surface as :class:`CacheError`.
    """

"""``ReproCache`` — the object threaded through every entry point.

The paper's whole argument is that validity work belongs at *program
preparation time* (Sect. 2–4); this cache makes that preparation pay
once per schema *per machine* instead of once per process: the XSD
parse, normalization, interface generation, and every content-model DFA
are captured in one content-addressed artifact, and a warm start is an
unpickle plus class materialization.

Layering::

    ReproCache
      ├── live-object LRU   (same-process re-binds: no unpickle at all)
      └── byte store
            ├── MemoryStore (LRU over encoded artifacts)
            └── DirectoryStore (persistent, atomic, checksummed)

Every degraded condition — corrupt file, stale format, version skew,
unwritable directory — silently falls back to recompilation and is
visible only in :class:`~repro.cache.stats.CacheStats`.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from typing import Any

from repro import obs
from repro.cache import artifacts
from repro.cache.artifacts import ArtifactError
from repro.cache.fingerprint import fingerprint
from repro.cache.stats import CacheStats
from repro.cache.stores import DirectoryStore, MemoryStore, TieredStore

#: environment variable naming the persistent cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: default on-disk location (relative to the working directory)
DEFAULT_CACHE_DIR = ".repro-cache"


def _related_documents_fresh(schema: Any) -> bool:
    """True when every include/import target still hashes as recorded.

    Schemas parsed from a single document have an empty manifest and are
    always fresh; a missing or edited related file turns the hit into a
    recompile (which re-reads everything and records the new digests).
    """
    import hashlib

    manifest = getattr(schema, "related_documents", ())
    for path, digest in manifest:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except (OSError, UnicodeDecodeError):
            return False
        if hashlib.sha256(text.encode("utf-8")).hexdigest() != digest:
            return False
    return True


class ReproCache:
    """Compilation cache for schema bindings, templates, and pages.

    ``directory=None`` gives a process-local (memory-only) cache;
    passing a directory adds the persistent tier.  Use
    :meth:`persistent` to honor ``$REPRO_CACHE_DIR`` with the
    ``.repro-cache`` fallback.
    """

    def __init__(
        self,
        directory: str | os.PathLike | None = None,
        memory_entries: int = 128,
        binding_entries: int = 16,
    ):
        self.stats = CacheStats()
        self.directory = os.fspath(directory) if directory is not None else None
        memory = MemoryStore(memory_entries, stats=self.stats)
        if directory is None:
            self.store: MemoryStore | TieredStore = memory
        else:
            self.store = TieredStore(
                memory, DirectoryStore(directory, stats=self.stats)
            )
        #: fingerprint -> live Binding (shared within the process)
        self._bindings: OrderedDict[str, Any] = OrderedDict()
        self._binding_entries = binding_entries
        self._lock = threading.Lock()

    @classmethod
    def persistent(
        cls, directory: str | os.PathLike | None = None, **kwargs: Any
    ) -> "ReproCache":
        """A disk-backed cache at *directory* / ``$REPRO_CACHE_DIR`` /
        ``.repro-cache`` (first one set wins)."""
        if directory is None:
            directory = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        return cls(directory=directory, **kwargs)

    # -- raw byte access (building block for the typed helpers) ---------------

    def get_bytes(self, kind: str, key: str) -> bytes | None:
        payload = self.store.get(key)
        if payload is None:
            self.stats.record_miss(kind)
        else:
            self.stats.record_hit(kind)
        return payload

    def put_bytes(self, kind: str, key: str, payload: bytes) -> None:
        self.store.put(key, payload)
        self.stats.stores += 1

    def invalidate(self, key: str) -> bool:
        with self._lock:
            self._bindings.pop(key, None)
        removed = self.store.delete(key)
        if removed:
            self.stats.invalidations += 1
        return removed

    def clear(self) -> int:
        with self._lock:
            self._bindings.clear()
        removed = self.store.clear()
        self.stats.invalidations += removed
        return removed

    def __len__(self) -> int:
        return len(self.store)

    def __repr__(self) -> str:
        where = self.directory or "<memory>"
        return f"ReproCache({where!r}, {self.stats.hits}h/{self.stats.misses}m)"

    # -- schema bindings ----------------------------------------------------------

    def bind(
        self,
        schema_text: str,
        naming: Any = None,
        choice_strategy: Any = None,
        validate_on_mutate: bool = True,
        location: str | None = None,
        lazy_roots: tuple[str, ...] | None = None,
    ):
        """Cached equivalent of :func:`repro.core.bind` on schema text.

        A same-process repeat returns the *same* live binding; a
        cross-process repeat unpickles the prepared schema + interface
        model (DFAs included) and only re-materializes classes.

        *location* is where the text came from; include/import
        ``schemaLocation`` values resolve relative to it, and warm
        starts re-hash every related document so editing an included
        file misses the cache.  *lazy_roots* binds the per-subset
        artifact for those root element keys instead of the full schema
        — each distinct root set is its own cache entry.
        """
        with obs.timeit("cache.bind"):
            return self._bind(
                schema_text,
                naming,
                choice_strategy,
                validate_on_mutate,
                location,
                tuple(lazy_roots) if lazy_roots else None,
            )

    def _bind(
        self,
        schema_text: str,
        naming: Any,
        choice_strategy: Any,
        validate_on_mutate: bool,
        location: str | None,
        lazy_roots: tuple[str, ...] | None,
    ):
        from repro.core.generate import ChoiceStrategy, generate_interfaces
        from repro.core.normalize import normalize
        from repro.core.vdom import Binding
        from repro.xsd.schema_parser import parse_schema

        strategy = (
            choice_strategy
            if choice_strategy is not None
            else ChoiceStrategy.INHERITANCE
        )
        key = fingerprint(
            "binding",
            schema_text,
            choice_strategy=strategy.value,
            naming=type(naming).__name__ if naming is not None else "default",
            location=location,
            subset=sorted(lazy_roots) if lazy_roots else None,
        )
        with self._lock:
            cached = self._bindings.get((key, validate_on_mutate))
            if cached is not None and _related_documents_fresh(
                cached.schema
            ):
                self._bindings.move_to_end((key, validate_on_mutate))
                self.stats.record_hit("binding")
                obs.count("cache.bind.outcome", outcome="live")
                return cached
        payload = self.get_bytes("binding", key)
        if payload is not None:
            try:
                schema, model = artifacts.load_binding(payload)
            except ArtifactError:
                self.stats.record_corrupt("binding")
                self.invalidate(key)
            else:
                if _related_documents_fresh(schema):
                    binding = Binding(
                        schema, model, validate_on_mutate=validate_on_mutate
                    )
                    binding.cache_fingerprint = key
                    self._remember_binding(key, validate_on_mutate, binding)
                    obs.count("cache.bind.outcome", outcome="warm")
                    return binding
                self.invalidate(key)
        schema = parse_schema(schema_text, location=location)
        if lazy_roots:
            from repro.xsd.subset import subset_schema

            schema = subset_schema(schema, lazy_roots)
        normalize(schema, naming)
        model = generate_interfaces(schema, strategy)
        # Build the live binding *before* pickling: building memoizes
        # per-field name resolution onto the model, so the artifact
        # carries it and warm starts skip that work too.
        binding = Binding(schema, model, validate_on_mutate=validate_on_mutate)
        binding.cache_fingerprint = key
        self.put_bytes("binding", key, artifacts.dump_binding(schema, model))
        self._remember_binding(key, validate_on_mutate, binding)
        obs.count("cache.bind.outcome", outcome="compiled")
        return binding

    def _remember_binding(self, key: str, flag: bool, binding: Any) -> None:
        with self._lock:
            self._bindings[(key, flag)] = binding
            self._bindings.move_to_end((key, flag))
            while len(self._bindings) > self._binding_entries:
                self._bindings.popitem(last=False)
                self.stats.evictions += 1

    def schema(self, schema_text: str, location: str | None = None):
        """Cached parse of raw schema text (the validator's input).

        Unlike :meth:`bind` the schema is *not* normalized — it is
        exactly what :func:`repro.xsd.parse_schema` returns, plus
        prewarmed DFAs.
        """
        from repro.xsd.schema_parser import parse_schema

        key = fingerprint("schema", schema_text, location=location)
        payload = self.get_bytes("schema", key)
        if payload is not None:
            try:
                schema = artifacts.load_schema(payload)
            except ArtifactError:
                self.stats.record_corrupt("schema")
                self.invalidate(key)
            else:
                if _related_documents_fresh(schema):
                    return schema
                self.invalidate(key)
        schema = parse_schema(schema_text, location=location)
        self.put_bytes("schema", key, artifacts.dump_schema(schema))
        return schema

    # -- text artifacts (server pages, generated modules, IDL) ------------------

    def get_text(self, kind: str, key: str) -> str | None:
        payload = self.get_bytes(kind, key)
        if payload is None:
            return None
        try:
            return artifacts.load_text(payload)
        except ArtifactError:
            self.stats.record_corrupt(kind)
            self.invalidate(key)
            return None

    def put_text(self, kind: str, key: str, text: str) -> None:
        self.put_bytes(kind, key, artifacts.dump_text(text))

    # -- JSON artifacts (bulk-ingest verdicts, reports) --------------------------

    def get_json(self, kind: str, key: str) -> Any | None:
        text = self.get_text(kind, key)
        if text is None:
            return None
        try:
            return json.loads(text)
        except ValueError:
            self.stats.record_corrupt(kind)
            self.invalidate(key)
            return None

    def put_json(self, kind: str, key: str, value: Any) -> None:
        self.put_text(kind, key, json.dumps(value, sort_keys=True))


_default_cache: ReproCache | None = None
_default_lock = threading.Lock()


def default_cache() -> ReproCache:
    """The process-wide cache used when entry points get ``cache=None``.

    Memory-only unless ``$REPRO_CACHE_DIR`` is set, in which case it is
    persistent at that directory.
    """
    global _default_cache
    with _default_lock:
        if _default_cache is None:
            directory = os.environ.get(CACHE_DIR_ENV)
            _default_cache = ReproCache(directory=directory or None)
        return _default_cache


def set_default_cache(cache: ReproCache | None) -> None:
    """Replace (or with ``None``: reset) the process-wide cache."""
    global _default_cache
    with _default_lock:
        _default_cache = cache

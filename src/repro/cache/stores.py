"""Artifact stores: in-memory LRU, on-disk directory, and their stack.

The disk format is deliberately paranoid: every entry is
``magic || sha256(payload) || payload`` written to a temp file in the
same directory and published with :func:`os.replace`, so concurrent
readers only ever observe either no entry or a complete one.  Loads
verify the digest and treat *any* irregularity — short file, bad magic,
wrong digest, I/O error — as a miss, never as an exception: a damaged
cache degrades to recompilation.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from pathlib import Path

from repro.errors import CacheError
from repro.cache.stats import CacheStats

_MAGIC = b"RPRC\x01"
_DIGEST_SIZE = hashlib.sha256().digest_size


class MemoryStore:
    """Bounded LRU over raw payload bytes; thread-safe."""

    def __init__(self, max_entries: int = 128, stats: CacheStats | None = None):
        if max_entries < 1:
            raise CacheError("MemoryStore needs room for at least one entry")
        self.max_entries = max_entries
        self.stats = stats if stats is not None else CacheStats()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str) -> bytes | None:
        with self._lock:
            payload = self._entries.get(key)
            if payload is not None:
                self._entries.move_to_end(key)
            return payload

    def put(self, key: str, payload: bytes) -> None:
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._entries.pop(key, None) is not None

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def __len__(self) -> int:
        return len(self._entries)


class DirectoryStore:
    """Content-addressed files under one root; atomic, corruption-tolerant.

    Layout: ``<root>/<key[:2]>/<key>.bin`` — the two-character fan-out
    keeps directories small when thousands of schemas are cached.
    """

    def __init__(self, root: str | os.PathLike, stats: CacheStats | None = None):
        self.root = Path(root)
        self._root_str = os.fspath(root)
        self.stats = stats if stats is not None else CacheStats()
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            raise CacheError(
                f"cache directory {self.root} cannot be created: {error}"
            )
        self._counter = 0
        self._lock = threading.Lock()

    def _path(self, key: str) -> str:
        # Plain string joins: this runs on every lookup, and pathlib
        # object construction is measurable next to a ~1 ms warm start.
        return os.path.join(self._root_str, key[:2], f"{key}.bin")

    def get(self, key: str) -> bytes | None:
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return None
        if (
            len(raw) >= len(_MAGIC) + _DIGEST_SIZE
            and raw.startswith(_MAGIC)
        ):
            digest = raw[len(_MAGIC) : len(_MAGIC) + _DIGEST_SIZE]
            payload = raw[len(_MAGIC) + _DIGEST_SIZE :]
            if hashlib.sha256(payload).digest() == digest:
                return payload
        # Truncated, foreign, or bit-rotted entry: drop it and recompile.
        self.stats.record_corrupt("store")
        try:
            os.unlink(path)
        except OSError:
            pass
        return None

    def put(self, key: str, payload: bytes) -> None:
        path = self._path(key)
        parent = os.path.dirname(path)
        try:
            os.makedirs(parent, exist_ok=True)
            with self._lock:
                self._counter += 1
                serial = self._counter
            temp = os.path.join(
                parent,
                f".{os.path.basename(path)}.{os.getpid()}.{serial}.tmp",
            )
            blob = _MAGIC + hashlib.sha256(payload).digest() + payload
            with open(temp, "wb") as handle:
                handle.write(blob)
            os.replace(temp, path)
        except OSError:
            # A read-only or full disk must not take the pipeline down;
            # the artifact is simply recomputed next time.
            try:
                os.unlink(temp)
            except (OSError, UnboundLocalError):
                pass

    def delete(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
            return True
        except OSError:
            return False

    def clear(self) -> int:
        count = 0
        for path in self.root.glob("*/*.bin"):
            try:
                path.unlink()
                count += 1
            except OSError:
                pass
        return count

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.bin"))


class TieredStore:
    """Memory in front of disk; disk hits are promoted to memory."""

    def __init__(self, memory: MemoryStore, disk: DirectoryStore):
        self.memory = memory
        self.disk = disk

    def get(self, key: str) -> bytes | None:
        payload = self.memory.get(key)
        if payload is not None:
            return payload
        payload = self.disk.get(key)
        if payload is not None:
            self.memory.put(key, payload)
        return payload

    def put(self, key: str, payload: bytes) -> None:
        self.memory.put(key, payload)
        self.disk.put(key, payload)

    def delete(self, key: str) -> bool:
        in_memory = self.memory.delete(key)
        on_disk = self.disk.delete(key)
        return in_memory or on_disk

    def clear(self) -> int:
        self.memory.clear()
        return self.disk.clear()

    def __len__(self) -> int:
        return len(self.disk)

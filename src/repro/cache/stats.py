"""Cache observability: hit/miss/evict/invalidation counters.

The benchmarks (``benchmarks/test_cache_amortization.py``) and the
``vdom-generate cache stats`` subcommand read these; nothing in the hot
path does more than increment an integer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs


@dataclass
class CacheStats:
    """Mutable counter block shared by every layer of one cache."""

    #: artifact served from the cache (any tier)
    hits: int = 0
    #: artifact absent — compiled from scratch
    misses: int = 0
    #: artifact written to the store after a miss
    stores: int = 0
    #: entries dropped by the in-memory LRU to respect its capacity
    evictions: int = 0
    #: entries explicitly removed (``invalidate``/``clear``) or replaced
    #: because their fingerprint no longer matched the source
    invalidations: int = 0
    #: on-disk entries rejected as corrupt/truncated/stale-format; every
    #: one degrades to a recompile, it never surfaces as an error
    corrupt_entries: int = 0
    #: per-artifact-kind hit/miss split, e.g. ``{"binding": [3, 1]}``
    by_kind: dict[str, list[int]] = field(default_factory=dict)

    def record_hit(self, kind: str) -> None:
        self.hits += 1
        self.by_kind.setdefault(kind, [0, 0])[0] += 1
        obs.count("cache.hit", kind=kind)

    def record_miss(self, kind: str) -> None:
        self.misses += 1
        self.by_kind.setdefault(kind, [0, 0])[1] += 1
        obs.count("cache.miss", kind=kind)

    def record_corrupt(self, kind: str) -> None:
        """A stored entry was rejected (truncated, stale format, bad
        checksum) and recovery fell back to recompilation."""
        self.corrupt_entries += 1
        obs.count("cache.corrupt_recovery", kind=kind)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (benchmark output, CLI ``cache stats``)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "corrupt_entries": self.corrupt_entries,
            "hit_rate": round(self.hit_rate, 4),
            "by_kind": {
                kind: {"hits": pair[0], "misses": pair[1]}
                for kind, pair in sorted(self.by_kind.items())
            },
        }

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self.invalidations = 0
        self.corrupt_entries = 0
        self.by_kind.clear()

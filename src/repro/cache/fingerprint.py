"""Stable fingerprints keying compiled artifacts.

A fingerprint must change whenever *anything* that shaped the artifact
changes: the schema (or template/page) source text, the compilation
options, the on-disk artifact format, the library version that produced
it, and the interpreter that will unpickle it.  All of those are hashed
together, so invalidation is purely content-addressed — a stale entry is
simply never looked up again and is eventually pruned.
"""

from __future__ import annotations

import hashlib
import platform
import sys
from typing import Any

#: Bump whenever the pickled artifact layout changes incompatibly.
#: 2: template records gained ``text_source`` + ``segments`` (the
#: render-to-text fast path).
#: 3: ``Location`` and the parse events grew ``__slots__``;
#: ``ComplexType`` gained the attribute-use memo field.
#: 4: bindings ship prewarmed flat DFA transition tables
#: (``Schema._table_cache`` of ``DfaTable``) next to the object DFAs.
#: 5: schemas are namespace-aware — global maps keyed by expanded
#: (Clark) names, declarations carry ``target_namespace``, schemas
#: record ``related_documents`` (include/import manifest) and
#: ``subset_roots`` (lazy per-subset binding artifacts).
CACHE_FORMAT_VERSION = 5


def _library_version() -> str:
    # Imported lazily: ``repro.cache`` loads before ``repro.__version__``
    # is assigned when the package itself is being imported.
    try:
        import repro

        return getattr(repro, "__version__", "unversioned")
    except ImportError:  # pragma: no cover - only during partial init
        return "unversioned"


def environment_tag() -> str:
    """The part of every fingerprint tied to this process's toolchain."""
    return "|".join(
        (
            f"format={CACHE_FORMAT_VERSION}",
            f"python={sys.version_info.major}.{sys.version_info.minor}",
            f"impl={platform.python_implementation()}",
            f"repro={_library_version()}",
            f"pickle={__import__('pickle').HIGHEST_PROTOCOL}",
        )
    )


def fingerprint(kind: str, source: str, **options: Any) -> str:
    """Content hash for one artifact.

    ``kind`` partitions the key space ("binding", "schema", "template",
    "serverpage"); ``source`` is the exact input text; ``options`` are
    the compilation knobs that change the output (choice strategy,
    naming scheme, ...).  Option values are reduced to ``repr`` — callers
    pass strings/enum values, never live objects.
    """
    hasher = hashlib.sha256()
    hasher.update(environment_tag().encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(kind.encode("utf-8"))
    hasher.update(b"\x00")
    hasher.update(source.encode("utf-8"))
    for name in sorted(options):
        hasher.update(b"\x00")
        hasher.update(name.encode("utf-8"))
        hasher.update(b"=")
        hasher.update(repr(options[name]).encode("utf-8"))
    return hasher.hexdigest()


def combine(base_fingerprint: str, kind: str, source: str, **options: Any) -> str:
    """Fingerprint an artifact derived from an already-fingerprinted one.

    Templates and server pages compile *against* a schema binding; their
    keys chain off the binding's fingerprint so a schema edit invalidates
    every downstream template artifact automatically.
    """
    return fingerprint(kind, source, _base=base_fingerprint, **options)

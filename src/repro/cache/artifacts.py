"""(De)serialization of cached compilation artifacts.

Three artifact families:

* **binding** — one pickle holding the *normalized* schema (with its
  content-model DFAs prewarmed) together with the generated interface
  model.  Pickling them as a single object graph preserves every shared
  reference, so the identity-keyed machinery (``class_by_declaration``,
  the DFA cache) stays consistent after a load.  The class objects
  themselves are *not* pickled — ``Binding`` re-materializes them from
  the model, which is cheap next to parsing and generation.
* **template** — the P-XML compiler's generated source plus the hole
  specification reduced to interface keys; rehydrated against the live
  binding without re-running the static checker.
* **text** — plain UTF-8 strings (translated server pages, rendered
  IDL, generated Python modules).

Loads raise :class:`ArtifactError` on *any* problem; callers treat that
as a cache miss.
"""

from __future__ import annotations

import io
import pickle
import pickletools
from typing import TYPE_CHECKING, Any

from repro.xsd.components import ComplexType, Schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import InterfaceModel
    from repro.core.vdom import Binding


class ArtifactError(Exception):
    """A cached artifact could not be decoded; recompile instead."""


_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: modules a binding pickle may legitimately reference — everything else
#: is refused at load time so a tampered cache file cannot import
#: arbitrary code through unpickling
_TRUSTED_MODULES = frozenset(
    {"array", "builtins", "collections", "datetime", "decimal", "re"}
)


class _RestrictedUnpickler(pickle.Unpickler):
    def find_class(self, module: str, name: str):
        if module in _TRUSTED_MODULES or module.startswith("repro."):
            return super().find_class(module, name)
        raise ArtifactError(
            f"cache entry references untrusted module '{module}'"
        )


def _loads(payload: bytes) -> Any:
    try:
        return _RestrictedUnpickler(io.BytesIO(payload)).load()
    except ArtifactError:
        raise
    # Audited boundary: unpickling corrupt bytes can raise anything
    # (truncation, stale classes); all of it means "recompile".
    except Exception as error:  # noqa: BLE001
        raise ArtifactError(f"undecodable cache entry: {error}")


def prewarm_dfas(schema: Schema, model: "InterfaceModel | None" = None) -> int:
    """Build every content-model DFA (and its flat table) the binding needs.

    Doing this *before* pickling moves the Glushkov/subset construction
    cost — and, since the table-driven ingest, the flattening into
    ``array('i')`` transition tables — into the cached artifact: a warm
    start never builds an automaton in either representation.
    Returns the number of automata in the schema's cache afterwards.
    """
    for definition in schema.types.values():
        if isinstance(definition, ComplexType):
            schema.content_dfa(definition)
            schema.content_table(definition)
    if model is not None:
        for interface in model:
            definition = interface.type_definition
            if isinstance(definition, ComplexType):
                schema.content_dfa(definition)
                schema.content_table(definition)
    return len(schema._dfa_cache)


def _dumps(obj: Any) -> bytes:
    # ``optimize`` strips unused PUT opcodes: dumping pays a little more
    # (cold path) so every load pays less (warm path).
    return pickletools.optimize(pickle.dumps(obj, protocol=_PROTOCOL))


def dump_binding(schema: Schema, model: "InterfaceModel") -> bytes:
    prewarm_dfas(schema, model)
    return _dumps((schema, model))


def load_binding(payload: bytes) -> "tuple[Schema, InterfaceModel]":
    pair = _loads(payload)
    if (
        not isinstance(pair, tuple)
        or len(pair) != 2
        or not isinstance(pair[0], Schema)
    ):
        raise ArtifactError("cache entry is not a (schema, model) pair")
    return pair


def dump_schema(schema: Schema) -> bytes:
    prewarm_dfas(schema)
    return _dumps(schema)


def load_schema(payload: bytes) -> Schema:
    schema = _loads(payload)
    if not isinstance(schema, Schema):
        raise ArtifactError("cache entry is not a schema")
    return schema


# -- template artifacts ---------------------------------------------------------


def dump_template(
    binding: "Binding",
    generated_source: str,
    root_name: str,
    holes: dict[str, Any],
    text_source: str | None = None,
    segment_program: Any = None,
) -> bytes:
    """Reduce a compiled template to binding-independent data.

    Hole specs (and segment-run owners) reference generated classes,
    which cannot be pickled; they are stored as interface keys and
    resolved against the live binding on load.  ``text_source`` and
    ``segment_program`` carry the render-to-text fast path; both are
    optional so templates the segment compiler declined still cache.
    """
    key_by_class = {cls: key for key, cls in binding.classes.items()}
    hole_table: dict[str, dict[str, Any]] = {}
    for name, spec in holes.items():
        try:
            class_keys = [key_by_class[cls] for cls in spec.classes]
        except KeyError:
            raise ArtifactError(
                f"hole '{name}' references a class outside the binding"
            )
        hole_table[name] = {"kind": spec.kind, "classes": class_keys}
    record = {
        "kind": "template",
        "root": root_name,
        "generated_source": generated_source,
        "holes": hole_table,
    }
    if text_source is not None and segment_program is not None:
        from repro.pxml.segments import program_to_record

        try:
            record["text_source"] = text_source
            record["segments"] = program_to_record(segment_program, binding)
        except LookupError as error:
            raise ArtifactError(f"unpicklable segment program: {error}")
    return _dumps(record)


def load_template(payload: bytes, binding: "Binding") -> dict[str, Any]:
    """Rehydrate ``{root, generated_source, holes, text_source, program}``.

    The returned ``holes`` map contains live ``HoleSpec`` objects whose
    classes come from the *current* binding; ``program`` (a rebuilt
    ``SegmentProgram``) and ``text_source`` are ``None`` when the cached
    template predates or declined segment compilation.
    """
    from repro.pxml.checker import HoleSpec

    record = _loads(payload)
    if not isinstance(record, dict) or record.get("kind") != "template":
        raise ArtifactError("cache entry is not a compiled template")
    holes: dict[str, Any] = {}
    for name, entry in record["holes"].items():
        try:
            classes = tuple(binding.classes[key] for key in entry["classes"])
        except KeyError as error:
            raise ArtifactError(f"stale template artifact: {error}")
        holes[name] = HoleSpec(name=name, kind=entry["kind"], classes=classes)
    program = None
    text_source = record.get("text_source")
    if text_source is not None and record.get("segments") is not None:
        from repro.pxml.segments import program_from_record

        try:
            program = program_from_record(record["segments"], binding, holes)
        except (LookupError, TypeError, ValueError) as error:
            raise ArtifactError(f"stale segment artifact: {error}")
    return {
        "root": record["root"],
        "generated_source": record["generated_source"],
        "holes": holes,
        "text_source": text_source,
        "program": program,
    }


# -- text artifacts -----------------------------------------------------------


def dump_text(text: str) -> bytes:
    return text.encode("utf-8")


def load_text(payload: bytes) -> str:
    try:
        return payload.decode("utf-8")
    except UnicodeDecodeError as error:
        raise ArtifactError(f"undecodable text artifact: {error}")

"""Persistent schema-compilation cache (preparation-time reuse).

The paper splits an XML application's life into *program preparation
time* — schema compilation, interface generation, template checking —
and *runtime*.  This package makes the preparation side durable: every
expensive artifact (parsed + normalized schemas, content-model DFAs,
the generated interface model, compiled P-XML templates, translated
server pages) is keyed by a content fingerprint and reused across
processes, with corruption-tolerant loads that silently degrade to
recompilation.

Typical use::

    from repro import ReproCache, bind

    cache = ReproCache.persistent()         # $REPRO_CACHE_DIR or .repro-cache
    binding = bind(SCHEMA_TEXT, cache=cache)
    print(cache.stats.as_dict())
"""

from repro.cache.fingerprint import (
    CACHE_FORMAT_VERSION,
    combine,
    environment_tag,
    fingerprint,
)
from repro.cache.manager import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    ReproCache,
    default_cache,
    set_default_cache,
)
from repro.cache.stats import CacheStats
from repro.cache.stores import DirectoryStore, MemoryStore, TieredStore

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "DirectoryStore",
    "MemoryStore",
    "ReproCache",
    "TieredStore",
    "combine",
    "default_cache",
    "environment_tag",
    "fingerprint",
    "set_default_cache",
]

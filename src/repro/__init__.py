"""repro — V-DOM and P-XML over XML Schema, reproduced in Python.

A from-scratch reproduction of Kempa & Linnemann, *XML-Based Applications
Using XML Schema* (EDBT 2002 Workshops): generate one typed class per
element declared in an XML Schema, so that programs can only ever build
schema-valid documents — no post-hoc validation runs needed — plus P-XML,
an XML-literal template layer whose constructors are checked statically
against the schema.

Quickstart::

    from repro import bind, Template
    from repro.schemas import PURCHASE_ORDER_SCHEMA

    binding = bind(PURCHASE_ORDER_SCHEMA)
    f = binding.factory
    po = f.create_purchase_order(
        f.create_ship_to(f.create_name("Alice Smith"), ...),
        ...,
        order_date="1999-10-20",
    )                      # construction-time validity enforcement

    template = Template(binding, "<shipTo country='US'>$n$...</shipTo>")
    ship_to = template.render(n=f.create_name("Alice"))  # checked statically

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
reproduction of every figure and claim of the paper.
"""

from repro.errors import (
    CacheError,
    DtdError,
    DtdValidationError,
    PxmlError,
    PxmlStaticError,
    PxmlSyntaxError,
    QueryError,
    ReproError,
    SchemaError,
    SimpleTypeError,
    UnsupportedFeatureError,
    ValidationError,
    VdomTypeError,
    XmlSyntaxError,
)
from repro.dom import parse_document, serialize
from repro.dtd import parse_dtd, validate_against_dtd
from repro.xsd import SchemaValidator, parse_schema, validate
from repro.core import (
    Binding,
    ChoiceStrategy,
    TypedElement,
    bind,
    generate_interfaces,
    generate_python_module,
    normalize,
    render_idl,
)
from repro.pxml import Template, preprocess_module
from repro.query import Query, select
from repro.serverpages import ServerPage, render_page
from repro.cache import (
    CacheStats,
    ReproCache,
    default_cache,
    set_default_cache,
)

__version__ = "1.0.0"

__all__ = [
    "Binding",
    "CacheError",
    "CacheStats",
    "ChoiceStrategy",
    "DtdError",
    "DtdValidationError",
    "PxmlError",
    "PxmlStaticError",
    "PxmlSyntaxError",
    "Query",
    "QueryError",
    "ReproCache",
    "ReproError",
    "SchemaError",
    "SchemaValidator",
    "ServerPage",
    "SimpleTypeError",
    "Template",
    "TypedElement",
    "UnsupportedFeatureError",
    "ValidationError",
    "VdomTypeError",
    "XmlSyntaxError",
    "__version__",
    "bind",
    "default_cache",
    "generate_interfaces",
    "generate_python_module",
    "normalize",
    "parse_document",
    "parse_dtd",
    "parse_schema",
    "preprocess_module",
    "render_idl",
    "render_page",
    "select",
    "serialize",
    "set_default_cache",
    "validate",
    "validate_against_dtd",
]

"""A WML 1.3 subset schema covering the paper's Section 5 example.

The Fig. 8/10 page builds ``<p>``, ``<select>``, ``<option>``, ``<b>``
and ``<br>`` elements inside a ``<card>``; the subset models exactly the
content models those elements have in WML 1.3, expressed as an XML
Schema (WML itself ships as a DTD; the re-expression is the same move
the paper makes for HTML→XHTML).
"""

WML_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="wml" type="WmlType"/>

  <xsd:complexType name="WmlType">
    <xsd:sequence>
      <xsd:element name="card" type="CardType" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="CardType">
    <xsd:sequence>
      <xsd:element name="p" type="PType" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="id" type="xsd:NMTOKEN"/>
    <xsd:attribute name="title" type="xsd:string"/>
  </xsd:complexType>

  <xsd:complexType name="PType" mixed="true">
    <xsd:sequence>
      <xsd:choice minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="b" type="EmphType"/>
        <xsd:element name="em" type="EmphType"/>
        <xsd:element name="br" type="EmptyType"/>
        <xsd:element name="select" type="SelectType"/>
        <xsd:element name="a" type="AnchorType"/>
      </xsd:choice>
    </xsd:sequence>
    <xsd:attribute name="align" type="AlignType"/>
  </xsd:complexType>

  <xsd:complexType name="EmphType" mixed="true">
    <xsd:sequence>
      <xsd:choice minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="br" type="EmptyType"/>
      </xsd:choice>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="EmptyType">
    <xsd:sequence/>
  </xsd:complexType>

  <xsd:complexType name="SelectType">
    <xsd:sequence>
      <xsd:element name="option" type="OptionType" maxOccurs="unbounded"/>
    </xsd:sequence>
    <xsd:attribute name="name" type="xsd:NMTOKEN"/>
    <xsd:attribute name="multiple" type="xsd:boolean"/>
  </xsd:complexType>

  <xsd:complexType name="OptionType" mixed="true">
    <xsd:sequence/>
    <xsd:attribute name="value" type="xsd:string"/>
    <xsd:attribute name="onpick" type="xsd:anyURI"/>
  </xsd:complexType>

  <xsd:complexType name="AnchorType" mixed="true">
    <xsd:sequence/>
    <xsd:attribute name="href" type="xsd:anyURI" use="required"/>
  </xsd:complexType>

  <xsd:simpleType name="AlignType">
    <xsd:restriction base="xsd:string">
      <xsd:enumeration value="left"/>
      <xsd:enumeration value="center"/>
      <xsd:enumeration value="right"/>
    </xsd:restriction>
  </xsd:simpleType>
</xsd:schema>
"""

#: The page the Fig. 8 server page / Fig. 10 P-XML program produces for a
#: small directory listing (one card, one select).
WML_DIRECTORY_DOCUMENT = """\
<wml>
  <card id="dirs" title="Directories">
    <p>
      <b>/workspace/media</b>
      <br/>
      <select name="directories">
        <option value="/workspace">..</option>
        <option value="/workspace/media/audio">audio</option>
        <option value="/workspace/media/video">video</option>
      </select>
      <br/>
    </p>
  </card>
</wml>
"""

"""Schema variants transcribed from the paper's Section 3 discussion."""

#: The PurchaseOrderType variant whose first component is a choice group
#: (``singAddr | twoAddr``) — the example driving the naming-scheme
#: discussion and Figures 5/6.
PURCHASE_ORDER_CHOICE_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:choice>
        <xsd:element name="singAddr" type="USAddress"/>
        <xsd:element name="twoAddr" type="twoAddress"/>
      </xsd:choice>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
    <xsd:attribute name="orderDate" type="xsd:date"/>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="twoAddress">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" minOccurs="0" maxOccurs="unbounded">
        <xsd:complexType>
          <xsd:sequence>
            <xsd:element name="productName" type="xsd:string"/>
            <xsd:element name="USPrice" type="xsd:decimal"/>
          </xsd:sequence>
          <xsd:attribute name="partNum" type="xsd:string" use="required"/>
        </xsd:complexType>
      </xsd:element>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""

#: The evolution step of Sect. 3: a third alternative ``multAddr`` is
#: added to the choice group.  Under *synthesized* naming this renames
#: the group; under *inherited* naming all existing names survive.
PURCHASE_ORDER_CHOICE3_SCHEMA = PURCHASE_ORDER_CHOICE_SCHEMA.replace(
    '<xsd:element name="twoAddr" type="twoAddress"/>',
    '<xsd:element name="twoAddr" type="twoAddress"/>\n'
    '        <xsd:element name="multAddr" type="multAddress"/>',
).replace(
    '  <xsd:complexType name="twoAddress">',
    """\
  <xsd:complexType name="multAddress">
    <xsd:sequence>
      <xsd:element name="addr" type="USAddress" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="twoAddress">""",
)

#: The Sect. 3 "explicit naming" example: the address choice is pulled
#: into a named group definition ``AddressGroup``.
NAMED_GROUP_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>
  <xsd:element name="comment" type="xsd:string"/>

  <xsd:group name="AddressGroup">
    <xsd:choice>
      <xsd:element name="singAddr" type="USAddress"/>
      <xsd:element name="twoAddr" type="twoAddress"/>
    </xsd:choice>
  </xsd:group>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:group ref="AddressGroup"/>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="twoAddress">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" type="xsd:string" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""

#: The Address/USAddress type-extension example of Sect. 3 ("Xml Schema
#: introduces type extension for complex types ... reflected by
#: inheritance in V-DOM").
ADDRESS_EXTENSION_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="addressBook" type="AddressBook"/>

  <xsd:complexType name="Address">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:complexContent>
      <xsd:extension base="Address">
        <xsd:sequence>
          <xsd:element name="state" type="xsd:string"/>
          <xsd:element name="zip" type="xsd:string"/>
        </xsd:sequence>
      </xsd:extension>
    </xsd:complexContent>
  </xsd:complexType>

  <xsd:complexType name="AddressBook">
    <xsd:sequence>
      <xsd:element name="entry" type="Address" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""

#: The substitution-group example of Sect. 3: shipComment and
#: customerComment substitute for comment.
SUBSTITUTION_GROUP_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="notes" type="Notes"/>
  <xsd:element name="comment" type="xsd:string"/>
  <xsd:element name="shipComment" type="xsd:string"
               substitutionGroup="comment"/>
  <xsd:element name="customerComment" type="xsd:string"
               substitutionGroup="comment"/>

  <xsd:complexType name="Notes">
    <xsd:sequence>
      <xsd:element ref="comment" minOccurs="0" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""

#: An abstract-head variant: only substitution-group members may appear.
ABSTRACT_HEAD_SCHEMA = SUBSTITUTION_GROUP_SCHEMA.replace(
    '<xsd:element name="comment" type="xsd:string"/>',
    '<xsd:element name="comment" type="xsd:string" abstract="true"/>',
)

"""The purchase order language of the paper's Figures 1-3."""

#: Figure 1 — the purchase order instance document.
PURCHASE_ORDER_DOCUMENT = """\
<purchaseOrder orderDate="1999-10-20">
  <shipTo country="US">
    <name>Alice Smith</name>
    <street>123 Maple Street</street>
    <city>Mill Valley</city>
    <state>CA</state>
    <zip>90952</zip>
  </shipTo>
  <billTo country="US">
    <name>Robert Smith</name>
    <street>8 Oak Avenue</street>
    <city>Old Town</city>
    <state>PA</state>
    <zip>95819</zip>
  </billTo>
  <comment>Hurry, my lawn is going wild</comment>
  <items>
    <item partNum="872-AA">
      <productName>Lawnmower</productName>
      <quantity>1</quantity>
      <USPrice>148.95</USPrice>
      <comment>Confirm this is electric</comment>
    </item>
    <item partNum="926-AA">
      <productName>Baby Monitor</productName>
      <quantity>1</quantity>
      <USPrice>39.98</USPrice>
      <shipDate>1999-05-21</shipDate>
    </item>
  </items>
</purchaseOrder>
"""

#: Figures 2 and 3 — the purchase order schema (XML Schema Primer).
PURCHASE_ORDER_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">

  <xsd:annotation>
    <xsd:documentation xml:lang="en">
      Purchase order schema for Example.com.
      Copyright 2000 Example.com. All rights reserved.
    </xsd:documentation>
  </xsd:annotation>

  <xsd:element name="purchaseOrder" type="PurchaseOrderType"/>

  <xsd:element name="comment" type="xsd:string"/>

  <xsd:complexType name="PurchaseOrderType">
    <xsd:sequence>
      <xsd:element name="shipTo" type="USAddress"/>
      <xsd:element name="billTo" type="USAddress"/>
      <xsd:element ref="comment" minOccurs="0"/>
      <xsd:element name="items" type="Items"/>
    </xsd:sequence>
    <xsd:attribute name="orderDate" type="xsd:date"/>
  </xsd:complexType>

  <xsd:complexType name="USAddress">
    <xsd:sequence>
      <xsd:element name="name" type="xsd:string"/>
      <xsd:element name="street" type="xsd:string"/>
      <xsd:element name="city" type="xsd:string"/>
      <xsd:element name="state" type="xsd:string"/>
      <xsd:element name="zip" type="xsd:decimal"/>
    </xsd:sequence>
    <xsd:attribute name="country" type="xsd:NMTOKEN" fixed="US"/>
  </xsd:complexType>

  <xsd:complexType name="Items">
    <xsd:sequence>
      <xsd:element name="item" minOccurs="0" maxOccurs="unbounded">
        <xsd:complexType>
          <xsd:sequence>
            <xsd:element name="productName" type="xsd:string"/>
            <xsd:element name="quantity">
              <xsd:simpleType>
                <xsd:restriction base="xsd:positiveInteger">
                  <xsd:maxExclusive value="100"/>
                </xsd:restriction>
              </xsd:simpleType>
            </xsd:element>
            <xsd:element name="USPrice" type="xsd:decimal"/>
            <xsd:element ref="comment" minOccurs="0"/>
            <xsd:element name="shipDate" type="xsd:date" minOccurs="0"/>
          </xsd:sequence>
          <xsd:attribute name="partNum" type="SKU" use="required"/>
        </xsd:complexType>
      </xsd:element>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:simpleType name="SKU">
    <xsd:restriction base="xsd:string">
      <xsd:pattern value="\\d{3}-[A-Z]{2}"/>
    </xsd:restriction>
  </xsd:simpleType>

</xsd:schema>
"""

#: Schema-violating variants of Figure 1 with the reason each is invalid.
#: Used by the CLAIM-1 error-detection study.
PURCHASE_ORDER_INVALID_DOCUMENTS: dict[str, str] = {
    "wrong-element-order": PURCHASE_ORDER_DOCUMENT.replace(
        "  <comment>Hurry, my lawn is going wild</comment>\n  <items>",
        "  <items>",
    ).replace(
        "</items>\n",
        "</items>\n  <comment>Hurry, my lawn is going wild</comment>\n",
    ),
    "bad-quantity": PURCHASE_ORDER_DOCUMENT.replace(
        "<quantity>1</quantity>", "<quantity>100</quantity>", 1
    ),
    "bad-sku": PURCHASE_ORDER_DOCUMENT.replace("872-AA", "87-AA"),
    "bad-date": PURCHASE_ORDER_DOCUMENT.replace("1999-10-20", "late autumn"),
    "missing-required-attribute": PURCHASE_ORDER_DOCUMENT.replace(
        ' partNum="872-AA"', ""
    ),
    "wrong-country": PURCHASE_ORDER_DOCUMENT.replace(
        '<shipTo country="US">', '<shipTo country="DE">'
    ),
    "undeclared-element": PURCHASE_ORDER_DOCUMENT.replace(
        "<productName>Lawnmower</productName>",
        "<productName>Lawnmower</productName><color>red</color>",
    ),
    "missing-child": PURCHASE_ORDER_DOCUMENT.replace(
        "    <city>Mill Valley</city>\n", "", 1
    ),
    "text-in-element-content": PURCHASE_ORDER_DOCUMENT.replace(
        "<items>", "<items>loose text", 1
    ),
    "bad-price": PURCHASE_ORDER_DOCUMENT.replace("148.95", "expensive"),
}

#: The same language as a DTD — the prior-work baseline ([14]).  DTDs
#: cannot express the SKU pattern, the quantity bound, or the date type;
#: the benchmarks quantify that expressiveness gap.
PURCHASE_ORDER_DTD = """\
<!ELEMENT purchaseOrder (shipTo, billTo, comment?, items)>
<!ATTLIST purchaseOrder orderDate CDATA #IMPLIED>
<!ELEMENT shipTo (name, street, city, state, zip)>
<!ATTLIST shipTo country NMTOKEN #FIXED "US">
<!ELEMENT billTo (name, street, city, state, zip)>
<!ATTLIST billTo country NMTOKEN #FIXED "US">
<!ELEMENT comment (#PCDATA)>
<!ELEMENT items (item*)>
<!ELEMENT item (productName, quantity, USPrice, comment?, shipDate?)>
<!ATTLIST item partNum CDATA #REQUIRED>
<!ELEMENT productName (#PCDATA)>
<!ELEMENT quantity (#PCDATA)>
<!ELEMENT USPrice (#PCDATA)>
<!ELEMENT shipDate (#PCDATA)>
<!ELEMENT name (#PCDATA)>
<!ELEMENT street (#PCDATA)>
<!ELEMENT city (#PCDATA)>
<!ELEMENT state (#PCDATA)>
<!ELEMENT zip (#PCDATA)>
"""

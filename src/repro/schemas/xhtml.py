"""A small XHTML 1.0 subset schema.

HTML "is redefined as a special XML application" (the paper's Sect. 1
citing XHTML 1.0), which is what makes HTML generators a special class of
XML generators.  This subset covers the title/head/body shape of the
paper's Java-Server-Page example and enough inline/block structure for
the server-page baseline comparison.
"""

XHTML_SUBSET_SCHEMA = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:element name="html" type="HtmlType"/>

  <xsd:complexType name="HtmlType">
    <xsd:sequence>
      <xsd:element name="head" type="HeadType"/>
      <xsd:element name="body" type="BodyType"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="HeadType">
    <xsd:sequence>
      <xsd:element name="title" type="xsd:string"/>
      <xsd:element name="meta" type="MetaType" minOccurs="0"
                   maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="MetaType">
    <xsd:sequence/>
    <xsd:attribute name="name" type="xsd:NMTOKEN"/>
    <xsd:attribute name="content" type="xsd:string"/>
  </xsd:complexType>

  <xsd:complexType name="BodyType">
    <xsd:sequence>
      <xsd:choice minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="h1" type="InlineType"/>
        <xsd:element name="h2" type="InlineType"/>
        <xsd:element name="p" type="InlineType"/>
        <xsd:element name="ul" type="ListType"/>
        <xsd:element name="table" type="TableType"/>
      </xsd:choice>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="InlineType" mixed="true">
    <xsd:sequence>
      <xsd:choice minOccurs="0" maxOccurs="unbounded">
        <xsd:element name="b" type="InlineType"/>
        <xsd:element name="i" type="InlineType"/>
        <xsd:element name="a" type="LinkType"/>
        <xsd:element name="br" type="EmptyType"/>
      </xsd:choice>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="LinkType" mixed="true">
    <xsd:sequence/>
    <xsd:attribute name="href" type="xsd:anyURI" use="required"/>
  </xsd:complexType>

  <xsd:complexType name="EmptyType">
    <xsd:sequence/>
  </xsd:complexType>

  <xsd:complexType name="ListType">
    <xsd:sequence>
      <xsd:element name="li" type="InlineType" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="TableType">
    <xsd:sequence>
      <xsd:element name="tr" type="RowType" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>

  <xsd:complexType name="RowType">
    <xsd:sequence>
      <xsd:element name="td" type="InlineType" maxOccurs="unbounded"/>
    </xsd:sequence>
  </xsd:complexType>
</xsd:schema>
"""

"""Bundled schema and document sources used throughout the reproduction.

Everything here is transcribed from the paper (or built to exercise the
exact constructs its sections discuss):

* :data:`PURCHASE_ORDER_SCHEMA` / :data:`PURCHASE_ORDER_DOCUMENT` —
  Figures 2–3 and Figure 1,
* :data:`PURCHASE_ORDER_CHOICE_SCHEMA` — the Sect. 3 variant whose
  ``PurchaseOrderType`` starts with a ``singAddr | twoAddr`` choice,
* :data:`PURCHASE_ORDER_CHOICE3_SCHEMA` — the same after the evolution
  step that adds the ``multAddr`` alternative,
* :data:`ADDRESS_EXTENSION_SCHEMA` — the ``Address``/``USAddress`` type
  extension example,
* :data:`SUBSTITUTION_GROUP_SCHEMA` — the ``shipComment`` /
  ``customerComment`` substitution-group example,
* :data:`WML_SCHEMA` — a WML 1.3 subset covering the Sect. 5 example,
* :data:`PURCHASE_ORDER_DTD` — a DTD rendering of the purchase order
  language for the prior-work baseline.
"""

from repro.schemas.purchase_order import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_DTD,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
    PURCHASE_ORDER_SCHEMA,
)
from repro.schemas.variants import (
    ADDRESS_EXTENSION_SCHEMA,
    NAMED_GROUP_SCHEMA,
    PURCHASE_ORDER_CHOICE3_SCHEMA,
    PURCHASE_ORDER_CHOICE_SCHEMA,
    SUBSTITUTION_GROUP_SCHEMA,
)
from repro.schemas.wml import WML_DIRECTORY_DOCUMENT, WML_SCHEMA
from repro.schemas.xhtml import XHTML_SUBSET_SCHEMA

__all__ = [
    "ADDRESS_EXTENSION_SCHEMA",
    "NAMED_GROUP_SCHEMA",
    "PURCHASE_ORDER_CHOICE3_SCHEMA",
    "PURCHASE_ORDER_CHOICE_SCHEMA",
    "PURCHASE_ORDER_DOCUMENT",
    "PURCHASE_ORDER_DTD",
    "PURCHASE_ORDER_INVALID_DOCUMENTS",
    "PURCHASE_ORDER_SCHEMA",
    "SUBSTITUTION_GROUP_SCHEMA",
    "WML_DIRECTORY_DOCUMENT",
    "WML_SCHEMA",
    "XHTML_SUBSET_SCHEMA",
]

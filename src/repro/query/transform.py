"""Typed query-to-document transforms (the full Sect. 8 vision).

The paper's outlook: "a query which is applied to appropriate
VDOM-objects can be guaranteed to result only in documents which are
valid according to an underlying Xml schema."  A
:class:`TypedTransform` wires a compiled :class:`~repro.query.Query`
into a P-XML :class:`~repro.pxml.Template` hole — and checks **at
definition time** that the query's statically known result type is
acceptable for that hole.  A transform that constructs is a proof:
whatever it produces, over whatever input document, is valid.
"""

from __future__ import annotations

from typing import Any

from repro.errors import QueryError
from repro.core.vdom import Binding, TypedElement
from repro.pxml.checker import HoleSpec
from repro.pxml.template import Template
from repro.query.path import Query


class TypedTransform:
    """Render a template once per query result, statically type-checked.

    ::

        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(po_binding, "purchaseOrder", "items/item/productName"),
            template="<option value='x'>$hit:text$</option>",
            hole="hit",
            extract=lambda element: element.text_content,
        )
        options = transform.apply(purchase_order)   # list of valid <option>s

    For element holes (``extract`` omitted), the query's result classes
    must all be acceptable for the hole — checked here, not when some
    document flows through.
    """

    def __init__(
        self,
        binding_out: Binding,
        query: Query,
        template: Template | str,
        hole: str,
        extract=None,
    ):
        self.query = query
        self.template = (
            template
            if isinstance(template, Template)
            else Template(binding_out, template)
        )
        self.hole = hole
        self.extract = extract
        spec = self.template.checked.holes.get(hole)
        if spec is None:
            raise QueryError(
                f"template has no hole named '{hole}' "
                f"(holes: {', '.join(self.template.hole_names) or 'none'})"
            )
        self._check_compatibility(spec)

    def _check_compatibility(self, spec: HoleSpec) -> None:
        if spec.kind == "text":
            if self.extract is None:
                # Text holes receive element text content by default.
                self.extract = lambda element: element.text_content
            return
        if self.extract is not None:
            raise QueryError(
                "an element hole cannot take an extract function; the "
                "query results are inserted directly"
            )
        result_classes = self.query.result_classes
        if not result_classes:
            raise QueryError(
                "the query's result type has no generated classes; "
                "it cannot feed an element hole"
            )
        for result_class in result_classes:
            if not issubclass(result_class, spec.classes):
                allowed = ", ".join(cls.__name__ for cls in spec.classes)
                raise QueryError(
                    f"query can yield {result_class.__name__}, but hole "
                    f"'{self.hole}' only accepts {allowed} — the transform "
                    "could emit an invalid document, rejected statically"
                )

    def apply(
        self, root: TypedElement, **other_holes: Any
    ) -> list[TypedElement]:
        """Run the query on *root*, render one fragment per hit."""
        results = []
        for hit in self.query.apply(root):
            value = self.extract(hit) if self.extract is not None else hit
            results.append(
                self.template.render(**{self.hole: value, **other_holes})
            )
        return results


def transform(
    binding_out: Binding,
    query: Query,
    template: str,
    hole: str,
    extract=None,
) -> TypedTransform:
    """Convenience constructor mirroring :class:`TypedTransform`."""
    return TypedTransform(binding_out, query, template, hole, extract)

"""Typed query-to-document transforms (the full Sect. 8 vision).

The paper's outlook: "a query which is applied to appropriate
VDOM-objects can be guaranteed to result only in documents which are
valid according to an underlying Xml schema."  This module carries that
guarantee in two sizes:

* :class:`TypedTransform` wires one compiled
  :class:`~repro.query.Query` into one P-XML
  :class:`~repro.pxml.Template` hole — and checks **at definition time**
  that the query's statically known result type is acceptable for that
  hole.
* :class:`TransformProgram` is the top-down generalization: an ordered
  set of ``(query → template/hole)`` :class:`Rule`\\ s applied over a
  V-DOM tree.  Every rule is checked at definition time against *both*
  schemas — the query side against the input schema (impossible paths
  are :class:`~repro.errors.QueryError`\\ s before any document exists)
  and the hole side against the output schema (the template checker plus
  the result-class/hole compatibility proof).  A program that constructs
  is a proof: whatever it emits, over whatever input document, is valid.

Both carry a **segment route**: ``apply_text`` renders each query hit
straight to final markup through the PR 2 segment machinery
(``Template.render_text``), skipping the intermediate ``TypedElement``
tree, byte-identical to ``serialize(render(...))``; templates whose
shape the segment compiler declines transparently take the DOM route,
counted per hit in ``repro.obs`` (``query.transform{route=...}``).
"""

from __future__ import annotations

from typing import Any, Callable

from repro import obs
from repro.errors import QueryError
from repro.core.vdom import Binding, TypedElement
from repro.dom.serialize import serialize
from repro.pxml.checker import HoleSpec
from repro.pxml.template import Template
from repro.query.path import Query


def _render_hit_text(template: Template, values: dict[str, Any]) -> str:
    """One hit to markup text, counting which route served it.

    ``render_text`` is byte-identical to ``serialize(render(...))`` by
    the PR 2 contract whichever route it takes internally; the counter
    records whether the segment machinery (compiled function or
    interpreted program) did the work or the hit fell back to building
    a DOM tree.
    """
    if template._render_text is not None or template._segments is not None:
        obs.count("query.transform", route="segment")
    else:
        obs.count("query.transform", route="dom", reason="no-segment-program")
    return template.render_text(**values)


class TypedTransform:
    """Render a template once per query result, statically type-checked.

    ::

        transform = TypedTransform(
            binding_out=wml_binding,
            query=Query(po_binding, "purchaseOrder", "items/item/productName"),
            template="<option value='x'>$hit:text$</option>",
            hole="hit",
            extract=lambda element: element.text_content,
        )
        options = transform.apply(purchase_order)   # list of valid <option>s

    For element holes (``extract`` omitted), the query's result classes
    must all be acceptable for the hole — checked here, not when some
    document flows through.  Attribute-value queries (``.../@name``)
    yield strings and feed text holes directly.
    """

    def __init__(
        self,
        binding_out: Binding,
        query: Query,
        template: Template | str,
        hole: str,
        extract: Callable[[Any], Any] | None = None,
        cache: Any = None,
    ):
        self.query = query
        self.template = (
            template
            if isinstance(template, Template)
            else Template(binding_out, template, cache=cache)
        )
        self.hole = hole
        self.extract = extract
        spec = self.template.checked_holes().get(hole)
        if spec is None:
            raise QueryError(
                f"template has no hole named '{hole}' "
                f"(holes: {', '.join(self.template.hole_names) or 'none'})"
            )
        self._check_compatibility(spec)

    def _check_compatibility(self, spec: HoleSpec) -> None:
        if spec.kind == "text":
            if self.extract is None:
                if self.query.result_kind == "attribute-values":
                    # Attribute-value hits are already strings.
                    self.extract = lambda value: value
                else:
                    # Text holes receive element text content by default.
                    self.extract = lambda element: element.text_content
            return
        if self.extract is not None:
            raise QueryError(
                "an element hole cannot take an extract function; the "
                "query results are inserted directly"
            )
        if self.query.result_kind == "attribute-values":
            raise QueryError(
                f"hole '{self.hole}' is an element hole, but the query "
                "selects attribute values (strings) — rejected statically"
            )
        result_classes = self.query.result_classes
        if not result_classes:
            raise QueryError(
                "the query's result type has no generated classes; "
                "it cannot feed an element hole"
            )
        for result_class in result_classes:
            if not issubclass(result_class, spec.classes):
                allowed = ", ".join(cls.__name__ for cls in spec.classes)
                raise QueryError(
                    f"query can yield {result_class.__name__}, but hole "
                    f"'{self.hole}' only accepts {allowed} — the transform "
                    "could emit an invalid document, rejected statically"
                )

    def _hole_values(self, hit: Any, other_holes: dict[str, Any]):
        value = self.extract(hit) if self.extract is not None else hit
        return {self.hole: value, **other_holes}

    def apply(
        self, root: TypedElement, **other_holes: Any
    ) -> list[TypedElement]:
        """Run the query on *root*, render one fragment per hit."""
        return [
            self.template.render(**self._hole_values(hit, other_holes))
            for hit in self.query.apply(root)
        ]

    def apply_text(self, root: TypedElement, **other_holes: Any) -> list[str]:
        """Run the query on *root*, emit final markup text per hit.

        Byte-identical to ``[serialize(fragment) for fragment in
        apply(root, ...)]``, but each hit goes through the segment
        pipeline when the template compiled one — no intermediate
        ``TypedElement`` tree is built (and, unlike the DOM route,
        element-hole hits are *not* adopted out of the source tree).
        """
        return [
            _render_hit_text(
                self.template, self._hole_values(hit, other_holes)
            )
            for hit in self.query.apply(root)
        ]


class Rule:
    """One ``(query → template/hole)`` rule of a transform program.

    *path* is compiled against the program's input schema from its root
    element; *template* (source text or a prebuilt
    :class:`~repro.pxml.Template`) is checked against the output schema;
    *hole* names the slot each query hit fills.  ``extract`` maps a hit
    to the hole value (defaults: identity for attribute-value queries,
    ``text_content`` for text holes, the hit element itself for element
    holes).
    """

    __slots__ = ("path", "template", "hole", "extract", "label")

    def __init__(
        self,
        path: str,
        template: Template | str,
        hole: str,
        extract: Callable[[Any], Any] | None = None,
        label: str | None = None,
    ):
        self.path = path
        self.template = template
        self.hole = hole
        self.extract = extract
        self.label = label


class TransformProgram:
    """An ordered set of rules, each a typed query feeding a typed hole.

    Applying the program to an input tree runs every rule's query
    (top-down from the program's root) and renders one output fragment
    per hit, in rule order then document order — the XML→XML view /
    database-style projection workload.  Construction fails with a
    :class:`~repro.errors.QueryError` naming the offending rule if any
    query is impossible under the input schema or any hole would accept
    a result type the output schema forbids; a program that exists
    cannot emit an invalid fragment.
    """

    def __init__(
        self,
        binding_in: Binding,
        binding_out: Binding,
        root_element: str,
        rules: list[Rule],
        cache: Any = None,
    ):
        if not rules:
            raise QueryError("a transform program needs at least one rule")
        self.binding_in = binding_in
        self.binding_out = binding_out
        self.root_element = root_element
        self.rules: list[tuple[str, TypedTransform]] = []
        for position, rule in enumerate(rules, 1):
            label = rule.label or f"rule {position}"
            try:
                query = Query(binding_in, root_element, rule.path)
                compiled = TypedTransform(
                    binding_out,
                    query,
                    rule.template,
                    rule.hole,
                    rule.extract,
                    cache=cache,
                )
            except QueryError as error:
                raise QueryError(f"{label} ({rule.path!r}): {error}")
            self.rules.append((label, compiled))

    @property
    def rule_labels(self) -> list[str]:
        return [label for label, _ in self.rules]

    def result_classes(self) -> tuple[type, ...]:
        """Statically known union of every rule's output root class."""
        classes: dict[type, None] = {}
        for _, compiled in self.rules:
            root_class = compiled.template.checked_root_class()
            if root_class is not None:
                classes[root_class] = None
        return tuple(classes)

    def apply(
        self, root: TypedElement, **other_holes: Any
    ) -> list[TypedElement]:
        """DOM route: one typed (valid) fragment per hit, rule order."""
        fragments: list[TypedElement] = []
        for _, compiled in self.rules:
            fragments.extend(compiled.apply(root, **other_holes))
        return fragments

    def apply_text(self, root: TypedElement, **other_holes: Any) -> list[str]:
        """Segment route: final markup text per hit, rule order.

        Byte-identical per hit to serializing :meth:`apply`'s fragments;
        hits whose template has no segment program transparently take
        the DOM route (counted in ``query.transform{route=dom}``).
        """
        pieces: list[str] = []
        for _, compiled in self.rules:
            pieces.extend(compiled.apply_text(root, **other_holes))
        return pieces

    def transform_text(
        self, root: TypedElement, separator: str = "", **other_holes: Any
    ) -> str:
        """The :meth:`apply_text` pieces joined into one string."""
        return separator.join(self.apply_text(root, **other_holes))

    def __repr__(self) -> str:
        return (
            f"TransformProgram(<{self.root_element}>, "
            f"{len(self.rules)} rule(s))"
        )


def transform(
    binding_out: Binding,
    query: Query,
    template: str,
    hole: str,
    extract: Callable[[Any], Any] | None = None,
) -> TypedTransform:
    """Convenience constructor mirroring :class:`TypedTransform`."""
    return TypedTransform(binding_out, query, template, hole, extract)

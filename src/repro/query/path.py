"""Schema-typed path queries.

Grammar (an XPath-flavoured subset)::

    path      ::= step (('/' | '//') step)*
    step      ::= test predicate* | '@' name
    test      ::= name | '*' | '(' name ('|' name)+ ')'
    predicate ::= '[' digits ']'                   positional (1-based)
                | '[@' name '=' value ']'          attribute equality
                | '[' name '=' value ']'           child-text equality
    value     ::= "'" text "'" | '"' text '"'      entity refs allowed

``//`` before a step selects on the **descendant** axis (every proper
descendant, document order) instead of the child axis; a leading ``//``
searches the whole tree below the root.  A parenthesized **union test**
matches any of its names in one step, and a final ``@name`` step selects
attribute *values* (strings) off the elements reached so far.  Predicate
values may use either quote and XML entity references (``&apos;``,
``&quot;``, ``&amp;``, …), so any string is expressible.

Compilation walks the schema in parallel with the path: at each step the
set of element declarations that could be current is advanced through
the content models; an impossible step raises
:class:`~repro.errors.QueryError` *at compile time*, and
``Query.result_classes`` exposes the statically known result type(s) —
the "typed query language" the paper sketches.  Impossibility includes
predicates no instance could ever satisfy: ``[0]`` (positions are
1-based) and positions provably above what the content model's
``maxOccurs`` bounds allow are definition-time errors, not silent empty
result sets.

Chained predicates follow XPath semantics: each predicate filters the
survivors of the one before it, and positional predicates are numbered
over those survivors — ``item[@partNum='926-AA'][1]`` is the first item
*after* the attribute filter, not an item that is both first and
matching.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro import obs
from repro.errors import QueryError, XmlSyntaxError
from repro.xml.entities import unescape
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ElementDeclaration,
    GroupReference,
    ModelGroup,
    Particle,
)
from repro.automata.rex import UNBOUNDED
from repro.core.vdom import Binding, TypedElement

_INFINITY = float("inf")

_PREDICATE_RE = re.compile(
    r"\[(?:(?P<index>\d+)"
    r"|@(?P<attr>[\w.-]+)=(?P<attr_quote>['\"])"
    r"(?P<attr_value>.*?)(?P=attr_quote)"
    r"|(?P<child>[\w.-]+)=(?P<child_quote>['\"])"
    r"(?P<child_value>.*?)(?P=child_quote))\]"
)

_TEST_RE = re.compile(
    r"(?P<attribute>@[\w.-]+)"
    r"|(?P<union>\([\w.-]+(?:\|[\w.-]+)+\))"
    r"|(?P<name>\*|[\w.-]+)"
)


@dataclass
class Predicate:
    kind: str  # 'index' | 'attr' | 'child'
    name: str | None = None
    value: str | None = None
    index: int | None = None

    def matches(self, element: TypedElement, position: int) -> bool:
        if self.kind == "index":
            return position == self.index
        if self.kind == "attr":
            assert self.name is not None
            return (
                element.has_attribute(self.name)
                and element.get_attribute(self.name) == self.value
            )
        assert self.name is not None
        for child in element.child_elements():
            if child.tag_name == self.name and child.text_content == self.value:
                return True
        return False


@dataclass
class Step:
    #: element name test: ``()`` means wildcard ``*``; unions carry
    #: every alternative.  Empty for attribute steps.
    names: tuple[str, ...] = ()
    #: 'child' or 'descendant' (the step was introduced by ``//``)
    axis: str = "child"
    #: set for a final ``@name`` step selecting attribute values
    attribute: str | None = None
    predicates: list[Predicate] = field(default_factory=list)

    def matches_name(self, tag_name: str) -> bool:
        return not self.names or tag_name in self.names

    def describe(self) -> str:
        if self.attribute is not None:
            return f"@{self.attribute}"
        if not self.names:
            return "*"
        if len(self.names) == 1:
            return self.names[0]
        return "(" + "|".join(self.names) + ")"


class Query:
    """A compiled, schema-typed path query."""

    def __init__(
        self,
        binding: Binding,
        root_element: str,
        path: str,
        root_declaration: ElementDeclaration | None = None,
    ):
        self.binding = binding
        self.path = path
        self.steps = _parse_path(path)
        if root_declaration is None:
            root_declaration = binding.schema.elements.get(root_element)
            if root_declaration is None:
                raise QueryError(
                    f"'{root_element}' is not a global element of the schema"
                )
        self.root_element = root_element
        self.root_declaration = root_declaration
        #: ``@name`` of the final step when the query selects attribute
        #: values instead of elements, else ``None``
        self.result_attribute = (
            self.steps[-1].attribute if self.steps else None
        )
        #: statically derived: the declarations a result can have (for
        #: attribute-value queries: the declarations owning the attribute)
        self.result_declarations = self._type_check(root_declaration)
        obs.count("query.compile", kind=self.result_kind)

    @property
    def result_kind(self) -> str:
        """``'elements'`` or ``'attribute-values'`` (final ``@name`` step)."""
        return "attribute-values" if self.result_attribute else "elements"

    @property
    def result_classes(self) -> tuple[type, ...]:
        """Generated classes the query can yield (static result type).

        Empty for attribute-value queries — their results are strings,
        statically known not to be elements.
        """
        if self.result_attribute is not None:
            return ()
        classes = []
        for declaration in self.result_declarations:
            cls = self.binding.class_by_declaration.get(id(declaration))
            if cls is not None:
                classes.append(cls)
        return tuple(classes)

    # -- static typing ------------------------------------------------------------

    def _type_check(
        self, root: ElementDeclaration
    ) -> tuple[ElementDeclaration, ...]:
        declarations: dict[int, ElementDeclaration] = {id(root): root}
        for step in self.steps:
            if step.attribute is not None:
                self._check_attribute_step(step, declarations.values())
                continue
            next_declarations: dict[int, ElementDeclaration] = {}
            if step.axis == "descendant":
                candidates = self._descendant_declarations(
                    declarations.values()
                )
            else:
                candidates = []
                for declaration in declarations.values():
                    candidates.extend(self._child_declarations(declaration))
            for child in candidates:
                if step.matches_name(child.name):
                    next_declarations[id(child)] = child
            if not next_declarations:
                raise QueryError(
                    f"step '{step.describe()}' of '{self.path}' matches "
                    f"nothing: the schema allows no such "
                    f"{'descendant' if step.axis == 'descendant' else 'child'}"
                    f" there"
                )
            self._check_predicates(step, next_declarations.values())
            if step.axis == "child":
                self._check_positions(step, declarations.values())
            declarations = next_declarations
        return tuple(declarations.values())

    def _check_attribute_step(self, step: Step, declarations) -> None:
        name = step.attribute
        assert name is not None
        known = False
        for declaration in declarations:
            type_definition = declaration.resolved_type()
            if isinstance(type_definition, ComplexType) and (
                type_definition is ANY_TYPE
                or name in type_definition.effective_attribute_uses()
            ):
                known = True
        if not known:
            raise QueryError(
                f"step '@{name}' of '{self.path}' selects an attribute "
                "the schema never declares there"
            )

    def _check_predicates(self, step: Step, declarations) -> None:
        for predicate in step.predicates:
            if predicate.kind == "attr":
                assert predicate.name is not None
                known = False
                for declaration in declarations:
                    type_definition = declaration.resolved_type()
                    if isinstance(type_definition, ComplexType) and (
                        predicate.name
                        in type_definition.effective_attribute_uses()
                    ):
                        known = True
                if not known:
                    raise QueryError(
                        f"predicate [@{predicate.name}=...] of '{self.path}' "
                        "tests an attribute the schema never declares there"
                    )
            elif predicate.kind == "child":
                assert predicate.name is not None
                known = any(
                    predicate.name
                    in {c.name for c in self._child_declarations(d)}
                    for d in declarations
                )
                if not known:
                    raise QueryError(
                        f"predicate [{predicate.name}=...] of '{self.path}' "
                        "tests a child the schema never declares there"
                    )

    def _check_positions(self, step: Step, parents) -> None:
        """Reject positional predicates provably above ``maxOccurs``.

        The bound is the maximum number of *step*-matching children any
        instance of a parent declaration can carry, computed over the
        particle tree (occurrence factors multiply; choices take the
        best branch).  Filter predicates only ever shrink the candidate
        list, so a position above the raw bound stays unreachable no
        matter what precedes it.  Descendant steps are exempt — their
        counts compound across arbitrary depth.
        """
        indexes = [
            predicate.index
            for predicate in step.predicates
            if predicate.kind == "index"
        ]
        if not indexes:
            return
        bound = 0.0
        for parent in parents:
            bound = max(bound, self._occurrence_bound(parent, step))
            if bound == _INFINITY:
                return
        for index in indexes:
            if index > bound:
                raise QueryError(
                    f"positional predicate [{index}] of '{self.path}' can "
                    f"never match: the schema allows at most "
                    f"{int(bound)} occurrence(s) of "
                    f"'{step.describe()}' there"
                )

    def _occurrence_bound(
        self, declaration: ElementDeclaration, step: Step
    ) -> float:
        type_definition = declaration.resolved_type()
        if not isinstance(type_definition, ComplexType):
            return 0
        if type_definition is ANY_TYPE:
            return _INFINITY
        content = type_definition.effective_content()
        if content is None:
            return 0
        return self._particle_bound(content, step)

    def _particle_bound(self, particle: Particle, step: Step) -> float:
        term = particle.term
        if isinstance(term, ElementDeclaration):
            canonical = (
                self.binding.schema.elements.get(term.name, term)
                if term.is_global
                else term
            )
            alternatives = self.binding.schema.substitution_alternatives(
                canonical
            )
            inner: float = (
                1.0
                if any(
                    step.matches_name(alt.name)
                    for alt in (alternatives or [term])
                )
                else 0.0
            )
        elif isinstance(term, GroupReference):
            inner = self._particle_bound(Particle(term.resolved()), step)
        elif isinstance(term, ModelGroup):
            bounds = [
                self._particle_bound(child, step) for child in term.particles
            ]
            if term.compositor.value == "choice":
                inner = max(bounds, default=0.0)
            else:  # sequence / all
                inner = sum(bounds)
        else:  # pragma: no cover - exhaustive over particle terms
            inner = 0.0
        if inner == 0.0:
            return 0.0
        if particle.max_occurs == UNBOUNDED:
            return _INFINITY
        return inner * particle.max_occurs

    def _child_declarations(
        self, declaration: ElementDeclaration
    ) -> list[ElementDeclaration]:
        type_definition = declaration.resolved_type()
        if not isinstance(type_definition, ComplexType):
            return []
        if type_definition is ANY_TYPE:
            return list(self.binding.schema.elements.values())
        content = type_definition.effective_content()
        if content is None:
            return []
        found: list[ElementDeclaration] = []
        self._collect(content, found)
        expanded: list[ElementDeclaration] = []
        for child in found:
            canonical = (
                self.binding.schema.elements.get(child.name, child)
                if child.is_global
                else child
            )
            expanded.extend(
                self.binding.schema.substitution_alternatives(canonical)
            )
        return expanded

    def _descendant_declarations(self, roots) -> list[ElementDeclaration]:
        """Every declaration reachable below *roots* (closure, any depth)."""
        seen: dict[int, ElementDeclaration] = {}
        worklist = list(roots)
        while worklist:
            declaration = worklist.pop()
            for child in self._child_declarations(declaration):
                if id(child) not in seen:
                    seen[id(child)] = child
                    worklist.append(child)
        return list(seen.values())

    def _collect(
        self, particle: Particle, sink: list[ElementDeclaration]
    ) -> None:
        term = particle.term
        if isinstance(term, ElementDeclaration):
            sink.append(term)
        elif isinstance(term, GroupReference):
            self._collect(Particle(term.resolved()), sink)
        elif isinstance(term, ModelGroup):
            for child in term.particles:
                self._collect(child, sink)

    # -- application ------------------------------------------------------------------

    def apply(
        self, element: TypedElement
    ) -> list[TypedElement] | list[str]:
        """Run the query; *element* must be the root the query was
        compiled for.  Attribute-value queries return strings."""
        if element.tag_name != self.root_element:
            raise QueryError(
                f"query was compiled for <{self.root_element}>, applied "
                f"to <{element.tag_name}>"
            )
        expected_class = self.binding.class_by_declaration.get(
            id(self.root_declaration)
        )
        if expected_class is not None and not isinstance(
            element, expected_class
        ):
            raise QueryError(
                f"query was compiled for <{self.root_element}>, applied "
                f"to an element built for a different declaration of "
                f"that name"
            )
        current: list[TypedElement] = [element]
        for step in self.steps:
            if step.attribute is not None:
                return [
                    node.get_attribute(step.attribute)
                    for node in current
                    if node.has_attribute(step.attribute)
                ]
            matched: list[TypedElement] = []
            for node in current:
                candidates = [
                    child
                    for child in self._axis_nodes(node, step)
                    if step.matches_name(child.tag_name)
                    and isinstance(child, TypedElement)
                ]
                # XPath semantics: predicates apply left-to-right, and a
                # positional predicate is numbered over the survivors of
                # the predicates before it — not the raw sibling index.
                for predicate in step.predicates:
                    candidates = [
                        child
                        for position, child in enumerate(candidates, 1)
                        if predicate.matches(child, position)
                    ]
                matched.extend(candidates)
            current = matched
        return current

    @staticmethod
    def _axis_nodes(node: TypedElement, step: Step):
        if step.axis == "child":
            return node.child_elements()
        # descendant axis: proper descendants, document order
        found = []
        stack = list(reversed(node.child_elements()))
        while stack:
            child = stack.pop()
            found.append(child)
            stack.extend(reversed(child.child_elements()))
        return found

    def __repr__(self) -> str:
        if self.result_attribute is not None:
            return f"Query({self.path!r} -> [str])"
        names = ", ".join(cls.__name__ for cls in self.result_classes)
        return f"Query({self.path!r} -> [{names}])"


def select(
    element: TypedElement, path: str
) -> list[TypedElement] | list[str]:
    """Compile-and-run convenience over a typed element.

    Works from *any* typed element, not just document roots: the start
    declaration is resolved through the element's own generated class
    (``select(order.items, "item")``), falling back to the schema's
    global element map for untyped starts.
    """
    binding = type(element)._BINDING
    declaration = getattr(type(element), "_DECLARATION", None)
    query = Query(
        binding, element.tag_name, path, root_declaration=declaration
    )
    return query.apply(element)


def _unescape_value(raw: str, path: str) -> str:
    if "&" not in raw:
        return raw
    try:
        return unescape(raw)
    except XmlSyntaxError as error:
        raise QueryError(
            f"bad predicate value in '{path}': {error.message}"
        )


def _split_steps(path: str) -> list[tuple[str, str]]:
    """``[(axis, token)]`` — '//' marks the following step as descendant."""
    tokens = path.split("/")
    steps: list[tuple[str, str]] = []
    axis = "child"
    for position, token in enumerate(tokens):
        if token == "":
            if axis == "descendant" or position == len(tokens) - 1:
                raise QueryError(f"empty step in path '{path}'")
            if position == 0:
                # A leading '//' arrives as two empty tokens; a single
                # leading '/' (absolute path) is rejected below when no
                # second empty token follows.
                if len(tokens) < 2 or tokens[1] != "":
                    raise QueryError(
                        f"path '{path}' must be relative "
                        f"(start with a step or '//')"
                    )
                continue
            axis = "descendant"
            continue
        steps.append((axis, token))
        axis = "child"
    return steps


def _parse_path(path: str) -> list[Step]:
    if not path:
        raise QueryError(f"path '{path}' must be relative (start with a step)")
    raw_steps = _split_steps(path)
    if not raw_steps:
        raise QueryError(f"empty step in path '{path}'")
    steps: list[Step] = []
    for axis, raw in raw_steps:
        match = _TEST_RE.match(raw)
        if not match:
            raise QueryError(f"bad step '{raw}' in path '{path}'")
        if match.group("attribute"):
            step = Step(axis=axis, attribute=match.group("attribute")[1:])
            if axis == "descendant":
                raise QueryError(
                    f"attribute step '@{step.attribute}' of '{path}' "
                    "cannot use the descendant axis"
                )
        elif match.group("union"):
            names = tuple(match.group("union")[1:-1].split("|"))
            step = Step(axis=axis, names=names)
        else:
            name = match.group("name")
            step = Step(axis=axis, names=() if name == "*" else (name,))
        rest = raw[match.end():]
        while rest:
            if step.attribute is not None:
                raise QueryError(
                    f"attribute step '@{step.attribute}' of '{path}' "
                    "cannot carry predicates"
                )
            predicate_match = _PREDICATE_RE.match(rest)
            if not predicate_match:
                raise QueryError(f"bad predicate '{rest}' in path '{path}'")
            groups = predicate_match.groupdict()
            if groups["index"]:
                index = int(groups["index"])
                if index == 0:
                    raise QueryError(
                        f"positional predicate [0] of '{path}' can never "
                        "match: positions are 1-based"
                    )
                step.predicates.append(Predicate("index", index=index))
            elif groups["attr"]:
                step.predicates.append(
                    Predicate(
                        "attr",
                        name=groups["attr"],
                        value=_unescape_value(groups["attr_value"], path),
                    )
                )
            else:
                step.predicates.append(
                    Predicate(
                        "child",
                        name=groups["child"],
                        value=_unescape_value(groups["child_value"], path),
                    )
                )
            rest = rest[predicate_match.end():]
        steps.append(step)
    if any(
        step.attribute is not None for step in steps[:-1]
    ):
        raise QueryError(
            f"attribute step of '{path}' must be the final step"
        )
    return steps

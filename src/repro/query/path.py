"""Schema-typed path queries.

Grammar (an XPath-flavoured subset)::

    path      ::= step ('/' step)*
    step      ::= name | '*' | name predicate*
    predicate ::= '[' digits ']'                 positional (1-based)
                | '[@' name '=' "'" text "'" ']'  attribute equality
                | '[' name '=' "'" text "'" ']'   child-text equality

Compilation walks the schema in parallel with the path: at each step the
set of element declarations that could be current is advanced through
the content models; an impossible step raises
:class:`~repro.errors.QueryError` *at compile time*, and
``Query.result_classes`` exposes the statically known result type(s) —
the "typed query language" the paper sketches.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import QueryError
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ElementDeclaration,
    GroupReference,
    ModelGroup,
    Particle,
)
from repro.core.vdom import Binding, TypedElement

_PREDICATE_RE = re.compile(
    r"\[(?:(?P<index>\d+)"
    r"|@(?P<attr>[\w.-]+)=\'(?P<attr_value>[^\']*)\'"
    r"|(?P<child>[\w.-]+)=\'(?P<child_value>[^\']*)\')\]"
)


@dataclass
class Predicate:
    kind: str  # 'index' | 'attr' | 'child'
    name: str | None = None
    value: str | None = None
    index: int | None = None

    def matches(self, element: TypedElement, position: int) -> bool:
        if self.kind == "index":
            return position == self.index
        if self.kind == "attr":
            assert self.name is not None
            return (
                element.has_attribute(self.name)
                and element.get_attribute(self.name) == self.value
            )
        assert self.name is not None
        for child in element.child_elements():
            if child.tag_name == self.name and child.text_content == self.value:
                return True
        return False


@dataclass
class Step:
    name: str  # '*' = any
    predicates: list[Predicate] = field(default_factory=list)


class Query:
    """A compiled, schema-typed path query."""

    def __init__(self, binding: Binding, root_element: str, path: str):
        self.binding = binding
        self.path = path
        self.steps = _parse_path(path)
        root_declaration = binding.schema.elements.get(root_element)
        if root_declaration is None:
            raise QueryError(
                f"'{root_element}' is not a global element of the schema"
            )
        self.root_element = root_element
        #: statically derived: the declarations a result can have
        self.result_declarations = self._type_check(root_declaration)

    @property
    def result_classes(self) -> tuple[type, ...]:
        """Generated classes the query can yield (static result type)."""
        classes = []
        for declaration in self.result_declarations:
            cls = self.binding.class_by_declaration.get(id(declaration))
            if cls is not None:
                classes.append(cls)
        return tuple(classes)

    # -- static typing ------------------------------------------------------------

    def _type_check(
        self, root: ElementDeclaration
    ) -> tuple[ElementDeclaration, ...]:
        current: set[int] = {id(root)}
        declarations: dict[int, ElementDeclaration] = {id(root): root}
        for step in self.steps:
            next_declarations: dict[int, ElementDeclaration] = {}
            for key in current:
                declaration = declarations[key]
                for child in self._child_declarations(declaration):
                    if step.name in ("*", child.name):
                        next_declarations[id(child)] = child
            if not next_declarations:
                raise QueryError(
                    f"step '{step.name}' of '{self.path}' matches nothing: "
                    f"the schema allows no such child there"
                )
            self._check_predicates(step, next_declarations.values())
            declarations = next_declarations
            current = set(next_declarations)
        return tuple(declarations.values())

    def _check_predicates(self, step: Step, declarations) -> None:
        for predicate in step.predicates:
            if predicate.kind == "attr":
                assert predicate.name is not None
                known = False
                for declaration in declarations:
                    type_definition = declaration.resolved_type()
                    if isinstance(type_definition, ComplexType) and (
                        predicate.name
                        in type_definition.effective_attribute_uses()
                    ):
                        known = True
                if not known:
                    raise QueryError(
                        f"predicate [@{predicate.name}=...] of '{self.path}' "
                        "tests an attribute the schema never declares there"
                    )
            elif predicate.kind == "child":
                assert predicate.name is not None
                known = any(
                    predicate.name
                    in {c.name for c in self._child_declarations(d)}
                    for d in declarations
                )
                if not known:
                    raise QueryError(
                        f"predicate [{predicate.name}=...] of '{self.path}' "
                        "tests a child the schema never declares there"
                    )

    def _child_declarations(
        self, declaration: ElementDeclaration
    ) -> list[ElementDeclaration]:
        type_definition = declaration.resolved_type()
        if not isinstance(type_definition, ComplexType):
            return []
        if type_definition is ANY_TYPE:
            return list(self.binding.schema.elements.values())
        content = type_definition.effective_content()
        if content is None:
            return []
        found: list[ElementDeclaration] = []
        self._collect(content, found)
        expanded: list[ElementDeclaration] = []
        for child in found:
            canonical = (
                self.binding.schema.elements.get(child.name, child)
                if child.is_global
                else child
            )
            expanded.extend(
                self.binding.schema.substitution_alternatives(canonical)
            )
        return expanded

    def _collect(
        self, particle: Particle, sink: list[ElementDeclaration]
    ) -> None:
        term = particle.term
        if isinstance(term, ElementDeclaration):
            sink.append(term)
        elif isinstance(term, GroupReference):
            self._collect(Particle(term.resolved()), sink)
        elif isinstance(term, ModelGroup):
            for child in term.particles:
                self._collect(child, sink)

    # -- application ------------------------------------------------------------------

    def apply(self, element: TypedElement) -> list[TypedElement]:
        """Run the query; *element* must be the root the query was
        compiled for."""
        if element.tag_name != self.root_element:
            raise QueryError(
                f"query was compiled for <{self.root_element}>, applied "
                f"to <{element.tag_name}>"
            )
        current: list[TypedElement] = [element]
        for step in self.steps:
            matched: list[TypedElement] = []
            for node in current:
                position = 0
                for child in node.child_elements():
                    if step.name not in ("*", child.tag_name):
                        continue
                    position += 1
                    if all(
                        predicate.matches(child, position)  # type: ignore[arg-type]
                        for predicate in step.predicates
                    ) and isinstance(child, TypedElement):
                        matched.append(child)
            current = matched
        return current

    def __repr__(self) -> str:
        names = ", ".join(cls.__name__ for cls in self.result_classes)
        return f"Query({self.path!r} -> [{names}])"


def select(
    element: TypedElement, path: str
) -> list[TypedElement]:
    """Compile-and-run convenience over a typed element."""
    binding = type(element)._BINDING
    query = Query(binding, element.tag_name, path)
    return query.apply(element)


def _parse_path(path: str) -> list[Step]:
    if not path or path.startswith("/"):
        raise QueryError(f"path '{path}' must be relative (start with a step)")
    steps: list[Step] = []
    for raw in path.split("/"):
        if not raw:
            raise QueryError(f"empty step in path '{path}'")
        match = re.match(r"(?P<name>\*|[\w.-]+)", raw)
        if not match:
            raise QueryError(f"bad step '{raw}' in path '{path}'")
        step = Step(match.group("name"))
        rest = raw[match.end() :]
        while rest:
            predicate_match = _PREDICATE_RE.match(rest)
            if not predicate_match:
                raise QueryError(f"bad predicate '{rest}' in path '{path}'")
            groups = predicate_match.groupdict()
            if groups["index"]:
                step.predicates.append(
                    Predicate("index", index=int(groups["index"]))
                )
            elif groups["attr"]:
                step.predicates.append(
                    Predicate("attr", name=groups["attr"], value=groups["attr_value"])
                )
            else:
                step.predicates.append(
                    Predicate(
                        "child",
                        name=groups["child"],
                        value=groups["child_value"],
                    )
                )
            rest = rest[predicate_match.end() :]
        steps.append(step)
    return steps

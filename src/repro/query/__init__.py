"""Typed path queries over V-DOM trees (the paper's Sect. 8 outlook).

The paper closes by planning "extensions to … XQuery in such a way that a
query which is applied to appropriate VDOM-objects can be guaranteed to
result only in documents which are valid".  This package implements the
selection core of that idea: a path query is *compiled against the
schema* — a step that no instance could ever match is rejected before any
document is touched, and the static result type of the query is known —
then applied to typed trees, yielding typed (valid) elements.
"""

from repro.query.path import Query, select
from repro.query.transform import (
    Rule,
    TransformProgram,
    TypedTransform,
    transform,
)

__all__ = [
    "Query",
    "Rule",
    "TransformProgram",
    "TypedTransform",
    "select",
    "transform",
]

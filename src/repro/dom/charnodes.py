"""Character data nodes: Text, CDATASection, Comment."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import DomError
from repro.dom.node import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.dom.document import Document


class CharacterData(Node):
    """Shared behaviour of nodes whose value is a mutable string."""

    def __init__(self, data: str, owner_document: Document | None = None):
        super().__init__(owner_document)
        self.data = str(data)

    @property
    def node_value(self) -> str:
        return self.data

    @property
    def length(self) -> int:
        return len(self.data)

    def substring_data(self, offset: int, count: int) -> str:
        self._check_offset(offset)
        return self.data[offset : offset + count]

    def append_data(self, text: str) -> None:
        self.data += text

    def insert_data(self, offset: int, text: str) -> None:
        self._check_offset(offset)
        self.data = self.data[:offset] + text + self.data[offset:]

    def delete_data(self, offset: int, count: int) -> None:
        self._check_offset(offset)
        self.data = self.data[:offset] + self.data[offset + count :]

    def replace_data(self, offset: int, count: int, text: str) -> None:
        self._check_offset(offset)
        self.data = self.data[:offset] + text + self.data[offset + count :]

    def _check_offset(self, offset: int) -> None:
        if not 0 <= offset <= len(self.data):
            raise DomError(
                f"offset {offset} outside data of length {len(self.data)}"
            )

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"<{type(self).__name__} {preview!r}>"


class Text(CharacterData):
    """A run of character data in element content."""

    @property
    def node_type(self) -> NodeType:
        return NodeType.TEXT

    @property
    def node_name(self) -> str:
        return "#text"

    def split_text(self, offset: int) -> Text:
        """Split at *offset*; the tail becomes the next sibling."""
        self._check_offset(offset)
        tail = type(self)(self.data[offset:], self._owner_document)
        self.data = self.data[:offset]
        if self._parent is not None:
            self._parent.insert_before(tail, self.next_sibling)
        return tail

    def _clone_shallow(self) -> Text:
        return type(self)(self.data, self._owner_document)


class CDATASection(Text):
    """Text originating from (and serialized as) a CDATA section."""

    @property
    def node_type(self) -> NodeType:
        return NodeType.CDATA_SECTION

    @property
    def node_name(self) -> str:
        return "#cdata-section"


class Comment(CharacterData):
    """``<!-- ... -->``"""

    @property
    def node_type(self) -> NodeType:
        return NodeType.COMMENT

    @property
    def node_name(self) -> str:
        return "#comment"

    def _clone_shallow(self) -> Comment:
        return Comment(self.data, self._owner_document)

"""Serialize DOM trees back to markup text.

Two write paths share this module:

* :func:`write_node` — the non-pretty hot path.  It walks the tree with
  an explicit stack (no recursion limit), memoizes start/end tag text
  per generated V-DOM class (schema-guaranteed names) or per tag name
  (names already validated by ``Element.__init__``/``Attr.__init__``),
  and never re-runs ``is_name`` on the serving path.  The P-XML
  render-to-text pipeline appends element-hole subtrees through it.
* :func:`_write` — the pretty-printing walk, also iterative.  Subtrees
  whose indent policy collapses to ``None`` (``preserve_mixed``) are
  delegated to :func:`write_node`, so there is exactly one
  implementation of the non-pretty byte format.
"""

from __future__ import annotations

from repro.errors import DomError
from repro.xml import serializer as markup
from repro.xml.entities import escape_attribute, escape_text
from repro.dom.charnodes import CDATASection, Comment, Text
from repro.dom.document import (
    Document,
    DocumentFragment,
    DocumentType,
    ProcessingInstructionNode,
)
from repro.dom.element import Element
from repro.dom.node import Node

#: start/end tag text memoized per tag name for untyped elements
#: (V-DOM classes carry ``_TAG_PARTS`` precomputed at bind time);
#: bounded: cleared when pathological inputs mint too many names.
_NAME_TAG_PARTS: dict[str, tuple[str, str]] = {}
_NAME_TAG_LIMIT = 4096


def _tag_parts(element: Element) -> tuple[str, str]:
    """``("<name", "</name>")`` for *element*, without re-validating.

    The element name was checked by ``Element.__init__`` (and for V-DOM
    classes it is the schema declaration's name), so serialization can
    skip ``is_name`` entirely.
    """
    cls = element.__class__
    parts = getattr(cls, "_TAG_PARTS", None)
    if parts is not None:  # V-DOM class: precomputed at bind time
        return parts
    tag = element.tag_name
    parts = _NAME_TAG_PARTS.get(tag)
    if parts is None:
        if len(_NAME_TAG_PARTS) >= _NAME_TAG_LIMIT:
            _NAME_TAG_PARTS.clear()
        parts = _NAME_TAG_PARTS[tag] = ("<" + tag, "</" + tag + ">")
    return parts


def write_node(node: Node, pieces: list[str]) -> None:
    """Append the non-pretty serialization of *node* to *pieces*.

    Iterative (explicit stack): a 10,000-deep element chain serializes
    without touching the interpreter's recursion limit.
    """
    append = pieces.append
    stack: list[Node | str] = [node]
    pop = stack.pop
    while stack:
        current = pop()
        if type(current) is str:  # pre-rendered end tag
            append(current)
            continue
        if isinstance(current, Element):
            open_prefix, end_tag = _tag_parts(current)
            append(open_prefix)
            for name, attr in current.attributes._attrs.items():
                append(f' {name}="{escape_attribute(attr.value)}"')
            children = current._children
            if children:
                append(">")
                stack.append(end_tag)
                stack.extend(reversed(children))
            else:
                append("/>")
            continue
        if isinstance(current, CDATASection):
            append(markup.cdata_section(current.data))
            continue
        if isinstance(current, Text):
            append(escape_text(current.data))
            continue
        if isinstance(current, Comment):
            append(markup.comment(current.data))
            continue
        if isinstance(current, ProcessingInstructionNode):
            append(markup.processing_instruction(current.target, current.data))
            continue
        if isinstance(current, (Document, DocumentFragment)):
            stack.extend(reversed(current._children))
            continue
        if isinstance(current, DocumentType):
            append(_doctype_string(current))
            append("\n")
            continue
        raise DomError(f"cannot serialize node of type {type(current).__name__}")


def serialize(
    node: Node,
    pretty: bool = False,
    indent: str = "  ",
    xml_declaration: bool = False,
) -> str:
    """Render *node* (usually a document or element) as markup text."""
    pieces: list[str] = []
    if xml_declaration:
        pieces.append(markup.xml_declaration())
        if not pretty:
            pieces.append("\n")
    if pretty:
        _write(node, pieces, markup.IndentPolicy(indent), depth=0)
    else:
        write_node(node, pieces)
    text = "".join(pieces)
    if pretty and text.startswith("\n"):
        text = text[1:]
    return text


def _write(
    node: Node,
    pieces: list[str],
    policy: markup.IndentPolicy | None,
    depth: int,
) -> None:
    """Pretty-capable walk, iterative via an explicit work stack.

    Stack entries are either ``(node, policy, depth)`` work items or
    literal strings (already-rendered closing markup).
    """
    stack: list[tuple[Node, markup.IndentPolicy | None, int] | str] = [
        (node, policy, depth)
    ]
    while stack:
        entry = stack.pop()
        if type(entry) is str:
            pieces.append(entry)
            continue
        current, current_policy, current_depth = entry
        if current_policy is None:
            write_node(current, pieces)
            continue
        if isinstance(current, (Document, DocumentFragment)):
            for child in reversed(list(current.child_nodes)):
                stack.append((child, current_policy, current_depth))
            continue
        if isinstance(current, Element):
            _push_element(current, pieces, stack, current_policy, current_depth)
            continue
        if isinstance(current, CDATASection):
            pieces.append(markup.cdata_section(current.data))
            continue
        if isinstance(current, Text):
            pieces.append(escape_text(current.data))
            continue
        if isinstance(current, Comment):
            pieces.append(current_policy.prefix(current_depth))
            pieces.append(markup.comment(current.data))
            continue
        if isinstance(current, ProcessingInstructionNode):
            pieces.append(current_policy.prefix(current_depth))
            pieces.append(
                markup.processing_instruction(current.target, current.data)
            )
            continue
        if isinstance(current, DocumentType):
            pieces.append(_doctype_string(current))
            continue
        raise DomError(f"cannot serialize node of type {type(current).__name__}")


def _push_element(
    element: Element,
    pieces: list[str],
    stack: list,
    policy: markup.IndentPolicy,
    depth: int,
) -> None:
    attrs = element.attributes.items()
    children = list(element.child_nodes)
    if not children:
        pieces.append(policy.prefix(depth))
        pieces.append(markup.start_tag(element.tag_name, attrs, self_closing=True))
        return
    mixed = any(isinstance(child, Text) for child in children)
    indent_children = not (mixed and policy.preserve_mixed)
    pieces.append(policy.prefix(depth))
    pieces.append(markup.start_tag(element.tag_name, attrs))
    child_policy = policy if indent_children else None
    closing = markup.end_tag(element.tag_name)
    if indent_children:
        closing = policy.prefix(depth) + closing
    stack.append(closing)
    for child in reversed(children):
        stack.append((child, child_policy, depth + 1))


def _doctype_string(doctype: DocumentType) -> str:
    pieces = [f"<!DOCTYPE {doctype.name}"]
    if doctype.public_id is not None:
        pieces.append(f' PUBLIC "{doctype.public_id}" "{doctype.system_id or ""}"')
    elif doctype.system_id is not None:
        pieces.append(f" SYSTEM \"{doctype.system_id}\"")
    if doctype.internal_subset:
        pieces.append(f" [{doctype.internal_subset}]")
    pieces.append(">")
    return "".join(pieces)

"""Serialize DOM trees back to markup text."""

from __future__ import annotations

from repro.errors import DomError
from repro.xml import serializer as markup
from repro.dom.charnodes import CDATASection, Comment, Text
from repro.dom.document import (
    Document,
    DocumentFragment,
    DocumentType,
    ProcessingInstructionNode,
)
from repro.dom.element import Element
from repro.dom.node import Node


def serialize(
    node: Node,
    pretty: bool = False,
    indent: str = "  ",
    xml_declaration: bool = False,
) -> str:
    """Render *node* (usually a document or element) as markup text."""
    pieces: list[str] = []
    if xml_declaration:
        pieces.append(markup.xml_declaration())
        if not pretty:
            pieces.append("\n")
    policy = markup.IndentPolicy(indent) if pretty else None
    _write(node, pieces, policy, depth=0)
    text = "".join(pieces)
    if pretty and text.startswith("\n"):
        text = text[1:]
    return text


def _write(
    node: Node,
    pieces: list[str],
    policy: markup.IndentPolicy | None,
    depth: int,
) -> None:
    if isinstance(node, Document) or isinstance(node, DocumentFragment):
        for child in node.child_nodes:
            _write(child, pieces, policy, depth)
        return
    if isinstance(node, Element):
        _write_element(node, pieces, policy, depth)
        return
    if isinstance(node, CDATASection):
        pieces.append(markup.cdata_section(node.data))
        return
    if isinstance(node, Text):
        pieces.append(markup.text(node.data))
        return
    if isinstance(node, Comment):
        if policy is not None:
            pieces.append(policy.prefix(depth))
        pieces.append(markup.comment(node.data))
        return
    if isinstance(node, ProcessingInstructionNode):
        if policy is not None:
            pieces.append(policy.prefix(depth))
        pieces.append(markup.processing_instruction(node.target, node.data))
        return
    if isinstance(node, DocumentType):
        pieces.append(_doctype_string(node))
        if policy is None:
            pieces.append("\n")
        return
    raise DomError(f"cannot serialize node of type {type(node).__name__}")


def _write_element(
    element: Element,
    pieces: list[str],
    policy: markup.IndentPolicy | None,
    depth: int,
) -> None:
    attrs = element.attributes.items()
    children = list(element.child_nodes)
    if not children:
        if policy is not None:
            pieces.append(policy.prefix(depth))
        pieces.append(markup.start_tag(element.tag_name, attrs, self_closing=True))
        return
    mixed = any(isinstance(child, Text) for child in children)
    indent_children = policy is not None and not (mixed and policy.preserve_mixed)
    if policy is not None:
        pieces.append(policy.prefix(depth))
    pieces.append(markup.start_tag(element.tag_name, attrs))
    child_policy = policy if indent_children else None
    for child in children:
        _write(child, pieces, child_policy, depth + 1)
    if indent_children and policy is not None:
        pieces.append(policy.prefix(depth))
    pieces.append(markup.end_tag(element.tag_name))


def _doctype_string(doctype: DocumentType) -> str:
    pieces = [f"<!DOCTYPE {doctype.name}"]
    if doctype.public_id is not None:
        pieces.append(f' PUBLIC "{doctype.public_id}" "{doctype.system_id or ""}"')
    elif doctype.system_id is not None:
        pieces.append(f' SYSTEM "{doctype.system_id}"')
    if doctype.internal_subset:
        pieces.append(f" [{doctype.internal_subset}]")
    pieces.append(">")
    return "".join(pieces)

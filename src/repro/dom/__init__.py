"""DOM substrate: a from-scratch DOM-Level-1-core style object model.

This is the *generic* object model the paper's Sect. 2 describes: every
element is an instance of the one unspecific :class:`Element` class, so
nothing stops a program from building an invalid document.  The V-DOM
layer (:mod:`repro.core`) subclasses these nodes with schema-generated
typed classes; the runtime validator (:mod:`repro.xsd.validator`) checks
finished generic trees — the late, expensive path the paper criticizes.
"""

from repro.dom.node import Node, NodeList, NodeType
from repro.dom.charnodes import CDATASection, CharacterData, Comment, Text
from repro.dom.attr import Attr, NamedNodeMap
from repro.dom.element import Element
from repro.dom.document import (
    Document,
    DocumentFragment,
    DocumentType,
    ProcessingInstructionNode,
)
from repro.dom.builder import parse_document
from repro.dom.serialize import serialize

__all__ = [
    "Attr",
    "CDATASection",
    "CharacterData",
    "Comment",
    "Document",
    "DocumentFragment",
    "DocumentType",
    "Element",
    "NamedNodeMap",
    "Node",
    "NodeList",
    "NodeType",
    "ProcessingInstructionNode",
    "Text",
    "parse_document",
    "serialize",
]

"""Build a DOM :class:`~repro.dom.document.Document` from parser events."""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.xml.events import (
    Characters,
    Comment as CommentEvent,
    DoctypeDecl,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)
from repro.xml.parser import PullParser
from repro.dom.document import Document, DocumentType
from repro.dom.node import Node


def parse_document(
    text: str,
    source: str | None = None,
    keep_comments: bool = True,
    keep_pis: bool = True,
) -> Document:
    """Parse *text* into a freshly created document tree.

    CDATA sections become :class:`~repro.dom.charnodes.CDATASection`
    nodes so the original notation round-trips through the serializer.

    Events are consumed lazily, one at a time, straight off the pull
    parser — no event list is ever materialized.  Attribute names come
    from the parser's Name production (the same check ``Attr`` runs), so
    they are installed through the trusted fast path.
    """
    document = Document()
    open_nodes: list[Node] = [document]
    for event in PullParser(text, source):
        current = open_nodes[-1]
        if isinstance(event, StartElement):
            element = document.create_element(event.name)
            attributes = element.attributes
            for name, value in event.attributes:
                attributes._install(name, value)
            current.append_child(element)
            open_nodes.append(element)
        elif isinstance(event, EndElement):
            open_nodes.pop()
        elif isinstance(event, Characters):
            if event.cdata:
                current.append_child(document.create_cdata_section(event.data))
            elif event.data:
                current.append_child(document.create_text_node(event.data))
        elif isinstance(event, CommentEvent):
            if keep_comments:
                current.append_child(document.create_comment(event.data))
        elif isinstance(event, ProcessingInstruction):
            if keep_pis:
                current.append_child(
                    document.create_processing_instruction(event.target, event.data)
                )
        elif isinstance(event, DoctypeDecl):
            doctype = DocumentType(
                event.name,
                event.public_id,
                event.system_id,
                event.internal_subset,
                document,
            )
            current.append_child(doctype)
        elif isinstance(event, XmlDeclaration):
            pass  # declarations carry no tree content
    if len(open_nodes) != 1:  # pragma: no cover - parser guarantees balance
        raise XmlSyntaxError("unbalanced document")
    return document

"""The generic :class:`Element` — the "unspecific interface" of the paper.

Every element of every markup language is an instance of this one class;
that genericity is exactly what V-DOM replaces with schema-derived
subclasses.  V-DOM's :class:`~repro.core.vdom.TypedElement` therefore
*extends* this class, as the paper requires ("each interface extends the
Element-interface of the Document Object Model").
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import XmlError
from repro.xml.chars import is_name
from repro.dom.attr import Attr, NamedNodeMap
from repro.dom.node import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.dom.document import Document


class Element(Node):
    """An XML element with attributes and mixed content."""

    _allowed_children = frozenset(
        {
            NodeType.ELEMENT,
            NodeType.TEXT,
            NodeType.CDATA_SECTION,
            NodeType.COMMENT,
            NodeType.PROCESSING_INSTRUCTION,
        }
    )

    def __init__(self, tag_name: str, owner_document: Document | None = None):
        if not is_name(tag_name):
            raise XmlError(f"'{tag_name}' is not a legal element name")
        super().__init__(owner_document)
        self._tag_name = tag_name
        self._attributes = NamedNodeMap(self)

    @property
    def node_type(self) -> NodeType:
        return NodeType.ELEMENT

    @property
    def node_name(self) -> str:
        return self._tag_name

    @property
    def tag_name(self) -> str:
        return self._tag_name

    @property
    def attributes(self) -> NamedNodeMap:
        return self._attributes

    # -- attribute convenience API (DOM Level 1) -----------------------------

    def get_attribute(self, name: str) -> str:
        """Return the value of *name*, or '' when absent (per DOM L1)."""
        attr = self._attributes.get_named_item(name)
        return attr.value if attr is not None else ""

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def set_attribute(self, name: str, value: str) -> None:
        attr = self._attributes.get_named_item(name)
        if attr is not None:
            attr.value = str(value)
            return
        self._attributes.set_named_item(Attr(name, value, self._owner_document))

    def remove_attribute(self, name: str) -> None:
        """Remove *name* if present (silently ignores absence, per DOM)."""
        if name in self._attributes:
            self._attributes.remove_named_item(name)

    def get_attribute_node(self, name: str) -> Attr | None:
        return self._attributes.get_named_item(name)

    def set_attribute_node(self, attr: Attr) -> Attr | None:
        return self._attributes.set_named_item(attr)

    def remove_attribute_node(self, attr: Attr) -> Attr:
        return self._attributes.remove_named_item(attr.name)

    # -- element queries --------------------------------------------------------

    def get_elements_by_tag_name(self, name: str) -> list[Element]:
        """All descendant elements with tag *name* ('*' matches any)."""
        result: list[Element] = []
        for node in self.iter_descendants():
            if isinstance(node, Element) and (name == "*" or node.tag_name == name):
                result.append(node)
        return result

    def child_elements(self) -> list[Element]:
        """Direct element children, in document order."""
        return [node for node in self._children if isinstance(node, Element)]

    def iter_children(self) -> Iterator[Node]:
        return iter(list(self._children))

    # -- cloning ------------------------------------------------------------------

    def _clone_shallow(self) -> Element:
        clone = Element(self._tag_name, self._owner_document)
        for name, value in self._attributes.items():
            clone.set_attribute(name, value)
        return clone

    def __repr__(self) -> str:
        return f"<Element <{self._tag_name}> attrs={len(self._attributes)}>"

"""Document, DocumentFragment, DocumentType, and PI nodes."""

from __future__ import annotations

from repro.errors import HierarchyRequestError, XmlError
from repro.xml.chars import is_name
from repro.dom.attr import Attr
from repro.dom.charnodes import CDATASection, Comment, Text
from repro.dom.element import Element
from repro.dom.node import Node, NodeType


class ProcessingInstructionNode(Node):
    """``<?target data?>`` as a tree node."""

    def __init__(self, target: str, data: str, owner_document: Document | None = None):
        if not is_name(target) or target.lower() == "xml":
            raise XmlError(f"'{target}' is not a legal PI target")
        super().__init__(owner_document)
        self.target = target
        self.data = data

    @property
    def node_type(self) -> NodeType:
        return NodeType.PROCESSING_INSTRUCTION

    @property
    def node_name(self) -> str:
        return self.target

    @property
    def node_value(self) -> str:
        return self.data

    def _clone_shallow(self) -> ProcessingInstructionNode:
        return ProcessingInstructionNode(self.target, self.data, self._owner_document)


class DocumentType(Node):
    """The DOCTYPE declaration as a (childless) tree node."""

    def __init__(
        self,
        name: str,
        public_id: str | None = None,
        system_id: str | None = None,
        internal_subset: str | None = None,
        owner_document: Document | None = None,
    ):
        super().__init__(owner_document)
        self.name = name
        self.public_id = public_id
        self.system_id = system_id
        self.internal_subset = internal_subset

    @property
    def node_type(self) -> NodeType:
        return NodeType.DOCUMENT_TYPE

    @property
    def node_name(self) -> str:
        return self.name

    def _clone_shallow(self) -> DocumentType:
        return DocumentType(
            self.name,
            self.public_id,
            self.system_id,
            self.internal_subset,
            self._owner_document,
        )


class DocumentFragment(Node):
    """A lightweight container whose children are inserted in its place."""

    _allowed_children = Element._allowed_children

    def __init__(self, owner_document: Document | None = None):
        super().__init__(owner_document)

    @property
    def node_type(self) -> NodeType:
        return NodeType.DOCUMENT_FRAGMENT

    @property
    def node_name(self) -> str:
        return "#document-fragment"

    def _clone_shallow(self) -> DocumentFragment:
        return DocumentFragment(self._owner_document)


class Document(Node):
    """The document node: factory for all other nodes, single root rule."""

    _allowed_children = frozenset(
        {
            NodeType.ELEMENT,
            NodeType.COMMENT,
            NodeType.PROCESSING_INSTRUCTION,
            NodeType.DOCUMENT_TYPE,
        }
    )

    def __init__(self) -> None:
        super().__init__(None)
        self._owner_document = self

    @property
    def node_type(self) -> NodeType:
        return NodeType.DOCUMENT

    @property
    def node_name(self) -> str:
        return "#document"

    @property
    def owner_document(self) -> Document | None:
        """Per DOM, the document's own owner is ``None``."""
        return None

    @property
    def document_element(self) -> Element | None:
        for child in self._children:
            if isinstance(child, Element):
                return child
        return None

    @property
    def doctype(self) -> DocumentType | None:
        for child in self._children:
            if isinstance(child, DocumentType):
                return child
        return None

    def _check_insertion(self, node: Node) -> None:
        super()._check_insertion(node)
        if node.node_type is NodeType.ELEMENT and self.document_element is not None:
            raise HierarchyRequestError("document already has a root element")
        if node.node_type is NodeType.DOCUMENT_TYPE and self.doctype is not None:
            raise HierarchyRequestError("document already has a DOCTYPE")

    # -- factories ------------------------------------------------------------

    def create_element(self, tag_name: str) -> Element:
        return Element(tag_name, self)

    def create_text_node(self, data: str) -> Text:
        return Text(data, self)

    def create_cdata_section(self, data: str) -> CDATASection:
        return CDATASection(data, self)

    def create_comment(self, data: str) -> Comment:
        return Comment(data, self)

    def create_processing_instruction(
        self, target: str, data: str = ""
    ) -> ProcessingInstructionNode:
        return ProcessingInstructionNode(target, data, self)

    def create_attribute(self, name: str, value: str = "") -> Attr:
        return Attr(name, value, self)

    def create_document_fragment(self) -> DocumentFragment:
        return DocumentFragment(self)

    # -- queries ---------------------------------------------------------------

    def get_elements_by_tag_name(self, name: str) -> list[Element]:
        root = self.document_element
        if root is None:
            return []
        matches = root.get_elements_by_tag_name(name)
        if name == "*" or root.tag_name == name:
            matches.insert(0, root)
        return matches

    def import_node(self, node: Node, deep: bool = True) -> Node:
        """Copy a node from another document into this one."""
        clone = node.clone_node(deep)
        self._reown(clone)
        return clone

    def _reown(self, node: Node) -> None:
        node._owner_document = self
        if isinstance(node, Element):
            for attr in node.attributes:
                attr._owner_document = self
        for child in node._children:
            self._reown(child)

    def _clone_shallow(self) -> Document:
        return Document()

    def __repr__(self) -> str:
        root = self.document_element
        root_name = root.tag_name if root is not None else None
        return f"<Document root={root_name!r}>"

"""The DOM :class:`Node` base class and live :class:`NodeList` views."""

from __future__ import annotations

import enum
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import DomError, HierarchyRequestError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dom.document import Document


class NodeType(enum.IntEnum):
    """DOM node type codes (DOM Level 1 numbering)."""

    ELEMENT = 1
    ATTRIBUTE = 2
    TEXT = 3
    CDATA_SECTION = 4
    PROCESSING_INSTRUCTION = 7
    COMMENT = 8
    DOCUMENT = 9
    DOCUMENT_TYPE = 10
    DOCUMENT_FRAGMENT = 11


class NodeList:
    """A *live* sequence view over a parent node's children.

    DOM requires node lists to reflect later tree mutations; this view
    holds a reference to the parent's child list rather than a snapshot.
    """

    def __init__(self, backing: list[Node]):
        self._backing = backing

    def __len__(self) -> int:
        return len(self._backing)

    def __iter__(self) -> Iterator[Node]:
        return iter(list(self._backing))

    def __getitem__(self, index: int) -> Node:
        return self._backing[index]

    def item(self, index: int) -> Node | None:
        """DOM-style indexed access: ``None`` when out of range."""
        if 0 <= index < len(self._backing):
            return self._backing[index]
        return None

    def __repr__(self) -> str:
        return f"NodeList({self._backing!r})"


class Node:
    """Common behaviour of every tree node: children, siblings, mutation."""

    #: Node types acceptable as children; leaf classes leave this empty.
    _allowed_children: frozenset[NodeType] = frozenset()

    def __init__(self, owner_document: Document | None):
        self._owner_document = owner_document
        self._parent: Node | None = None
        self._children: list[Node] = []

    # -- identification ------------------------------------------------------

    @property
    def node_type(self) -> NodeType:
        raise NotImplementedError

    @property
    def node_name(self) -> str:
        raise NotImplementedError

    @property
    def node_value(self) -> str | None:
        return None

    @property
    def owner_document(self) -> Document | None:
        return self._owner_document

    # -- navigation -----------------------------------------------------------

    @property
    def parent_node(self) -> Node | None:
        return self._parent

    @property
    def child_nodes(self) -> NodeList:
        return NodeList(self._children)

    @property
    def first_child(self) -> Node | None:
        return self._children[0] if self._children else None

    @property
    def last_child(self) -> Node | None:
        return self._children[-1] if self._children else None

    @property
    def previous_sibling(self) -> Node | None:
        if self._parent is None:
            return None
        index = self._parent._children.index(self)
        return self._parent._children[index - 1] if index > 0 else None

    @property
    def next_sibling(self) -> Node | None:
        if self._parent is None:
            return None
        siblings = self._parent._children
        index = siblings.index(self)
        return siblings[index + 1] if index + 1 < len(siblings) else None

    def has_child_nodes(self) -> bool:
        return bool(self._children)

    def iter_descendants(self) -> Iterator[Node]:
        """Depth-first pre-order walk of this node's descendants."""
        stack = list(reversed(self._children))
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node._children))

    def ancestors(self) -> Iterator[Node]:
        node = self._parent
        while node is not None:
            yield node
            node = node._parent

    # -- text ------------------------------------------------------------------

    @property
    def text_content(self) -> str:
        """Concatenated character data of all descendants."""
        pieces: list[str] = []
        for node in self.iter_descendants():
            value = node.node_value
            if value is not None and node.node_type in (
                NodeType.TEXT,
                NodeType.CDATA_SECTION,
            ):
                pieces.append(value)
        return "".join(pieces)

    # -- mutation ----------------------------------------------------------------

    def _check_insertion(self, node: Node) -> None:
        if node.node_type not in self._allowed_children:
            raise HierarchyRequestError(
                f"a {node.node_type.name} node may not be a child of "
                f"a {self.node_type.name} node"
            )
        if node is self or node in set(self.ancestors()) or self is node:
            raise HierarchyRequestError("a node may not contain itself")
        if (
            node._owner_document is not None
            and self._owner_document is not None
            and node._owner_document is not self._owner_document
            and self.node_type is not NodeType.DOCUMENT
        ):
            raise DomError("node belongs to a different document")

    def _adopt(self, node: Node) -> None:
        if node._parent is not None:
            node._parent._children.remove(node)
        node._parent = self

    def _insert(self, node: Node, index: int) -> None:
        from repro.dom.document import DocumentFragment

        if isinstance(node, DocumentFragment):
            for child in list(node._children):
                self._insert(child, index)
                index += 1
            return
        self._check_insertion(node)
        self._adopt(node)
        self._children.insert(index, node)

    def append_child(self, node: Node) -> Node:
        """Add *node* (or a fragment's children) at the end; return it."""
        self._insert(node, len(self._children))
        return node

    def insert_before(self, node: Node, reference: Node | None) -> Node:
        """Insert *node* immediately before *reference* (or append)."""
        if reference is None:
            self._insert(node, len(self._children))
            return node
        try:
            index = self._children.index(reference)
        except ValueError:
            raise DomError("reference node is not a child of this node")
        self._insert(node, index)
        return node

    def remove_child(self, node: Node) -> Node:
        """Detach *node*; return it."""
        try:
            self._children.remove(node)
        except ValueError:
            raise DomError("node to remove is not a child of this node")
        node._parent = None
        return node

    def replace_child(self, new: Node, old: Node) -> Node:
        """Replace *old* with *new*; return *old*.

        Uses the low-level list operations directly so subclasses that
        validate on mutation (V-DOM) see only the final state, never the
        invalid intermediate one.
        """
        try:
            index = self._children.index(old)
        except ValueError:
            raise DomError("node to replace is not a child of this node")
        self._children.remove(old)
        old._parent = None
        self._insert(new, index)
        return old

    def normalize(self) -> None:
        """Merge adjacent text nodes and drop empty ones, recursively."""
        from repro.dom.charnodes import Text

        merged: list[Node] = []
        for child in list(self._children):
            if (
                type(child) is Text
                and merged
                and type(merged[-1]) is Text
            ):
                merged[-1].data += child.data  # type: ignore[attr-defined]
                child._parent = None
            elif type(child) is Text and not child.data:  # type: ignore[attr-defined]
                child._parent = None
            else:
                merged.append(child)
                child.normalize()
        self._children[:] = merged

    # -- cloning ------------------------------------------------------------------

    def clone_node(self, deep: bool = False) -> Node:
        """Return a copy of this node, optionally with its subtree."""
        clone = self._clone_shallow()
        if deep:
            for child in self._children:
                clone.append_child(child.clone_node(True))
        return clone

    def _clone_shallow(self) -> Node:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.node_name!r}>"

"""Attribute nodes and the NamedNodeMap that holds them."""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import DomError, XmlError
from repro.xml.chars import is_name
from repro.dom.node import Node, NodeType

if TYPE_CHECKING:  # pragma: no cover
    from repro.dom.document import Document
    from repro.dom.element import Element


class Attr(Node):
    """An attribute; per DOM it is a node but never a tree child."""

    def __init__(
        self, name: str, value: str = "", owner_document: Document | None = None
    ):
        if not is_name(name):
            raise XmlError(f"'{name}' is not a legal attribute name")
        super().__init__(owner_document)
        self._name = name
        self.value = str(value)
        self._owner_element: Element | None = None

    @property
    def node_type(self) -> NodeType:
        return NodeType.ATTRIBUTE

    @property
    def node_name(self) -> str:
        return self._name

    @property
    def name(self) -> str:
        return self._name

    @property
    def node_value(self) -> str:
        return self.value

    @property
    def owner_element(self) -> Element | None:
        return self._owner_element

    def _clone_shallow(self) -> Attr:
        return Attr(self._name, self.value, self._owner_document)

    def __repr__(self) -> str:
        return f"<Attr {self._name}={self.value!r}>"


class NamedNodeMap:
    """Ordered name→:class:`Attr` mapping attached to one element."""

    def __init__(self, owner: Element):
        self._owner = owner
        self._attrs: dict[str, Attr] = {}

    def __len__(self) -> int:
        return len(self._attrs)

    def __iter__(self) -> Iterator[Attr]:
        return iter(list(self._attrs.values()))

    def __contains__(self, name: str) -> bool:
        return name in self._attrs

    def item(self, index: int) -> Attr | None:
        values = list(self._attrs.values())
        if 0 <= index < len(values):
            return values[index]
        return None

    def get_named_item(self, name: str) -> Attr | None:
        return self._attrs.get(name)

    def set_named_item(self, attr: Attr) -> Attr | None:
        """Attach *attr*, returning any attribute it displaced."""
        if attr._owner_element is not None and attr._owner_element is not self._owner:
            raise DomError("attribute is already in use by another element")
        if (
            attr.owner_document is not None
            and self._owner.owner_document is not None
            and attr.owner_document is not self._owner.owner_document
        ):
            raise DomError("attribute belongs to a different document")
        previous = self._attrs.get(attr.name)
        if previous is not None:
            previous._owner_element = None
        attr._owner_element = self._owner
        self._attrs[attr.name] = attr
        return previous

    def _install(self, name: str, value: str) -> None:
        """Trusted fast path: attach a fresh attribute without re-checks.

        For builders whose *name* already passed the parser's Name
        production (identical to ``is_name``) and is not yet present:
        skips ``Attr.__init__``'s name validation and the displacement
        and ownership logic of :meth:`set_named_item`.
        """
        attr = Attr.__new__(Attr)
        attr._owner_document = None
        attr._parent = None
        attr._children = []
        attr._name = name
        attr.value = value
        attr._owner_element = self._owner
        self._attrs[name] = attr

    def remove_named_item(self, name: str) -> Attr:
        try:
            attr = self._attrs.pop(name)
        except KeyError:
            raise DomError(f"no attribute named '{name}'")
        attr._owner_element = None
        return attr

    def names(self) -> list[str]:
        return list(self._attrs)

    def items(self) -> list[tuple[str, str]]:
        return [(attr.name, attr.value) for attr in self._attrs.values()]

    def __repr__(self) -> str:
        return f"NamedNodeMap({self.items()!r})"

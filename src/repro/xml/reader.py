"""A position-tracking cursor over source text.

Shared by the XML parser, the DTD parser, and the P-XML template parser so
every error in the stack carries an exact line/column.
"""

from __future__ import annotations

from repro.errors import Location, XmlSyntaxError
from repro.xml.chars import is_name_char, is_name_start_char, is_space


class Reader:
    """Sequential reader with line/column bookkeeping."""

    def __init__(self, text: str, source: str | None = None):
        self._text = text
        self._length = len(text)
        self._source = source
        self.offset = 0
        self.line = 1
        self.column = 1

    @property
    def text(self) -> str:
        return self._text

    def location(self) -> Location:
        """The location of the *next* character to be read."""
        return Location(self.line, self.column, self.offset, self._source)

    def at_end(self) -> bool:
        return self.offset >= self._length

    def peek(self, count: int = 1) -> str:
        """Return up to *count* characters without consuming them."""
        return self._text[self.offset : self.offset + count]

    def looking_at(self, literal: str) -> bool:
        return self._text.startswith(literal, self.offset)

    def advance(self, count: int = 1) -> str:
        """Consume and return *count* characters (fewer at end of input)."""
        chunk = self._text[self.offset : self.offset + count]
        for char in chunk:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.offset += len(chunk)
        return chunk

    def expect(self, literal: str, context: str) -> None:
        """Consume *literal* or raise a syntax error mentioning *context*."""
        if not self.looking_at(literal):
            found = self.peek(len(literal)) or "end of input"
            raise XmlSyntaxError(
                f"expected '{literal}' {context}, found '{found}'", self.location()
            )
        self.advance(len(literal))

    def skip_space(self) -> bool:
        """Consume a run of white space; return whether any was consumed."""
        start = self.offset
        while not self.at_end() and is_space(self._text[self.offset]):
            self.advance(1)
        return self.offset > start

    def require_space(self, context: str) -> None:
        if not self.skip_space():
            raise XmlSyntaxError(f"expected white space {context}", self.location())

    def read_name(self, context: str = "") -> str:
        """Consume an XML Name."""
        if self.at_end() or not is_name_start_char(self._text[self.offset]):
            what = f" {context}" if context else ""
            raise XmlSyntaxError(f"expected a name{what}", self.location())
        start = self.offset
        while not self.at_end() and is_name_char(self._text[self.offset]):
            self.advance(1)
        return self._text[start : self.offset]

    def read_until(self, terminator: str, context: str) -> str:
        """Consume text up to *terminator*, consuming the terminator too."""
        end = self._text.find(terminator, self.offset)
        if end < 0:
            raise XmlSyntaxError(
                f"unterminated {context} (missing '{terminator}')", self.location()
            )
        chunk = self._text[self.offset : end]
        self.advance(len(chunk) + len(terminator))
        return chunk

    def read_quoted(self, context: str) -> str:
        """Consume a single- or double-quoted literal, returning its body."""
        quote = self.peek()
        if quote not in ("'", '"'):
            raise XmlSyntaxError(f"expected quoted literal {context}", self.location())
        self.advance(1)
        return self.read_until(quote, context)

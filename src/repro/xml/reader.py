"""A position-tracking cursor over source text.

Shared by the XML parser, the DTD parser, and the P-XML template parser so
every error in the stack carries an exact line/column.

The cursor is optimized for the ingest hot path: ``advance`` is a plain
offset bump, names and white-space runs are consumed with compiled
regexes (one C-level scan instead of a Python loop per character), and
line/column bookkeeping is *lazy* — nothing counts newlines until a
:meth:`location` is actually requested, at which point the count resumes
from the last anchor so the total work stays one pass over the text.
The observable values are identical to eager per-character tracking
(``tests/xml/test_scanner_parity.py`` holds the two to the same answers).
"""

from __future__ import annotations

import re
import sys

from repro.errors import Location, XmlSyntaxError
from repro.xml.chars import name_char_class, name_start_class

#: one white-space run (the XML ``S`` production, greedily)
_SPACE_RUN = re.compile(r"[ \t\r\n]+")

#: one XML Name (productions 4/4a/5), compiled from the same ranges the
#: character-class predicates in :mod:`repro.xml.chars` use
_NAME = re.compile(f"[{name_start_class()}][{name_char_class()}]*")

_intern = sys.intern


class Reader:
    """Sequential reader with (lazily computed) line/column bookkeeping."""

    def __init__(self, text: str, source: str | None = None):
        self._text = text
        self._length = len(text)
        self._source = source
        self.offset = 0
        # Anchor of the last line/column computation: everything before
        # ``_anchor_offset`` has been counted into ``_anchor_line``, and
        # ``_line_start`` is the offset just after that line's newline.
        self._anchor_offset = 0
        self._anchor_line = 1
        self._line_start = 0

    @property
    def text(self) -> str:
        return self._text

    def _line_column(self) -> tuple[int, int]:
        offset = self.offset
        anchor = self._anchor_offset
        if offset > anchor:
            newlines = self._text.count("\n", anchor, offset)
            if newlines:
                self._anchor_line += newlines
                self._line_start = self._text.rfind("\n", anchor, offset) + 1
            self._anchor_offset = offset
        elif offset < anchor:  # pragma: no cover - parsers only move forward
            self._anchor_line = self._text.count("\n", 0, offset) + 1
            self._line_start = self._text.rfind("\n", 0, offset) + 1
            self._anchor_offset = offset
        return self._anchor_line, offset - self._line_start + 1

    @property
    def line(self) -> int:
        return self._line_column()[0]

    @property
    def column(self) -> int:
        return self._line_column()[1]

    def location(self) -> Location:
        """The location of the *next* character to be read.

        The forward-anchor advance of :meth:`_line_column` is inlined:
        this runs once per parser event, and the extra method call is
        measurable on the ingest hot path.
        """
        offset = self.offset
        anchor = self._anchor_offset
        if offset > anchor:
            newlines = self._text.count("\n", anchor, offset)
            if newlines:
                self._anchor_line += newlines
                self._line_start = self._text.rfind("\n", anchor, offset) + 1
            self._anchor_offset = offset
        elif offset < anchor:  # pragma: no cover - parsers only move forward
            self._line_column()
        return Location(
            self._anchor_line, offset - self._line_start + 1, offset, self._source
        )

    def at_end(self) -> bool:
        return self.offset >= self._length

    def peek(self, count: int = 1) -> str:
        """Return up to *count* characters without consuming them."""
        return self._text[self.offset : self.offset + count]

    def looking_at(self, literal: str) -> bool:
        return self._text.startswith(literal, self.offset)

    def advance(self, count: int = 1) -> str:
        """Consume and return *count* characters (fewer at end of input)."""
        chunk = self._text[self.offset : self.offset + count]
        self.offset += len(chunk)
        return chunk

    def expect(self, literal: str, context: str) -> None:
        """Consume *literal* or raise a syntax error mentioning *context*."""
        if not self._text.startswith(literal, self.offset):
            found = self.peek(len(literal)) or "end of input"
            raise XmlSyntaxError(
                f"expected '{literal}' {context}, found '{found}'", self.location()
            )
        self.offset += len(literal)

    def skip_space(self) -> bool:
        """Consume a run of white space; return whether any was consumed."""
        match = _SPACE_RUN.match(self._text, self.offset)
        if match is None:
            return False
        self.offset = match.end()
        return True

    def require_space(self, context: str) -> None:
        if not self.skip_space():
            raise XmlSyntaxError(f"expected white space {context}", self.location())

    def read_name(self, context: str = "") -> str:
        """Consume an XML Name (interned: names repeat heavily)."""
        match = _NAME.match(self._text, self.offset)
        if match is None:
            what = f" {context}" if context else ""
            raise XmlSyntaxError(f"expected a name{what}", self.location())
        self.offset = match.end()
        return _intern(match.group())

    def read_until(self, terminator: str, context: str) -> str:
        """Consume text up to *terminator*, consuming the terminator too."""
        end = self._text.find(terminator, self.offset)
        if end < 0:
            raise XmlSyntaxError(
                f"unterminated {context} (missing '{terminator}')", self.location()
            )
        chunk = self._text[self.offset : end]
        self.offset = end + len(terminator)
        return chunk

    def read_quoted(self, context: str) -> str:
        """Consume a single- or double-quoted literal, returning its body."""
        quote = self.peek()
        if quote not in ("'", '"'):
            raise XmlSyntaxError(f"expected quoted literal {context}", self.location())
        self.offset += 1
        return self.read_until(quote, context)

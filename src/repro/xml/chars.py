"""XML 1.0 character classes and name productions.

Implements the productions the rest of the stack relies on:

* ``Char``      (production 2)  — legal document characters,
* ``S``         (production 3)  — white space,
* ``NameStartChar`` / ``NameChar`` (productions 4/4a, 5th edition),
* ``Name``, ``Names``, ``Nmtoken`` (productions 5–8).

The ranges are transcribed from the specification rather than approximated
with :mod:`re` categories so that validity decisions are exact and
independent of the Python unicode database version.
"""

from __future__ import annotations

import functools

# NameStartChar ranges, XML 1.0 5th edition production [4].
_NAME_START_RANGES: tuple[tuple[int, int], ...] = (
    (ord(":"), ord(":")),
    (ord("A"), ord("Z")),
    (ord("_"), ord("_")),
    (ord("a"), ord("z")),
    (0xC0, 0xD6),
    (0xD8, 0xF6),
    (0xF8, 0x2FF),
    (0x370, 0x37D),
    (0x37F, 0x1FFF),
    (0x200C, 0x200D),
    (0x2070, 0x218F),
    (0x2C00, 0x2FEF),
    (0x3001, 0xD7FF),
    (0xF900, 0xFDCF),
    (0xFDF0, 0xFFFD),
    (0x10000, 0xEFFFF),
)

# Additional NameChar ranges, production [4a].
_NAME_EXTRA_RANGES: tuple[tuple[int, int], ...] = (
    (ord("-"), ord("-")),
    (ord("."), ord(".")),
    (ord("0"), ord("9")),
    (0xB7, 0xB7),
    (0x300, 0x36F),
    (0x203F, 0x2040),
)

# Legal document characters, production [2].
_CHAR_RANGES: tuple[tuple[int, int], ...] = (
    (0x9, 0xA),
    (0xD, 0xD),
    (0x20, 0xD7FF),
    (0xE000, 0xFFFD),
    (0x10000, 0x10FFFF),
)

WHITESPACE = "\t\n\r "


def _in_ranges(codepoint: int, ranges: tuple[tuple[int, int], ...]) -> bool:
    for low, high in ranges:
        if low <= codepoint <= high:
            return True
    return False


def is_xml_char(char: str) -> bool:
    """Return ``True`` if *char* may appear anywhere in an XML document."""
    return _in_ranges(ord(char), _CHAR_RANGES)


def is_space(char: str) -> bool:
    """Return ``True`` for the XML ``S`` production characters."""
    return char in WHITESPACE


def is_name_start_char(char: str) -> bool:
    """Return ``True`` if *char* may start an XML Name."""
    return _in_ranges(ord(char), _NAME_START_RANGES)


def is_name_char(char: str) -> bool:
    """Return ``True`` if *char* may continue an XML Name."""
    codepoint = ord(char)
    return _in_ranges(codepoint, _NAME_START_RANGES) or _in_ranges(
        codepoint, _NAME_EXTRA_RANGES
    )


def is_name(text: str) -> bool:
    """Return ``True`` if *text* matches the ``Name`` production."""
    if not text:
        return False
    if not is_name_start_char(text[0]):
        return False
    return all(is_name_char(char) for char in text[1:])


def is_ncname(text: str) -> bool:
    """Return ``True`` for a Name with no colon (Namespaces production 4)."""
    return is_name(text) and ":" not in text


def is_nmtoken(text: str) -> bool:
    """Return ``True`` if *text* matches the ``Nmtoken`` production."""
    if not text:
        return False
    return all(is_name_char(char) for char in text)


def _ranges_to_class(ranges: tuple[tuple[int, int], ...]) -> str:
    pieces: list[str] = []
    for low, high in ranges:
        if low == high:
            pieces.append(re_escape_char(chr(low)))
        else:
            pieces.append(f"{re_escape_char(chr(low))}-{re_escape_char(chr(high))}")
    return "".join(pieces)


def re_escape_char(char: str) -> str:
    """Escape one character for use inside a :mod:`re` character class."""
    if char in r"\^]-[":
        return "\\" + char
    return char


@functools.lru_cache(maxsize=None)
def name_start_class() -> str:
    """Regex-class body matching ``NameStartChar`` (for ``\\i``)."""
    return _ranges_to_class(_NAME_START_RANGES)


@functools.lru_cache(maxsize=None)
def name_char_class() -> str:
    """Regex-class body matching ``NameChar`` (for ``\\c``)."""
    return _ranges_to_class(_NAME_START_RANGES) + _ranges_to_class(
        _NAME_EXTRA_RANGES
    )


@functools.lru_cache(maxsize=None)
def char_class() -> str:
    """Regex-class body matching the ``Char`` production (legal chars)."""
    return _ranges_to_class(_CHAR_RANGES)


def collapse_whitespace(text: str) -> str:
    """Apply the schema ``whiteSpace=collapse`` normalization."""
    return " ".join(text.split())


def replace_whitespace(text: str) -> str:
    """Apply the schema ``whiteSpace=replace`` normalization."""
    table = str.maketrans({"\t": " ", "\n": " ", "\r": " "})
    return text.translate(table)

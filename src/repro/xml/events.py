"""Event types produced by the pull parser.

The parser reports a flat stream of these events; the DOM builder, the DTD
validator, and the streaming schema validator all consume the same stream,
which keeps the three "bindings" of the paper comparable: they differ only
in what they build from identical parse events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Location


@dataclass(frozen=True, slots=True)
class XmlDeclaration:
    """``<?xml version=... encoding=... standalone=...?>``"""

    version: str = "1.0"
    encoding: str | None = None
    standalone: bool | None = None
    location: Location = field(default_factory=Location, compare=False)


@dataclass(frozen=True, slots=True)
class DoctypeDecl:
    """``<!DOCTYPE name ...>`` with the raw internal subset, if any."""

    name: str
    public_id: str | None = None
    system_id: str | None = None
    internal_subset: str | None = None
    location: Location = field(default_factory=Location, compare=False)


@dataclass(frozen=True, slots=True)
class StartElement:
    """A start tag (or the start half of an empty-element tag)."""

    name: str
    attributes: tuple[tuple[str, str], ...] = ()
    #: True when the tag was written ``<name/>``.
    self_closing: bool = False
    location: Location = field(default_factory=Location, compare=False)

    def get(self, name: str, default: str | None = None) -> str | None:
        """Return the value of attribute *name*, or *default*."""
        for key, value in self.attributes:
            if key == name:
                return value
        return default


@dataclass(frozen=True, slots=True)
class EndElement:
    """An end tag (synthesized for empty-element tags)."""

    name: str
    location: Location = field(default_factory=Location, compare=False)


@dataclass(frozen=True, slots=True)
class Characters:
    """Character data; ``cdata`` marks text from a CDATA section."""

    data: str
    cdata: bool = False
    location: Location = field(default_factory=Location, compare=False)


@dataclass(frozen=True, slots=True)
class Comment:
    """``<!-- data -->``"""

    data: str
    location: Location = field(default_factory=Location, compare=False)


@dataclass(frozen=True, slots=True)
class ProcessingInstruction:
    """``<?target data?>``"""

    target: str
    data: str
    location: Location = field(default_factory=Location, compare=False)


Event = (
    XmlDeclaration
    | DoctypeDecl
    | StartElement
    | EndElement
    | Characters
    | Comment
    | ProcessingInstruction
)

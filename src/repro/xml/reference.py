"""The character-stepping reference parser — the fast scanner's oracle.

This module preserves the seed implementation of the pull parser: a
cursor that advances one character at a time, updating line/column on
every step, with no bulk scanning, no interning, and no laziness.  It is
deliberately *slow and obvious*; :mod:`repro.xml.parser` reimplements the
hot loops with compiled-regex / ``str.find`` slice scanning and must stay
byte-for-byte, event-for-event, error-for-error equivalent to this one.

``tests/xml/test_scanner_parity.py`` enforces that equivalence on a
golden corpus (CDATA, entity references, attribute normalization,
``]]>`` / comment edge cases), including identical exception types,
messages, and locations.  Keep this module frozen unless the XML
semantics themselves are meant to change — in that case change both
parsers and let the parity suite arbitrate.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import Location, XmlSyntaxError
from repro.xml.chars import is_name_char, is_name_start_char, is_space, is_xml_char
from repro.xml.entities import decode_char_reference, resolve_reference
from repro.xml.events import (
    Characters,
    Comment,
    DoctypeDecl,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)

_MAX_ENTITY_DEPTH = 16

#: total replacement characters one document may expand to — mirrors
#: ``repro.xml.parser._MAX_ENTITY_EXPANSION`` so the parity tests hold
#: on amplification bombs too (depth alone does not bound them).
_MAX_ENTITY_EXPANSION = 1 << 20


class ReferenceReader:
    """The seed ``Reader``: eager per-character line/column bookkeeping."""

    def __init__(self, text: str, source: str | None = None):
        self._text = text
        self._length = len(text)
        self._source = source
        self.offset = 0
        self.line = 1
        self.column = 1

    @property
    def text(self) -> str:
        return self._text

    def location(self) -> Location:
        return Location(self.line, self.column, self.offset, self._source)

    def at_end(self) -> bool:
        return self.offset >= self._length

    def peek(self, count: int = 1) -> str:
        return self._text[self.offset : self.offset + count]

    def looking_at(self, literal: str) -> bool:
        return self._text.startswith(literal, self.offset)

    def advance(self, count: int = 1) -> str:
        chunk = self._text[self.offset : self.offset + count]
        for char in chunk:
            if char == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.offset += len(chunk)
        return chunk

    def expect(self, literal: str, context: str) -> None:
        if not self.looking_at(literal):
            found = self.peek(len(literal)) or "end of input"
            raise XmlSyntaxError(
                f"expected '{literal}' {context}, found '{found}'", self.location()
            )
        self.advance(len(literal))

    def skip_space(self) -> bool:
        start = self.offset
        while not self.at_end() and is_space(self._text[self.offset]):
            self.advance(1)
        return self.offset > start

    def require_space(self, context: str) -> None:
        if not self.skip_space():
            raise XmlSyntaxError(f"expected white space {context}", self.location())

    def read_name(self, context: str = "") -> str:
        if self.at_end() or not is_name_start_char(self._text[self.offset]):
            what = f" {context}" if context else ""
            raise XmlSyntaxError(f"expected a name{what}", self.location())
        start = self.offset
        while not self.at_end() and is_name_char(self._text[self.offset]):
            self.advance(1)
        return self._text[start : self.offset]

    def read_until(self, terminator: str, context: str) -> str:
        end = self._text.find(terminator, self.offset)
        if end < 0:
            raise XmlSyntaxError(
                f"unterminated {context} (missing '{terminator}')", self.location()
            )
        chunk = self._text[self.offset : end]
        self.advance(len(chunk) + len(terminator))
        return chunk

    def read_quoted(self, context: str) -> str:
        quote = self.peek()
        if quote not in ("'", '"'):
            raise XmlSyntaxError(f"expected quoted literal {context}", self.location())
        self.advance(1)
        return self.read_until(quote, context)


class ReferencePullParser:
    """The seed character-stepping parser of *text* into an event stream."""

    def __init__(self, text: str, source: str | None = None):
        if text.startswith("﻿"):
            text = text[1:]
        self._reader = ReferenceReader(text, source)
        self._entities: dict[str, str] = {}
        self._expansion_total = 0

    def _charge_expansion(self, amount: int, location: Location) -> None:
        self._expansion_total += amount
        if self._expansion_total > _MAX_ENTITY_EXPANSION:
            raise XmlSyntaxError(
                "entity expansion exceeds "
                f"{_MAX_ENTITY_EXPANSION} characters "
                "(entity amplification attack?)",
                location,
            )

    def __iter__(self) -> Iterator[Event]:
        return self._parse_document()

    # -- document structure -------------------------------------------------

    def _parse_document(self) -> Iterator[Event]:
        reader = self._reader
        declaration = self._parse_xml_declaration()
        if declaration is not None:
            yield declaration
        seen_doctype = False
        seen_root = False
        while not reader.at_end():
            if reader.looking_at("<"):
                if reader.looking_at("<?"):
                    yield self._parse_processing_instruction()
                elif reader.looking_at("<!--"):
                    yield self._parse_comment()
                elif reader.looking_at("<!DOCTYPE"):
                    if seen_doctype:
                        raise XmlSyntaxError(
                            "multiple DOCTYPE declarations", reader.location()
                        )
                    if seen_root:
                        raise XmlSyntaxError(
                            "DOCTYPE after the root element", reader.location()
                        )
                    seen_doctype = True
                    yield self._parse_doctype()
                elif reader.looking_at("<!"):
                    raise XmlSyntaxError(
                        "markup declaration outside DOCTYPE", reader.location()
                    )
                else:
                    if seen_root:
                        raise XmlSyntaxError(
                            "document has more than one root element",
                            reader.location(),
                        )
                    seen_root = True
                    yield from self._parse_element()
            else:
                location = reader.location()
                if not reader.skip_space():
                    raise XmlSyntaxError(
                        "character data outside the root element", location
                    )
        if not seen_root:
            raise XmlSyntaxError("document has no root element", reader.location())

    def _parse_xml_declaration(self) -> XmlDeclaration | None:
        reader = self._reader
        if not reader.looking_at("<?xml") or (
            len(reader.peek(6)) == 6 and not reader.peek(6)[5].isspace()
        ):
            return None
        location = reader.location()
        reader.advance(5)
        attributes = self._parse_pseudo_attributes("in the XML declaration")
        reader.expect("?>", "to close the XML declaration")
        allowed = {"version", "encoding", "standalone"}
        unknown = [name for name, _ in attributes if name not in allowed]
        if unknown:
            raise XmlSyntaxError(
                f"unknown XML declaration attribute '{unknown[0]}'", location
            )
        values = dict(attributes)
        version = values.get("version")
        if version is None:
            raise XmlSyntaxError("XML declaration lacks 'version'", location)
        if not version.startswith("1."):
            raise XmlSyntaxError(f"unsupported XML version '{version}'", location)
        standalone: bool | None = None
        if "standalone" in values:
            if values["standalone"] not in ("yes", "no"):
                raise XmlSyntaxError(
                    "standalone must be 'yes' or 'no'", location
                )
            standalone = values["standalone"] == "yes"
        return XmlDeclaration(version, values.get("encoding"), standalone, location)

    def _parse_pseudo_attributes(self, context: str) -> list[tuple[str, str]]:
        reader = self._reader
        attributes: list[tuple[str, str]] = []
        while True:
            had_space = reader.skip_space()
            if reader.looking_at("?>") or reader.at_end():
                return attributes
            if not had_space:
                raise XmlSyntaxError(
                    f"expected white space {context}", reader.location()
                )
            name = reader.read_name(context)
            reader.skip_space()
            reader.expect("=", context)
            reader.skip_space()
            attributes.append((name, reader.read_quoted(context)))

    # -- miscellaneous markup ------------------------------------------------

    def _parse_comment(self) -> Comment:
        reader = self._reader
        location = reader.location()
        reader.expect("<!--", "to open a comment")
        body = reader.read_until("-->", "comment")
        if "--" in body:
            raise XmlSyntaxError("'--' is not allowed inside a comment", location)
        self._check_chars(body, location)
        return Comment(body, location)

    def _parse_processing_instruction(self) -> ProcessingInstruction:
        reader = self._reader
        location = reader.location()
        reader.expect("<?", "to open a processing instruction")
        target = reader.read_name("as a processing instruction target")
        if target.lower() == "xml":
            raise XmlSyntaxError(
                "processing instruction target 'xml' is reserved", location
            )
        if reader.looking_at("?>"):
            reader.advance(2)
            return ProcessingInstruction(target, "", location)
        reader.require_space("after the processing instruction target")
        data = reader.read_until("?>", "processing instruction")
        self._check_chars(data, location)
        return ProcessingInstruction(target, data, location)

    def _parse_doctype(self) -> DoctypeDecl:
        reader = self._reader
        location = reader.location()
        reader.expect("<!DOCTYPE", "to open the DOCTYPE declaration")
        reader.require_space("after '<!DOCTYPE'")
        name = reader.read_name("as the document type name")
        public_id: str | None = None
        system_id: str | None = None
        reader.skip_space()
        if reader.looking_at("PUBLIC"):
            reader.advance(len("PUBLIC"))
            reader.require_space("after 'PUBLIC'")
            public_id = reader.read_quoted("as a public identifier")
            reader.require_space("between public and system identifiers")
            system_id = reader.read_quoted("as a system identifier")
        elif reader.looking_at("SYSTEM"):
            reader.advance(len("SYSTEM"))
            reader.require_space("after 'SYSTEM'")
            system_id = reader.read_quoted("as a system identifier")
        reader.skip_space()
        internal_subset: str | None = None
        if reader.looking_at("["):
            reader.advance(1)
            internal_subset = self._read_internal_subset()
            self._declare_subset_entities(internal_subset, location)
        reader.skip_space()
        reader.expect(">", "to close the DOCTYPE declaration")
        return DoctypeDecl(name, public_id, system_id, internal_subset, location)

    def _read_internal_subset(self) -> str:
        reader = self._reader
        start = reader.offset
        while not reader.at_end():
            char = reader.peek()
            if char == "]":
                subset = reader.text[start : reader.offset]
                reader.advance(1)
                return subset
            if char in ("'", '"'):
                reader.advance(1)
                reader.read_until(char, "literal in the internal subset")
            elif reader.looking_at("<!--"):
                reader.advance(4)
                reader.read_until("-->", "comment in the internal subset")
            else:
                reader.advance(1)
        raise XmlSyntaxError(
            "unterminated internal DTD subset", reader.location()
        )

    def _declare_subset_entities(self, subset: str, location: Location) -> None:
        inner = ReferenceReader(subset)
        while not inner.at_end():
            if inner.looking_at("<!ENTITY"):
                inner.advance(len("<!ENTITY"))
                inner.require_space("after '<!ENTITY'")
                if inner.looking_at("%"):
                    inner.read_until(">", "parameter entity declaration")
                    continue
                name = inner.read_name("as an entity name")
                inner.require_space("after the entity name")
                if inner.looking_at("SYSTEM") or inner.looking_at("PUBLIC"):
                    inner.read_until(">", "external entity declaration")
                    continue
                value = inner.read_quoted("as an entity value")
                inner.skip_space()
                inner.expect(">", "to close the entity declaration")
                self._entities.setdefault(
                    name, self._expand_entity_value(value, location)
                )
            elif inner.looking_at("<!--"):
                inner.advance(4)
                inner.read_until("-->", "comment in the internal subset")
            else:
                inner.advance(1)

    def _expand_entity_value(self, value: str, location: Location) -> str:
        pieces: list[str] = []
        index = 0
        while True:
            amp = value.find("&#", index)
            if amp < 0:
                pieces.append(value[index:])
                return "".join(pieces)
            semi = value.find(";", amp)
            if semi < 0:
                raise XmlSyntaxError(
                    "unterminated character reference in entity value", location
                )
            pieces.append(value[index:amp])
            pieces.append(resolve_reference(value[amp + 1 : semi], None, location))
            index = semi + 1

    # -- elements ------------------------------------------------------------

    def _parse_element(self) -> Iterator[Event]:
        reader = self._reader
        open_tags: list[str] = []
        while True:
            if reader.at_end():
                raise XmlSyntaxError(
                    f"unexpected end of input; <{open_tags[-1]}> is not "
                    "closed" if open_tags else "unexpected end of input",
                    reader.location(),
                )
            if reader.looking_at("</"):
                location = reader.location()
                reader.advance(2)
                name = reader.read_name("in an end tag")
                reader.skip_space()
                reader.expect(">", "to close the end tag")
                if not open_tags:
                    raise XmlSyntaxError(
                        f"unexpected end tag </{name}>", location
                    )
                expected = open_tags.pop()
                if name != expected:
                    raise XmlSyntaxError(
                        f"end tag </{name}> does not match <{expected}>", location
                    )
                yield EndElement(name, location)
                if not open_tags:
                    return
            elif reader.looking_at("<!--"):
                yield self._parse_comment()
            elif reader.looking_at("<![CDATA["):
                yield self._parse_cdata()
            elif reader.looking_at("<?"):
                yield self._parse_processing_instruction()
            elif reader.looking_at("<!"):
                raise XmlSyntaxError(
                    "markup declaration inside element content", reader.location()
                )
            elif reader.looking_at("<"):
                start, end = self._parse_start_tag()
                yield start
                if end is not None:
                    yield end
                    if not open_tags:
                        return
                else:
                    open_tags.append(start.name)
            else:
                if not open_tags:
                    raise XmlSyntaxError(
                        "expected an element", reader.location()
                    )
                yield self._parse_characters()

    def _parse_start_tag(self) -> tuple[StartElement, EndElement | None]:
        reader = self._reader
        location = reader.location()
        reader.expect("<", "to open a start tag")
        name = reader.read_name("in a start tag")
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            had_space = reader.skip_space()
            if reader.looking_at("/>"):
                reader.advance(2)
                start = StartElement(name, tuple(attributes), True, location)
                return start, EndElement(name, location)
            if reader.looking_at(">"):
                reader.advance(1)
                return StartElement(name, tuple(attributes), False, location), None
            if reader.at_end():
                raise XmlSyntaxError(f"unterminated start tag <{name}>", location)
            if not had_space:
                raise XmlSyntaxError(
                    "expected white space between attributes", reader.location()
                )
            attr_location = reader.location()
            attr_name = reader.read_name("as an attribute name")
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute '{attr_name}' on <{name}>", attr_location
                )
            seen.add(attr_name)
            reader.skip_space()
            reader.expect("=", f"after attribute name '{attr_name}'")
            reader.skip_space()
            raw = reader.read_quoted(f"as the value of '{attr_name}'")
            attributes.append(
                (attr_name, self._normalize_attribute(raw, attr_location))
            )

    def _normalize_attribute(
        self, raw: str, location: Location, depth: int = 0
    ) -> str:
        if depth > _MAX_ENTITY_DEPTH:
            raise XmlSyntaxError(
                "entity expansion nested too deeply (recursive entity?)",
                location,
            )
        if "<" in raw:
            raise XmlSyntaxError("'<' is not allowed in attribute values", location)
        self._check_chars(raw, location)
        pieces: list[str] = []
        index = 0
        length = len(raw)
        while index < length:
            char = raw[index]
            if char == "&":
                semi = raw.find(";", index + 1)
                if semi < 0:
                    raise XmlSyntaxError(
                        "unterminated reference (missing ';')", location
                    )
                body = raw[index + 1 : semi]
                if body.startswith("#"):
                    pieces.append(decode_char_reference(body, location))
                else:
                    replacement = resolve_reference(
                        body, self._entities, location
                    )
                    if body in self._entities:
                        self._charge_expansion(len(replacement), location)
                        pieces.append(
                            self._normalize_attribute(
                                replacement, location, depth + 1
                            )
                        )
                    else:
                        pieces.append(replacement)
                index = semi + 1
            elif char == "\r":
                # §2.11 end-of-line handling runs before attribute-value
                # normalization, so a literal "\r\n" pair is one line
                # break and becomes one space, not two.
                if index + 1 < length and raw[index + 1] == "\n":
                    index += 1
                pieces.append(" ")
                index += 1
            elif char in "\t\n":
                pieces.append(" ")
                index += 1
            else:
                pieces.append(char)
                index += 1
        return "".join(pieces)

    def _parse_characters(self) -> Characters:
        reader = self._reader
        location = reader.location()
        pieces: list[str] = []
        while not reader.at_end() and not reader.looking_at("<"):
            char = reader.peek()
            if char == "&":
                reader.advance(1)
                body = reader.read_until(";", "reference")
                pieces.append(self._resolve_general(body, location, depth=0))
            elif char == "]" and reader.looking_at("]]>"):
                raise XmlSyntaxError(
                    "']]>' is not allowed in character data", reader.location()
                )
            elif char == "\r":
                # §2.11 end-of-line handling: "\r\n" and a bare "\r"
                # both reach the application as a single "\n".
                reader.advance(1)
                if reader.peek() == "\n":
                    reader.advance(1)
                pieces.append("\n")
            else:
                if not is_xml_char(char):
                    raise XmlSyntaxError(
                        f"illegal character U+{ord(char):04X}", reader.location()
                    )
                pieces.append(reader.advance(1))
        return Characters("".join(pieces), False, location)

    def _parse_cdata(self) -> Characters:
        reader = self._reader
        location = reader.location()
        reader.expect("<![CDATA[", "to open a CDATA section")
        body = reader.read_until("]]>", "CDATA section")
        self._check_chars(body, location)
        # §2.11, stated with the seed's regex-free idiom: the two-step
        # replace normalizes "\r\n" first so the bare-"\r" pass cannot
        # double a pair into two newlines.
        body = body.replace("\r\n", "\n").replace("\r", "\n")
        return Characters(body, True, location)

    # -- reference expansion ---------------------------------------------------

    def _resolve_general(self, body: str, location: Location, depth: int) -> str:
        if depth > _MAX_ENTITY_DEPTH:
            raise XmlSyntaxError(
                f"entity expansion nested deeper than {_MAX_ENTITY_DEPTH} "
                "(recursive entity?)",
                location,
            )
        replacement = resolve_reference(body, self._entities, location)
        if body.startswith("#") or body not in self._entities:
            return replacement
        self._charge_expansion(len(replacement), location)
        return self._expand_references(replacement, location, depth + 1)

    def _expand_references(self, text: str, location: Location, depth: int) -> str:
        if "&" not in text:
            return text
        pieces: list[str] = []
        index = 0
        while True:
            amp = text.find("&", index)
            if amp < 0:
                pieces.append(text[index:])
                return "".join(pieces)
            semi = text.find(";", amp + 1)
            if semi < 0:
                raise XmlSyntaxError("unterminated reference (missing ';')", location)
            pieces.append(text[index:amp])
            pieces.append(self._resolve_general(text[amp + 1 : semi], location, depth))
            index = semi + 1

    def _check_chars(self, text: str, location: Location) -> None:
        for char in text:
            if not is_xml_char(char):
                raise XmlSyntaxError(
                    f"illegal character U+{ord(char):04X}", location
                )


def reference_events(text: str, source: str | None = None) -> list[Event]:
    """Parse *text* completely with the reference parser."""
    return list(ReferencePullParser(text, source))

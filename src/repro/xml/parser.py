"""A well-formedness-checking pull parser for XML 1.0.

The parser is a generator of :mod:`repro.xml.events` values.  It enforces
the well-formedness constraints the paper's Sect. 2 distinguishes from
validity: balanced tags, a single root element, unique attributes, legal
names and characters, resolvable entity references.  Validity — the
stronger property — is checked by the layers above (DTD, XSD, V-DOM).

The hot loops scan in bulk: character-data runs, names, and white space
are consumed as slices located by compiled regexes and ``str.find``
rather than per-character stepping, and line/column positions are
computed lazily by the :class:`~repro.xml.reader.Reader`.  The
character-stepping original survives as
:mod:`repro.xml.reference` — the oracle the parity tests hold this
implementation to, event for event and error for error.
"""

from __future__ import annotations

import re
import sys

from collections.abc import Iterator

from repro.errors import Location, XmlSyntaxError
from repro.xml.chars import char_class, name_char_class, name_start_class
from repro.xml.entities import decode_char_reference, resolve_reference
from repro.xml.events import (
    Characters,
    Comment,
    DoctypeDecl,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)
from repro.xml.reader import Reader

_MAX_ENTITY_DEPTH = 16

#: total characters of entity replacement text one document may produce.
#: Depth alone does not bound *amplification*: ten levels of ten
#: references each stay well under ``_MAX_ENTITY_DEPTH`` while expanding
#: to 10**10 characters (the "billion laughs" shape).  Exceeding the
#: budget fails fast with an :class:`XmlSyntaxError` instead of
#: exhausting memory.
_MAX_ENTITY_EXPANSION = 1 << 20

#: the next markup or reference inside a character-data run
# One alternation finds the next structural stop — markup/reference
# delimiter or a stray CDATA terminator — in a single compiled scan
# instead of chained ``search`` + ``str.find`` passes over the run.
_TEXT_STOP = re.compile(r"[<&]|]]>")

#: XML 1.0 §2.11: a literal ``\r\n`` pair or a bare ``\r`` in parsed text
#: is passed to the application as a single ``\n``.  Characters arriving
#: via character references (``&#13;``) are *not* normalized — reference
#: resolution happens after end-of-line handling in the spec's model.
_LINE_BREAKS = re.compile("\r\n?")

#: any character outside the ``Char`` production (one C-level scan
#: replaces the per-character ``is_xml_char`` loop)
_ILLEGAL_CHAR = re.compile(f"[^{char_class()}]")

#: attribute values containing none of these need no normalization at
#: all — no references to resolve, no white space to fold, no '<' error
_ATTR_SPECIAL = re.compile(r"[&<\t\n\r]")

#: one complete, already-normalized attribute: leading space, a Name, '=',
#: a double-quoted value containing nothing _ATTR_SPECIAL matches.  One
#: C-level match consumes the whole attribute; anything else (single
#: quotes, references, errors) drops to the generic loop for exact parity.
_ATTR_QUICK = re.compile(
    f"[ \\t\\r\\n]+([{name_start_class()}][{name_char_class()}]*)"
    '[ \\t\\r\\n]*=[ \\t\\r\\n]*"([^"&<\\t\\n\\r]*)"'
)

_intern = sys.intern


def _normalize_line_endings(text: str) -> str:
    """Apply §2.11 end-of-line normalization to one literal text run."""
    if "\r" not in text:
        return text
    return _LINE_BREAKS.sub("\n", text)


class PullParser:
    """Parse *text* into an event stream.

    Usage::

        for event in PullParser(text):
            ...

    The iterator raises :class:`~repro.errors.XmlSyntaxError` on the first
    well-formedness violation.  General entities declared in an internal
    DTD subset are honoured for content and attribute values.
    """

    def __init__(self, text: str, source: str | None = None):
        if text.startswith("﻿"):
            text = text[1:]
        self._reader = Reader(text, source)
        self._entities: dict[str, str] = {}
        self._expansion_total = 0

    def _charge_expansion(self, amount: int, location: Location) -> None:
        """Count *amount* characters of replacement text against the
        per-document amplification budget."""
        self._expansion_total += amount
        if self._expansion_total > _MAX_ENTITY_EXPANSION:
            raise XmlSyntaxError(
                "entity expansion exceeds "
                f"{_MAX_ENTITY_EXPANSION} characters "
                "(entity amplification attack?)",
                location,
            )

    def __iter__(self) -> Iterator[Event]:
        return self._parse_document()

    # -- document structure -------------------------------------------------

    def _parse_document(self) -> Iterator[Event]:
        reader = self._reader
        declaration = self._parse_xml_declaration()
        if declaration is not None:
            yield declaration
        seen_doctype = False
        seen_root = False
        while not reader.at_end():
            if reader.looking_at("<"):
                if reader.looking_at("<?"):
                    yield self._parse_processing_instruction()
                elif reader.looking_at("<!--"):
                    yield self._parse_comment()
                elif reader.looking_at("<!DOCTYPE"):
                    if seen_doctype:
                        raise XmlSyntaxError(
                            "multiple DOCTYPE declarations", reader.location()
                        )
                    if seen_root:
                        raise XmlSyntaxError(
                            "DOCTYPE after the root element", reader.location()
                        )
                    seen_doctype = True
                    yield self._parse_doctype()
                elif reader.looking_at("<!"):
                    raise XmlSyntaxError(
                        "markup declaration outside DOCTYPE", reader.location()
                    )
                else:
                    if seen_root:
                        raise XmlSyntaxError(
                            "document has more than one root element",
                            reader.location(),
                        )
                    seen_root = True
                    yield from self._parse_element()
            else:
                location = reader.location()
                if not reader.skip_space():
                    raise XmlSyntaxError(
                        "character data outside the root element", location
                    )
        if not seen_root:
            raise XmlSyntaxError("document has no root element", reader.location())

    def _parse_xml_declaration(self) -> XmlDeclaration | None:
        reader = self._reader
        if not reader.looking_at("<?xml") or (
            len(reader.peek(6)) == 6 and not reader.peek(6)[5].isspace()
        ):
            return None
        location = reader.location()
        reader.advance(5)
        attributes = self._parse_pseudo_attributes("in the XML declaration")
        reader.expect("?>", "to close the XML declaration")
        allowed = {"version", "encoding", "standalone"}
        unknown = [name for name, _ in attributes if name not in allowed]
        if unknown:
            raise XmlSyntaxError(
                f"unknown XML declaration attribute '{unknown[0]}'", location
            )
        values = dict(attributes)
        version = values.get("version")
        if version is None:
            raise XmlSyntaxError("XML declaration lacks 'version'", location)
        if not version.startswith("1."):
            raise XmlSyntaxError(f"unsupported XML version '{version}'", location)
        standalone: bool | None = None
        if "standalone" in values:
            if values["standalone"] not in ("yes", "no"):
                raise XmlSyntaxError(
                    "standalone must be 'yes' or 'no'", location
                )
            standalone = values["standalone"] == "yes"
        return XmlDeclaration(version, values.get("encoding"), standalone, location)

    def _parse_pseudo_attributes(self, context: str) -> list[tuple[str, str]]:
        reader = self._reader
        attributes: list[tuple[str, str]] = []
        while True:
            had_space = reader.skip_space()
            if reader.looking_at("?>") or reader.at_end():
                return attributes
            if not had_space:
                raise XmlSyntaxError(
                    f"expected white space {context}", reader.location()
                )
            name = reader.read_name(context)
            reader.skip_space()
            reader.expect("=", context)
            reader.skip_space()
            attributes.append((name, reader.read_quoted(context)))

    # -- miscellaneous markup ------------------------------------------------

    def _parse_comment(self) -> Comment:
        reader = self._reader
        location = reader.location()
        reader.expect("<!--", "to open a comment")
        body = reader.read_until("-->", "comment")
        if "--" in body:
            raise XmlSyntaxError("'--' is not allowed inside a comment", location)
        self._check_chars(body, location)
        return Comment(body, location)

    def _parse_processing_instruction(self) -> ProcessingInstruction:
        reader = self._reader
        location = reader.location()
        reader.expect("<?", "to open a processing instruction")
        target = reader.read_name("as a processing instruction target")
        if target.lower() == "xml":
            raise XmlSyntaxError(
                "processing instruction target 'xml' is reserved", location
            )
        if reader.looking_at("?>"):
            reader.advance(2)
            return ProcessingInstruction(target, "", location)
        reader.require_space("after the processing instruction target")
        data = reader.read_until("?>", "processing instruction")
        self._check_chars(data, location)
        return ProcessingInstruction(target, data, location)

    def _parse_doctype(self) -> DoctypeDecl:
        reader = self._reader
        location = reader.location()
        reader.expect("<!DOCTYPE", "to open the DOCTYPE declaration")
        reader.require_space("after '<!DOCTYPE'")
        name = reader.read_name("as the document type name")
        public_id: str | None = None
        system_id: str | None = None
        reader.skip_space()
        if reader.looking_at("PUBLIC"):
            reader.advance(len("PUBLIC"))
            reader.require_space("after 'PUBLIC'")
            public_id = reader.read_quoted("as a public identifier")
            reader.require_space("between public and system identifiers")
            system_id = reader.read_quoted("as a system identifier")
        elif reader.looking_at("SYSTEM"):
            reader.advance(len("SYSTEM"))
            reader.require_space("after 'SYSTEM'")
            system_id = reader.read_quoted("as a system identifier")
        reader.skip_space()
        internal_subset: str | None = None
        if reader.looking_at("["):
            reader.advance(1)
            internal_subset = self._read_internal_subset()
            self._declare_subset_entities(internal_subset, location)
        reader.skip_space()
        reader.expect(">", "to close the DOCTYPE declaration")
        return DoctypeDecl(name, public_id, system_id, internal_subset, location)

    def _read_internal_subset(self) -> str:
        """Consume text up to the ']' closing the internal subset.

        Quoted literals and comments inside the subset may contain ']', so
        a small scanner is needed rather than a plain find.
        """
        reader = self._reader
        start = reader.offset
        while not reader.at_end():
            char = reader.peek()
            if char == "]":
                subset = reader.text[start : reader.offset]
                reader.advance(1)
                return subset
            if char in ("'", '"'):
                reader.advance(1)
                reader.read_until(char, "literal in the internal subset")
            elif reader.looking_at("<!--"):
                reader.advance(4)
                reader.read_until("-->", "comment in the internal subset")
            else:
                reader.advance(1)
        raise XmlSyntaxError(
            "unterminated internal DTD subset", reader.location()
        )

    def _declare_subset_entities(self, subset: str, location: Location) -> None:
        """Extract ``<!ENTITY name "value">`` declarations for later use."""
        inner = Reader(subset)
        while not inner.at_end():
            if inner.looking_at("<!ENTITY"):
                inner.advance(len("<!ENTITY"))
                inner.require_space("after '<!ENTITY'")
                if inner.looking_at("%"):
                    # Parameter entities only matter inside the DTD itself;
                    # the DTD package handles them.
                    inner.read_until(">", "parameter entity declaration")
                    continue
                name = inner.read_name("as an entity name")
                inner.require_space("after the entity name")
                if inner.looking_at("SYSTEM") or inner.looking_at("PUBLIC"):
                    # External entities are not fetched (no I/O here).
                    inner.read_until(">", "external entity declaration")
                    continue
                value = inner.read_quoted("as an entity value")
                inner.skip_space()
                inner.expect(">", "to close the entity declaration")
                # First declaration binds (XML 1.0 Sect. 4.2).
                self._entities.setdefault(
                    name, self._expand_entity_value(value, location)
                )
            elif inner.looking_at("<!--"):
                inner.advance(4)
                inner.read_until("-->", "comment in the internal subset")
            else:
                inner.advance(1)

    def _expand_entity_value(self, value: str, location: Location) -> str:
        """Resolve character references inside an entity value now.

        General-entity references inside the value stay textual and are
        expanded at use time, which lets us detect recursion.
        """
        pieces: list[str] = []
        index = 0
        while True:
            amp = value.find("&#", index)
            if amp < 0:
                pieces.append(value[index:])
                return "".join(pieces)
            semi = value.find(";", amp)
            if semi < 0:
                raise XmlSyntaxError(
                    "unterminated character reference in entity value", location
                )
            pieces.append(value[index:amp])
            pieces.append(resolve_reference(value[amp + 1 : semi], None, location))
            index = semi + 1

    # -- elements ------------------------------------------------------------

    def _parse_element(self) -> Iterator[Event]:
        """Parse one element and all of its content, iteratively.

        Depth is tracked with an explicit ``open_tags`` stack (never the
        Python call stack), so nesting is bounded by memory alone — the
        10,000-deep regression test in ``tests/xml`` pins that down.
        Dispatch looks at the next one or two characters directly
        instead of running a ``looking_at`` ladder per content item.
        """
        reader = self._reader
        text = reader.text
        length = len(text)
        open_tags: list[str] = []
        while True:
            offset = reader.offset
            if offset >= length:
                raise XmlSyntaxError(
                    f"unexpected end of input; <{open_tags[-1]}> is not "
                    "closed" if open_tags else "unexpected end of input",
                    reader.location(),
                )
            if text[offset] != "<":
                if not open_tags:
                    raise XmlSyntaxError(
                        "expected an element", reader.location()
                    )
                yield self._parse_characters()
                continue
            after = text[offset + 1] if offset + 1 < length else ""
            if after == "/":
                location = reader.location()
                reader.offset = offset + 2
                name = reader.read_name("in an end tag")
                reader.skip_space()
                reader.expect(">", "to close the end tag")
                if not open_tags:
                    raise XmlSyntaxError(
                        f"unexpected end tag </{name}>", location
                    )
                expected = open_tags.pop()
                if name != expected:
                    raise XmlSyntaxError(
                        f"end tag </{name}> does not match <{expected}>", location
                    )
                yield EndElement(name, location)
                if not open_tags:
                    return
            elif after == "!":
                if text.startswith("<!--", offset):
                    yield self._parse_comment()
                elif text.startswith("<![CDATA[", offset):
                    yield self._parse_cdata()
                else:
                    raise XmlSyntaxError(
                        "markup declaration inside element content",
                        reader.location(),
                    )
            elif after == "?":
                yield self._parse_processing_instruction()
            else:
                start, end = self._parse_start_tag()
                yield start
                if end is not None:
                    yield end
                    if not open_tags:
                        return
                else:
                    open_tags.append(start.name)

    def _parse_start_tag(self) -> tuple[StartElement, EndElement | None]:
        reader = self._reader
        text = reader.text
        length = len(text)
        location = reader.location()
        # Callers dispatch on a literal '<' before calling, so consuming it
        # is a plain offset bump.
        reader.offset += 1
        name = reader.read_name("in a start tag")
        attributes: list[tuple[str, str]] = []
        seen: set[str] = set()
        while True:
            match = _ATTR_QUICK.match(text, reader.offset)
            if match is not None:
                attr_name = match.group(1)
                value = match.group(2)
                if attr_name not in seen and _ILLEGAL_CHAR.search(value) is None:
                    seen.add(attr_name)
                    attributes.append((_intern(attr_name), value))
                    reader.offset = match.end()
                    continue
                # Duplicate name or illegal character: re-walk this
                # attribute through the generic path below so the error
                # (type, message, location) matches the reference parser.
            had_space = reader.skip_space()
            offset = reader.offset
            char = text[offset] if offset < length else ""
            if char == ">":
                reader.offset = offset + 1
                return StartElement(name, tuple(attributes), False, location), None
            if char == "/" and text.startswith("/>", offset):
                reader.offset = offset + 2
                start = StartElement(name, tuple(attributes), True, location)
                return start, EndElement(name, location)
            if offset >= length:
                raise XmlSyntaxError(f"unterminated start tag <{name}>", location)
            if not had_space:
                raise XmlSyntaxError(
                    "expected white space between attributes", reader.location()
                )
            attr_location = reader.location()
            attr_name = reader.read_name("as an attribute name")
            if attr_name in seen:
                raise XmlSyntaxError(
                    f"duplicate attribute '{attr_name}' on <{name}>", attr_location
                )
            seen.add(attr_name)
            reader.skip_space()
            reader.expect("=", f"after attribute name '{attr_name}'")
            reader.skip_space()
            raw = reader.read_quoted(f"as the value of '{attr_name}'")
            attributes.append(
                (attr_name, self._normalize_attribute(raw, attr_location))
            )

    def _normalize_attribute(
        self, raw: str, location: Location, depth: int = 0
    ) -> str:
        """Resolve references and apply attribute-value normalization.

        Per XML 1.0 §3.3.3, literal white space becomes a space, but
        characters arriving via *character references* are appended
        verbatim (``&#10;`` stays a newline), and a ``<`` smuggled in
        through an entity is a well-formedness error just like a
        literal one.
        """
        if depth > _MAX_ENTITY_DEPTH:
            raise XmlSyntaxError(
                "entity expansion nested too deeply (recursive entity?)",
                location,
            )
        if _ATTR_SPECIAL.search(raw) is None:
            # Common case: nothing to resolve or normalize.  The value is
            # returned as-is after the same legality scan the slow path runs.
            self._check_chars(raw, location)
            return raw
        if "<" in raw:
            raise XmlSyntaxError("'<' is not allowed in attribute values", location)
        self._check_chars(raw, location)
        pieces: list[str] = []
        index = 0
        length = len(raw)
        while index < length:
            char = raw[index]
            if char == "&":
                semi = raw.find(";", index + 1)
                if semi < 0:
                    raise XmlSyntaxError(
                        "unterminated reference (missing ';')", location
                    )
                body = raw[index + 1 : semi]
                if body.startswith("#"):
                    pieces.append(decode_char_reference(body, location))
                else:
                    replacement = resolve_reference(
                        body, self._entities, location
                    )
                    if body in self._entities:
                        self._charge_expansion(len(replacement), location)
                        # Entity replacement text is processed recursively,
                        # with its own literal whitespace normalized.
                        pieces.append(
                            self._normalize_attribute(
                                replacement, location, depth + 1
                            )
                        )
                    else:
                        pieces.append(replacement)
                index = semi + 1
            elif char == "\r":
                # §2.11 end-of-line handling runs before attribute-value
                # normalization, so a literal "\r\n" pair is one line
                # break and becomes one space, not two.
                if index + 1 < length and raw[index + 1] == "\n":
                    index += 1
                pieces.append(" ")
                index += 1
            elif char in "\t\n":
                pieces.append(" ")
                index += 1
            else:
                pieces.append(char)
                index += 1
        return "".join(pieces)

    def _parse_characters(self) -> Characters:
        """Consume one character-data run up to the next ``<``.

        The run is eaten in whole slices between markup/reference
        delimiters; the next ``<``, ``&``, or stray ``]]>`` is found by
        a *single* precompiled alternation (:data:`_TEXT_STOP`), with an
        illegal-character scan over just the accepted slice.  Whichever
        problem occurs first in document order is reported — exactly as
        the character-stepping reference parser would.
        """
        reader = self._reader
        text = reader.text
        length = len(text)
        location = reader.location()
        offset = reader.offset
        stop_match = _TEXT_STOP.search(text, offset)
        found = stop_match.group() if stop_match is not None else ""
        if found != "&":
            # Single-slice run with no references — the overwhelmingly
            # common case (indentation and plain text between tags).
            stop = stop_match.start() if stop_match is not None else length
            run = text[offset:stop]
            # The run ends at the first structural stop, so any illegal
            # character inside it necessarily precedes a ``]]>`` stop.
            bad = _ILLEGAL_CHAR.search(run)
            if bad is not None:
                reader.offset = offset + bad.start()
                raise XmlSyntaxError(
                    f"illegal character U+{ord(bad.group()):04X}",
                    reader.location(),
                )
            if found == "]]>":
                reader.offset = stop
                raise XmlSyntaxError(
                    "']]>' is not allowed in character data", reader.location()
                )
            reader.offset = stop
            return Characters(_normalize_line_endings(run), False, location)
        pieces: list[str] = []
        while offset < length:
            char = text[offset]
            if char == "<":
                break
            if char == "&":
                reader.offset = offset + 1
                body = reader.read_until(";", "reference")
                pieces.append(self._resolve_general(body, location, depth=0))
                offset = reader.offset
                continue
            stop_match = _TEXT_STOP.search(text, offset)
            found = stop_match.group() if stop_match is not None else ""
            stop = stop_match.start() if stop_match is not None else length
            run = text[offset:stop]
            bad = _ILLEGAL_CHAR.search(run)
            if bad is not None:
                reader.offset = offset + bad.start()
                raise XmlSyntaxError(
                    f"illegal character U+{ord(bad.group()):04X}",
                    reader.location(),
                )
            if found == "]]>":
                reader.offset = stop
                raise XmlSyntaxError(
                    "']]>' is not allowed in character data", reader.location()
                )
            pieces.append(_normalize_line_endings(run))
            offset = stop
        reader.offset = offset
        return Characters("".join(pieces), False, location)

    def _parse_cdata(self) -> Characters:
        reader = self._reader
        location = reader.location()
        reader.expect("<![CDATA[", "to open a CDATA section")
        body = reader.read_until("]]>", "CDATA section")
        self._check_chars(body, location)
        return Characters(_normalize_line_endings(body), True, location)

    # -- reference expansion ---------------------------------------------------

    def _resolve_general(self, body: str, location: Location, depth: int) -> str:
        if depth > _MAX_ENTITY_DEPTH:
            raise XmlSyntaxError(
                f"entity expansion nested deeper than {_MAX_ENTITY_DEPTH} "
                "(recursive entity?)",
                location,
            )
        replacement = resolve_reference(body, self._entities, location)
        if body.startswith("#") or body not in self._entities:
            return replacement
        self._charge_expansion(len(replacement), location)
        # Replacement text of a declared entity may itself contain references.
        return self._expand_references(replacement, location, depth + 1)

    def _expand_references(self, text: str, location: Location, depth: int) -> str:
        if "&" not in text:
            return text
        pieces: list[str] = []
        index = 0
        while True:
            amp = text.find("&", index)
            if amp < 0:
                pieces.append(text[index:])
                return "".join(pieces)
            semi = text.find(";", amp + 1)
            if semi < 0:
                raise XmlSyntaxError("unterminated reference (missing ';')", location)
            pieces.append(text[index:amp])
            pieces.append(self._resolve_general(text[amp + 1 : semi], location, depth))
            index = semi + 1

    def _check_chars(self, text: str, location: Location) -> None:
        bad = _ILLEGAL_CHAR.search(text)
        if bad is not None:
            raise XmlSyntaxError(
                f"illegal character U+{ord(bad.group()):04X}", location
            )


def iter_events(text: str, source: str | None = None) -> Iterator[Event]:
    """Iterate parse events lazily — nothing is materialized up front.

    This is the form every streaming consumer should use (and what
    :func:`repro.dom.builder.parse_document` and the streaming schema
    validator do): each event is produced on demand, so a consumer that
    stops early never pays for the rest of the document.
    """
    return iter(PullParser(text, source))


def parse_events(text: str, source: str | None = None) -> list[Event]:
    """Parse *text* completely and return the materialized event list.

    Convenience for tests and tools that need random access; hot paths
    iterate :class:`PullParser` (or :func:`iter_events`) directly.
    """
    return list(PullParser(text, source))

"""Predefined entities, character references, and output escaping."""

from __future__ import annotations

import re

from repro.errors import Location, XmlSyntaxError
from repro.xml.chars import is_name, is_xml_char

#: The five predefined general entities of XML 1.0 (production 66 context).
PREDEFINED_ENTITIES: dict[str, str] = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_TEXT_ESCAPES = str.maketrans(
    {
        "&": "&amp;",
        "<": "&lt;",
        ">": "&gt;",
        "\r": "&#13;",
    }
)

_ATTR_ESCAPES = str.maketrans(
    {
        "&": "&amp;",
        "<": "&lt;",
        ">": "&gt;",
        '"': "&quot;",
        "\t": "&#9;",
        "\n": "&#10;",
        "\r": "&#13;",
    }
)


# Quick-reject probes: most runs of character data contain nothing that
# needs escaping, and a compiled character-class scan rejects them far
# faster than a per-character translate pass.  The classes below MUST
# stay in sync with the translate tables above (the golden tests in
# tests/xml/test_entities.py compare both paths byte for byte).
_TEXT_NEEDS_ESCAPE = re.compile(r"[&<>\r]").search
_ATTR_NEEDS_ESCAPE = re.compile(r'[&<>"\t\n\r]').search


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    if _TEXT_NEEDS_ESCAPE(text) is None:
        return text
    return text.translate(_TEXT_ESCAPES)


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    if _ATTR_NEEDS_ESCAPE(text) is None:
        return text
    return text.translate(_ATTR_ESCAPES)


def decode_char_reference(body: str, location: Location | None = None) -> str:
    """Decode the body of a character reference (``#38`` or ``#x26``)."""
    digits = body[1:]
    try:
        if digits.startswith(("x", "X")):
            codepoint = int(digits[1:], 16)
        else:
            codepoint = int(digits, 10)
    except ValueError:
        raise XmlSyntaxError(f"malformed character reference '&{body};'", location)
    try:
        char = chr(codepoint)
    except (ValueError, OverflowError):
        raise XmlSyntaxError(
            f"character reference '&{body};' is outside Unicode", location
        )
    if not is_xml_char(char):
        raise XmlSyntaxError(
            f"character reference '&{body};' is not a legal XML character", location
        )
    return char


def resolve_reference(
    body: str,
    entities: dict[str, str] | None = None,
    location: Location | None = None,
) -> str:
    """Resolve a ``&body;`` reference to its replacement text.

    *entities* supplies general entities declared in an internal DTD subset;
    the five predefined entities are always available.
    """
    if body.startswith("#"):
        return decode_char_reference(body, location)
    if body in PREDEFINED_ENTITIES:
        return PREDEFINED_ENTITIES[body]
    if entities and body in entities:
        return entities[body]
    if not is_name(body):
        raise XmlSyntaxError(f"malformed entity reference '&{body};'", location)
    raise XmlSyntaxError(f"reference to undeclared entity '&{body};'", location)


def unescape(text: str, entities: dict[str, str] | None = None) -> str:
    """Replace all entity and character references in *text*.

    This is the inverse of :func:`escape_text` for round-tripping already
    well-formed content; the full parser performs the same resolution with
    position tracking.
    """
    if "&" not in text:
        return text
    pieces: list[str] = []
    index = 0
    while True:
        amp = text.find("&", index)
        if amp < 0:
            pieces.append(text[index:])
            break
        pieces.append(text[index:amp])
        semi = text.find(";", amp + 1)
        if semi < 0:
            raise XmlSyntaxError("unterminated reference (missing ';')")
        pieces.append(resolve_reference(text[amp + 1 : semi], entities))
        index = semi + 1
    return "".join(pieces)

"""Low-level markup writing helpers shared by DOM and V-DOM serializers."""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import XmlError
from repro.xml.chars import is_name
from repro.xml.entities import escape_attribute, escape_text


def attribute_string(attributes: Iterable[tuple[str, str]]) -> str:
    """Render ``name="value"`` pairs, escaped, with a leading space each."""
    pieces: list[str] = []
    for name, value in attributes:
        if not is_name(name):
            raise XmlError(f"'{name}' is not a legal attribute name")
        pieces.append(f' {name}="{escape_attribute(value)}"')
    return "".join(pieces)


def start_tag(
    name: str,
    attributes: Iterable[tuple[str, str]] = (),
    self_closing: bool = False,
) -> str:
    """Render a start (or empty-element) tag."""
    if not is_name(name):
        raise XmlError(f"'{name}' is not a legal element name")
    closer = "/>" if self_closing else ">"
    return f"<{name}{attribute_string(attributes)}{closer}"


def end_tag(name: str) -> str:
    """Render an end tag."""
    return f"</{name}>"


def comment(data: str) -> str:
    """Render a comment; rejects bodies a parser could not round-trip."""
    if "--" in data:
        raise XmlError("comment data may not contain '--'")
    if data.endswith("-"):
        raise XmlError("comment data may not end with '-'")
    return f"<!--{data}-->"


def processing_instruction(target: str, data: str = "") -> str:
    """Render a processing instruction."""
    if not is_name(target) or target.lower() == "xml":
        raise XmlError(f"'{target}' is not a legal processing instruction target")
    if "?>" in data:
        raise XmlError("processing instruction data may not contain '?>'")
    if data:
        return f"<?{target} {data}?>"
    return f"<?{target}?>"


def cdata_section(data: str) -> str:
    """Render a CDATA section, splitting any embedded ']]>'."""
    safe = data.replace("]]>", "]]]]><![CDATA[>")
    return f"<![CDATA[{safe}]]>"


def text(data: str) -> str:
    """Render character data (alias of :func:`escape_text`)."""
    return escape_text(data)


def xml_declaration(version: str = "1.0", encoding: str | None = "UTF-8") -> str:
    """Render an XML declaration."""
    if encoding:
        return f'<?xml version="{version}" encoding="{encoding}"?>'
    return f'<?xml version="{version}"?>'


class IndentPolicy:
    """Pretty-printing configuration for tree serializers.

    ``indent`` is the per-level unit; ``preserve_mixed`` keeps element
    content verbatim whenever an element mixes text and child elements, so
    pretty-printing never changes the document's significant content.
    """

    def __init__(self, indent: str = "  ", preserve_mixed: bool = True):
        self.indent = indent
        self.preserve_mixed = preserve_mixed

    def prefix(self, depth: int) -> str:
        return "\n" + self.indent * depth

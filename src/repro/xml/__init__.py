"""XML 1.0 substrate: character model, lexing, pull parsing, serialization.

This package is the bottom layer of the reproduction.  Everything above it
(DOM, DTD, XML Schema, V-DOM, P-XML) consumes either the event stream
produced by :class:`repro.xml.parser.PullParser` or the escaping and
name-checking primitives defined here.
"""

from repro.xml.chars import is_name, is_name_char, is_name_start_char, is_nmtoken
from repro.xml.entities import escape_attribute, escape_text, unescape
from repro.xml.events import (
    Characters,
    Comment,
    DoctypeDecl,
    EndElement,
    ProcessingInstruction,
    StartElement,
    XmlDeclaration,
)
from repro.xml.parser import PullParser, iter_events, parse_events
from repro.xml.qname import QName, split_qname
from repro.xml.serializer import attribute_string, start_tag

__all__ = [
    "Characters",
    "Comment",
    "DoctypeDecl",
    "EndElement",
    "ProcessingInstruction",
    "PullParser",
    "QName",
    "StartElement",
    "XmlDeclaration",
    "attribute_string",
    "escape_attribute",
    "escape_text",
    "is_name",
    "is_name_char",
    "is_name_start_char",
    "is_nmtoken",
    "iter_events",
    "parse_events",
    "split_qname",
    "start_tag",
    "unescape",
]

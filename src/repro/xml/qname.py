"""Qualified names and namespace resolution (Namespaces in XML 1.0).

The paper's schemas use the ``xsd:`` prefix for the schema namespace and
unprefixed names for the target language; this module provides just enough
namespace machinery to resolve both correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XmlSyntaxError
from repro.xml.chars import is_ncname

XML_NAMESPACE = "http://www.w3.org/XML/1998/namespace"
XMLNS_NAMESPACE = "http://www.w3.org/2000/xmlns/"
XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"
XSI_NAMESPACE = "http://www.w3.org/2001/XMLSchema-instance"


@dataclass(frozen=True, order=True)
class QName:
    """An expanded name: ``(namespace URI, local name)`` plus prefix hint."""

    namespace: str | None
    local_name: str
    prefix: str | None = None

    def __str__(self) -> str:
        if self.prefix:
            return f"{self.prefix}:{self.local_name}"
        return self.local_name

    @property
    def clark(self) -> str:
        """Clark notation, ``{uri}local``, usable as a dictionary key."""
        if self.namespace:
            return f"{{{self.namespace}}}{self.local_name}"
        return self.local_name


def split_qname(name: str) -> tuple[str | None, str]:
    """Split ``prefix:local`` into its parts, checking both are NCNames."""
    prefix, colon, local = name.partition(":")
    if not colon:
        if not is_ncname(name):
            raise XmlSyntaxError(f"'{name}' is not a valid unprefixed name")
        return None, name
    if not is_ncname(prefix) or not is_ncname(local):
        raise XmlSyntaxError(f"'{name}' is not a valid qualified name")
    return prefix, local


class NamespaceContext:
    """A stack of in-scope namespace bindings.

    Push one frame per element with that element's ``xmlns`` attributes;
    resolution walks the frames innermost-first.
    """

    _DEFAULT_BINDINGS = {"xml": XML_NAMESPACE, "xmlns": XMLNS_NAMESPACE}

    def __init__(self) -> None:
        self._frames: list[dict[str, str | None]] = []

    def push(self, attributes: tuple[tuple[str, str], ...]) -> None:
        """Enter an element; harvest its namespace declarations."""
        frame: dict[str, str | None] = {}
        for name, value in attributes:
            if name == "xmlns":
                frame[""] = value or None
            elif name.startswith("xmlns:"):
                prefix = name[len("xmlns:") :]
                if not is_ncname(prefix):
                    raise XmlSyntaxError(f"illegal namespace prefix '{prefix}'")
                if not value:
                    raise XmlSyntaxError(
                        f"prefix '{prefix}' may not be unbound in XML 1.0"
                    )
                frame[prefix] = value
        self._frames.append(frame)

    def pop(self) -> None:
        self._frames.pop()

    def uri_for_prefix(self, prefix: str) -> str | None:
        """Resolve *prefix* ('' means the default namespace)."""
        for frame in reversed(self._frames):
            if prefix in frame:
                return frame[prefix]
        if prefix in self._DEFAULT_BINDINGS:
            return self._DEFAULT_BINDINGS[prefix]
        if prefix == "":
            return None
        raise XmlSyntaxError(f"undeclared namespace prefix '{prefix}'")

    def resolve(self, name: str, is_attribute: bool = False) -> QName:
        """Expand a lexical QName using the current bindings.

        Per the namespaces spec, unprefixed attribute names are in *no*
        namespace rather than the default namespace.
        """
        prefix, local = split_qname(name)
        if prefix is None:
            if is_attribute:
                return QName(None, local)
            return QName(self.uri_for_prefix(""), local)
        return QName(self.uri_for_prefix(prefix), local, prefix)

"""Validate DOM documents against a DTD.

This is the prior-generation validity check (the paper's reference [14]
setting): purely regular content models, coarse attribute typing.  The
XML Schema validator in :mod:`repro.xsd.validator` supersedes it, and the
two share the automaton machinery so their costs are comparable in the
benchmarks.
"""

from __future__ import annotations

from repro.errors import DtdValidationError
from repro.xml.chars import is_name, is_nmtoken
from repro.automata import Dfa, build_dfa
from repro.dom.charnodes import Text
from repro.dom.document import Document
from repro.dom.element import Element
from repro.dtd.model import (
    AttDefault,
    AttType,
    AttributeDefinition,
    ContentKind,
    Dtd,
)


class DtdValidator:
    """Compile a :class:`~repro.dtd.model.Dtd` once, validate many trees."""

    def __init__(self, dtd: Dtd, require_deterministic: bool = True):
        self._dtd = dtd
        self._dfas: dict[str, Dfa] = {}
        for name, declaration in dtd.elements.items():
            self._dfas[name] = build_dfa(
                declaration.content.to_regex(),
                require_deterministic=require_deterministic,
            )

    # -- public API -------------------------------------------------------------

    def validate(self, document: Document) -> list[DtdValidationError]:
        """Return every validity violation found (empty list = valid)."""
        errors: list[DtdValidationError] = []
        root = document.document_element
        if root is None:
            errors.append(DtdValidationError("document has no root element"))
            return errors
        expected_root = self._dtd.root_name
        if expected_root is not None and root.tag_name != expected_root:
            errors.append(
                DtdValidationError(
                    f"root element is <{root.tag_name}>, DOCTYPE declares "
                    f"'{expected_root}'"
                )
            )
        self._validate_element(root, "/" + root.tag_name, errors)
        self._check_id_constraints(document, errors)
        return errors

    def assert_valid(self, document: Document) -> None:
        """Raise the first violation, if any."""
        errors = self.validate(document)
        if errors:
            raise errors[0]

    # -- element checks -----------------------------------------------------------

    def _validate_element(
        self, element: Element, path: str, errors: list[DtdValidationError]
    ) -> None:
        declaration = self._dtd.elements.get(element.tag_name)
        if declaration is None:
            errors.append(
                DtdValidationError(
                    f"element type '{element.tag_name}' is not declared",
                    path=path,
                )
            )
            # Children may still be declared types; recurse for coverage.
            for index, child in enumerate(element.child_elements()):
                self._validate_element(
                    child, f"{path}/{child.tag_name}[{index}]", errors
                )
            return

        self._validate_content(element, declaration.content.kind, path, errors)
        self._validate_attributes(element, path, errors)
        for index, child in enumerate(element.child_elements()):
            self._validate_element(child, f"{path}/{child.tag_name}[{index}]", errors)

    def _validate_content(
        self,
        element: Element,
        kind: ContentKind,
        path: str,
        errors: list[DtdValidationError],
    ) -> None:
        child_elements = element.child_elements()
        has_text = any(
            isinstance(node, Text) and node.data.strip()
            for node in element.iter_children()
        )
        if kind is ContentKind.EMPTY:
            if element.has_child_nodes() and (child_elements or has_text):
                errors.append(
                    DtdValidationError(
                        f"element '{element.tag_name}' is declared EMPTY but "
                        "has content",
                        path=path,
                    )
                )
            return
        if kind is ContentKind.ANY:
            for child in child_elements:
                if child.tag_name not in self._dtd.elements:
                    errors.append(
                        DtdValidationError(
                            f"ANY content allows only declared types; "
                            f"'{child.tag_name}' is undeclared",
                            path=path,
                        )
                    )
            return
        if kind is ContentKind.CHILDREN and has_text:
            errors.append(
                DtdValidationError(
                    f"element '{element.tag_name}' has element content but "
                    "contains text",
                    path=path,
                )
            )
        dfa = self._dfas[element.tag_name]
        matcher = dfa.matcher()
        for position, child in enumerate(child_elements):
            if matcher.step(child.tag_name) is None:
                expected = ", ".join(str(key) for key in matcher.expected()) or "nothing"
                errors.append(
                    DtdValidationError(
                        f"child {position + 1} of '{element.tag_name}' is "
                        f"<{child.tag_name}>, expected one of: {expected}",
                        path=path,
                    )
                )
                return
        if not matcher.at_accepting_state():
            expected = ", ".join(str(key) for key in matcher.expected()) or "nothing"
            errors.append(
                DtdValidationError(
                    f"content of '{element.tag_name}' ends too early; "
                    f"expected one of: {expected}",
                    path=path,
                )
            )

    # -- attribute checks -----------------------------------------------------------

    def _validate_attributes(
        self, element: Element, path: str, errors: list[DtdValidationError]
    ) -> None:
        definitions = self._dtd.attribute_definitions(element.tag_name)
        for name, _value in element.attributes.items():
            if name not in definitions:
                errors.append(
                    DtdValidationError(
                        f"attribute '{name}' is not declared for element "
                        f"'{element.tag_name}'",
                        path=path,
                    )
                )
        for name, definition in definitions.items():
            present = element.has_attribute(name)
            if not present:
                if definition.default_kind is AttDefault.REQUIRED:
                    errors.append(
                        DtdValidationError(
                            f"required attribute '{name}' missing on "
                            f"'{element.tag_name}'",
                            path=path,
                        )
                    )
                continue
            value = element.get_attribute(name)
            self._validate_attribute_value(
                element.tag_name, definition, value, path, errors
            )

    def _validate_attribute_value(
        self,
        element_name: str,
        definition: AttributeDefinition,
        value: str,
        path: str,
        errors: list[DtdValidationError],
    ) -> None:
        def complain(reason: str) -> None:
            errors.append(
                DtdValidationError(
                    f"attribute '{definition.name}' of '{element_name}' "
                    f"{reason} (value {value!r})",
                    path=path,
                )
            )

        if (
            definition.default_kind is AttDefault.FIXED
            and value != definition.default_value
        ):
            complain(f"must have the fixed value {definition.default_value!r}")
            return
        att_type = definition.att_type
        if att_type in (AttType.ID, AttType.IDREF, AttType.ENTITY):
            if not is_name(value):
                complain("must be a Name")
        elif att_type in (AttType.IDREFS, AttType.ENTITIES):
            tokens = value.split()
            if not tokens or not all(is_name(token) for token in tokens):
                complain("must be one or more Names")
        elif att_type is AttType.NMTOKEN:
            if not is_nmtoken(value):
                complain("must be an NMTOKEN")
        elif att_type is AttType.NMTOKENS:
            tokens = value.split()
            if not tokens or not all(is_nmtoken(token) for token in tokens):
                complain("must be one or more NMTOKENs")
        elif att_type in (AttType.ENUMERATION, AttType.NOTATION):
            if value not in definition.enumeration:
                allowed = ", ".join(definition.enumeration)
                complain(f"must be one of: {allowed}")

    def _check_id_constraints(
        self, document: Document, errors: list[DtdValidationError]
    ) -> None:
        """IDs unique; IDREF/IDREFS must point at an existing ID."""
        seen_ids: set[str] = set()
        references: list[tuple[str, str]] = []
        root = document.document_element
        if root is None:
            return
        elements = [root] + [
            node for node in root.iter_descendants() if isinstance(node, Element)
        ]
        for element in elements:
            definitions = self._dtd.attribute_definitions(element.tag_name)
            for name, definition in definitions.items():
                if not element.has_attribute(name):
                    continue
                value = element.get_attribute(name)
                if definition.att_type is AttType.ID:
                    if value in seen_ids:
                        errors.append(
                            DtdValidationError(f"duplicate ID value '{value}'")
                        )
                    seen_ids.add(value)
                elif definition.att_type is AttType.IDREF:
                    references.append((value, element.tag_name))
                elif definition.att_type is AttType.IDREFS:
                    references.extend(
                        (token, element.tag_name) for token in value.split()
                    )
        for value, element_name in references:
            if value not in seen_ids:
                errors.append(
                    DtdValidationError(
                        f"IDREF '{value}' on '{element_name}' does not match "
                        "any ID in the document"
                    )
                )


def validate_against_dtd(document: Document, dtd: Dtd) -> list[DtdValidationError]:
    """One-shot validation convenience."""
    return DtdValidator(dtd).validate(document)

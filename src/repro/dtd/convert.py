"""DTD → schema-component conversion: the prior-work V-DOM pipeline.

The authors' earlier system ([13], [14]) generated V-DOM interfaces
from DTDs; this module reproduces that path by converting a parsed DTD
into the same component model the XML Schema parser produces, so the
entire downstream pipeline — normalization, interface generation, class
materialization, P-XML — works unchanged on DTD-described languages.

The conversion also makes the paper's *motivation* measurable: DTD
content models survive the trip, but everything DTDs cannot say (the
SKU pattern, the quantity bound, typed dates/decimals) degrades to
``CDATA``-ish string types, so a DTD-derived binding accepts documents
the schema-derived binding rejects — exactly the expressiveness gap
Sect. 1 cites for moving to XML Schema.
"""

from __future__ import annotations

from repro.errors import GenerationError
from repro.automata.rex import UNBOUNDED
from repro.xsd.components import (
    AttributeDeclaration,
    AttributeUse,
    ComplexType,
    Compositor,
    ElementDeclaration,
    ModelGroup,
    Particle,
    Schema,
)
from repro.xsd.simple import BUILTIN_TYPES, SimpleType, restrict
from repro.dtd.model import (
    AttDefault,
    AttType,
    AttributeDefinition,
    ContentKind,
    Dtd,
    DtdParticle,
    ParticleKind,
)

_OCCURS = {
    "": (1, 1),
    "?": (0, 1),
    "*": (0, UNBOUNDED),
    "+": (1, UNBOUNDED),
}

#: DTD attribute types → built-in simple types.
_ATTRIBUTE_TYPES = {
    AttType.CDATA: "string",
    AttType.ID: "ID",
    AttType.IDREF: "IDREF",
    AttType.IDREFS: "IDREFS",
    AttType.ENTITY: "ENTITY",
    AttType.ENTITIES: "ENTITIES",
    AttType.NMTOKEN: "NMTOKEN",
    AttType.NMTOKENS: "NMTOKENS",
}


def dtd_to_schema(dtd: Dtd) -> Schema:
    """Convert a parsed DTD into a resolved component-model schema.

    Every DTD element type becomes a global element declaration with a
    named complex type ``<Name>Type`` (capitalized, collision-suffixed),
    because DTD element types are global by construction.
    """
    schema = Schema()
    type_names: dict[str, str] = {}
    for name in dtd.elements:
        type_names[name] = _allocate_type_name(name, set(type_names.values()))

    # Pass 1: declare every element with an empty type shell so content
    # models can reference forward/recursively.
    declarations: dict[str, ElementDeclaration] = {}
    for name in dtd.elements:
        complex_type = ComplexType(name=type_names[name])
        schema.types[type_names[name]] = complex_type
        declaration = ElementDeclaration(
            name,
            type_name=type_names[name],
            type_definition=complex_type,
            is_global=True,
        )
        declarations[name] = declaration
        schema.elements[name] = declaration

    # Pass 2: fill content models and attributes.
    for name, element_declaration in dtd.elements.items():
        complex_type = schema.types[type_names[name]]
        assert isinstance(complex_type, ComplexType)
        _fill_content(
            complex_type, element_declaration.content, declarations, name
        )
        for attribute in dtd.attribute_definitions(name).values():
            use = _convert_attribute(attribute, name)
            if use is not None:
                complex_type.attribute_uses[use.name] = use
    return schema


def _allocate_type_name(element_name: str, taken: set[str]) -> str:
    base = element_name[:1].upper() + element_name[1:] + "Type"
    candidate = base
    counter = 2
    while candidate in taken:
        candidate = f"{base}{counter}"
        counter += 1
    return candidate


def _fill_content(
    complex_type: ComplexType,
    content,
    declarations: dict[str, ElementDeclaration],
    owner: str,
) -> None:
    kind = content.kind
    if kind is ContentKind.EMPTY:
        complex_type.content = Particle(ModelGroup(Compositor.SEQUENCE, []))
        return
    if kind is ContentKind.ANY:
        # ANY allows any declared element in any order, mixed with text.
        complex_type.mixed = True
        alternatives = [
            Particle(declaration)
            for declaration in declarations.values()
        ]
        group = ModelGroup(Compositor.CHOICE, alternatives)
        complex_type.content = Particle(group, 0, UNBOUNDED)
        return
    if kind is ContentKind.MIXED:
        complex_type.mixed = True
        if not content.mixed_names:
            # (#PCDATA): text only — simple string content in XSD terms.
            complex_type.mixed = False
            complex_type.simple_content = BUILTIN_TYPES["string"]
            return
        alternatives = [
            Particle(_lookup(declarations, name, owner))
            for name in sorted(content.mixed_names)
        ]
        group = ModelGroup(Compositor.CHOICE, alternatives)
        complex_type.content = Particle(group, 0, UNBOUNDED)
        return
    assert content.particle is not None
    complex_type.content = _convert_particle(
        content.particle, declarations, owner
    )


def _convert_particle(
    particle: DtdParticle,
    declarations: dict[str, ElementDeclaration],
    owner: str,
) -> Particle:
    min_occurs, max_occurs = _OCCURS[particle.occurrence]
    if particle.kind is ParticleKind.NAME:
        assert particle.name is not None
        return Particle(
            _lookup(declarations, particle.name, owner), min_occurs, max_occurs
        )
    compositor = (
        Compositor.SEQUENCE
        if particle.kind is ParticleKind.SEQUENCE
        else Compositor.CHOICE
    )
    group = ModelGroup(
        compositor,
        [
            _convert_particle(child, declarations, owner)
            for child in particle.children
        ],
    )
    return Particle(group, min_occurs, max_occurs)


def _lookup(
    declarations: dict[str, ElementDeclaration], name: str, owner: str
) -> ElementDeclaration:
    declaration = declarations.get(name)
    if declaration is None:
        raise GenerationError(
            f"content model of '{owner}' references undeclared element "
            f"'{name}'"
        )
    return declaration


def _convert_attribute(
    definition: AttributeDefinition, owner: str
) -> AttributeUse | None:
    if definition.att_type in _ATTRIBUTE_TYPES:
        simple_type: SimpleType = BUILTIN_TYPES[
            _ATTRIBUTE_TYPES[definition.att_type]
        ]
    elif definition.att_type in (AttType.ENUMERATION, AttType.NOTATION):
        simple_type = restrict(
            BUILTIN_TYPES["NMTOKEN"],
            None,
            enumeration=definition.enumeration,
        )
    else:  # pragma: no cover - enum is exhaustive
        raise GenerationError(
            f"unmapped DTD attribute type {definition.att_type}"
        )
    declaration = AttributeDeclaration(
        definition.name, type_definition=simple_type
    )
    default = None
    fixed = None
    if definition.default_kind is AttDefault.FIXED:
        fixed = definition.default_value
    elif definition.default_kind is AttDefault.DEFAULT:
        default = definition.default_value
    return AttributeUse(
        declaration,
        required=definition.default_kind is AttDefault.REQUIRED,
        default=default,
        fixed=fixed,
    )


def bind_dtd(dtd_or_text, root_name: str | None = None, **bind_arguments):
    """One call from DTD text to a live V-DOM binding (the [14] pipeline).

    ``bind_dtd(PURCHASE_ORDER_DTD)`` gives the typed classes the
    authors' earlier DTD-based system would have generated.
    """
    from repro.core.vdom import bind
    from repro.dtd.parser import parse_dtd

    dtd = (
        parse_dtd(dtd_or_text, root_name)
        if isinstance(dtd_or_text, str)
        else dtd_or_text
    )
    schema = dtd_to_schema(dtd)
    return bind(schema, **bind_arguments)

"""Object model for Document Type Definitions."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.automata import Alternation, Epsilon, Regex, Repetition, Sequence, Symbol
from repro.automata.rex import UNBOUNDED


class ParticleKind(enum.Enum):
    """Kinds of nodes in a ``children`` content particle."""

    NAME = "name"
    SEQUENCE = "sequence"
    CHOICE = "choice"


@dataclass
class DtdParticle:
    """A node of a DTD ``children`` content model.

    ``occurrence`` is one of ``''``, ``'?'``, ``'*'``, ``'+'`` — exactly
    the "regular expressions [that are] rather limited" of the paper's
    introduction, compared with schema min/maxOccurs.
    """

    kind: ParticleKind
    name: str | None = None
    children: list[DtdParticle] = field(default_factory=list)
    occurrence: str = ""

    def to_regex(self) -> Regex:
        """Translate to the shared automaton regex AST."""
        if self.kind is ParticleKind.NAME:
            base: Regex = Symbol(self.name)
        elif self.kind is ParticleKind.SEQUENCE:
            base = Sequence([child.to_regex() for child in self.children])
        else:
            base = Alternation([child.to_regex() for child in self.children])
        if self.occurrence == "?":
            return Repetition(base, 0, 1)
        if self.occurrence == "*":
            return Repetition(base, 0, UNBOUNDED)
        if self.occurrence == "+":
            return Repetition(base, 1, UNBOUNDED)
        return base

    def element_names(self) -> set[str]:
        """All element names referenced by this particle."""
        if self.kind is ParticleKind.NAME:
            return {self.name} if self.name else set()
        names: set[str] = set()
        for child in self.children:
            names |= child.element_names()
        return names

    def __str__(self) -> str:
        if self.kind is ParticleKind.NAME:
            return f"{self.name}{self.occurrence}"
        separator = ", " if self.kind is ParticleKind.SEQUENCE else " | "
        inner = separator.join(str(child) for child in self.children)
        return f"({inner}){self.occurrence}"


class ContentKind(enum.Enum):
    """The four DTD content-specification forms."""

    EMPTY = "EMPTY"
    ANY = "ANY"
    MIXED = "mixed"
    CHILDREN = "children"


@dataclass
class ContentModel:
    """A content specification for one element type."""

    kind: ContentKind
    #: element names allowed in MIXED content
    mixed_names: frozenset[str] = frozenset()
    #: root particle for CHILDREN content
    particle: DtdParticle | None = None

    def to_regex(self) -> Regex:
        """Regex over child-element names (text handled separately)."""
        if self.kind in (ContentKind.EMPTY, ContentKind.ANY):
            return Epsilon()
        if self.kind is ContentKind.MIXED:
            if not self.mixed_names:
                return Epsilon()
            return Repetition(
                Alternation([Symbol(name) for name in sorted(self.mixed_names)]),
                0,
                UNBOUNDED,
            )
        assert self.particle is not None
        return self.particle.to_regex()

    def allows_text(self) -> bool:
        return self.kind in (ContentKind.MIXED, ContentKind.ANY)

    def __str__(self) -> str:
        if self.kind is ContentKind.EMPTY:
            return "EMPTY"
        if self.kind is ContentKind.ANY:
            return "ANY"
        if self.kind is ContentKind.MIXED:
            if self.mixed_names:
                names = " | ".join(sorted(self.mixed_names))
                return f"(#PCDATA | {names})*"
            return "(#PCDATA)"
        return str(self.particle)


class AttType(enum.Enum):
    """DTD attribute types."""

    CDATA = "CDATA"
    ID = "ID"
    IDREF = "IDREF"
    IDREFS = "IDREFS"
    ENTITY = "ENTITY"
    ENTITIES = "ENTITIES"
    NMTOKEN = "NMTOKEN"
    NMTOKENS = "NMTOKENS"
    NOTATION = "NOTATION"
    ENUMERATION = "enumeration"


class AttDefault(enum.Enum):
    """DTD attribute default kinds."""

    REQUIRED = "#REQUIRED"
    IMPLIED = "#IMPLIED"
    FIXED = "#FIXED"
    DEFAULT = "default"


@dataclass
class AttributeDefinition:
    """One row of an ATTLIST declaration."""

    name: str
    att_type: AttType
    default_kind: AttDefault
    default_value: str | None = None
    enumeration: tuple[str, ...] = ()


@dataclass
class ElementDeclaration:
    """``<!ELEMENT name content>``"""

    name: str
    content: ContentModel


@dataclass
class Dtd:
    """A parsed DTD: element types, attribute lists, general entities."""

    root_name: str | None = None
    elements: dict[str, ElementDeclaration] = field(default_factory=dict)
    attributes: dict[str, dict[str, AttributeDefinition]] = field(
        default_factory=dict
    )
    entities: dict[str, str] = field(default_factory=dict)

    def attribute_definitions(self, element_name: str) -> dict[str, AttributeDefinition]:
        return self.attributes.get(element_name, {})

    def declared_names(self) -> set[str]:
        return set(self.elements)

"""DTD substrate — the language-description mechanism the paper outgrew.

The authors' earlier system [14] generated V-DOM interfaces from DTDs;
XML Schema replaced DTDs because "the capabilities of describing the
document structure on the basis of regular expressions is rather limited"
(Sect. 1).  This package implements that baseline: a DTD parser and a
validator, so the reproduction can compare the DTD-based and the
schema-based pipelines.
"""

from repro.dtd.model import (
    AttDefault,
    AttType,
    AttributeDefinition,
    ContentKind,
    ContentModel,
    Dtd,
    ElementDeclaration,
    ParticleKind,
    DtdParticle,
)
from repro.dtd.parser import parse_dtd
from repro.dtd.validator import DtdValidator, validate_against_dtd
from repro.dtd.convert import bind_dtd, dtd_to_schema

__all__ = [
    "bind_dtd",
    "dtd_to_schema",
    "AttDefault",
    "AttType",
    "AttributeDefinition",
    "ContentKind",
    "ContentModel",
    "Dtd",
    "DtdParticle",
    "DtdValidator",
    "ElementDeclaration",
    "ParticleKind",
    "parse_dtd",
    "validate_against_dtd",
]

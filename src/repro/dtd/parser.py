"""Parser for DTD text (internal subset or stand-alone DTD file).

Supports ELEMENT, ATTLIST, ENTITY (general and parameter, internal
values only — no external fetching), and NOTATION declarations; parameter
entities are expanded textually before declaration parsing, as XML 1.0
prescribes for the internal subset.
"""

from __future__ import annotations

from repro.errors import DtdError, XmlSyntaxError
from repro.xml.reader import Reader
from repro.dtd.model import (
    AttDefault,
    AttType,
    AttributeDefinition,
    ContentKind,
    ContentModel,
    Dtd,
    DtdParticle,
    ElementDeclaration,
    ParticleKind,
)

_MAX_PE_DEPTH = 16


def parse_dtd(text: str, root_name: str | None = None, source: str | None = None) -> Dtd:
    """Parse *text* (the content of a DTD) into a :class:`Dtd`."""
    return _DtdParser(text, root_name, source).parse()


class _DtdParser:
    def __init__(self, text: str, root_name: str | None, source: str | None):
        self._source = source
        self._root_name = root_name
        self._parameter_entities: dict[str, str] = {}
        self._text = text

    def parse(self) -> Dtd:
        dtd = Dtd(root_name=self._root_name)
        self._collect_parameter_entities(self._text)
        expanded = self._expand_parameter_entities(self._text, depth=0)
        reader = Reader(expanded, self._source)
        while True:
            reader.skip_space()
            if reader.at_end():
                break
            if reader.looking_at("<!--"):
                reader.advance(4)
                reader.read_until("-->", "comment in DTD")
            elif reader.looking_at("<?"):
                reader.advance(2)
                reader.read_until("?>", "processing instruction in DTD")
            elif reader.looking_at("<!ELEMENT"):
                declaration = self._parse_element_decl(reader)
                # First declaration wins; duplicates are an error per XML 1.0.
                if declaration.name in dtd.elements:
                    raise DtdError(
                        f"element type '{declaration.name}' declared twice",
                        reader.location(),
                    )
                dtd.elements[declaration.name] = declaration
            elif reader.looking_at("<!ATTLIST"):
                element_name, definitions = self._parse_attlist(reader)
                slot = dtd.attributes.setdefault(element_name, {})
                for definition in definitions:
                    # First declaration binds (XML 1.0 3.3).
                    slot.setdefault(definition.name, definition)
            elif reader.looking_at("<!ENTITY"):
                self._parse_entity(reader, dtd)
            elif reader.looking_at("<!NOTATION"):
                reader.advance(len("<!NOTATION"))
                reader.read_until(">", "notation declaration")
            else:
                raise DtdError(
                    f"unexpected content in DTD: {reader.peek(20)!r}",
                    reader.location(),
                )
        return dtd

    # -- parameter entities ---------------------------------------------------

    def _collect_parameter_entities(self, text: str) -> None:
        reader = Reader(text, self._source)
        while not reader.at_end():
            if reader.looking_at("<!--"):
                reader.advance(4)
                reader.read_until("-->", "comment in DTD")
            elif reader.looking_at("<!ENTITY"):
                mark = reader.offset
                reader.advance(len("<!ENTITY"))
                reader.require_space("after '<!ENTITY'")
                if not reader.looking_at("%"):
                    reader.read_until(">", "entity declaration")
                    continue
                reader.advance(1)
                reader.require_space("after '%' in a parameter entity")
                name = reader.read_name("as a parameter entity name")
                reader.require_space("after the parameter entity name")
                if reader.looking_at("SYSTEM") or reader.looking_at("PUBLIC"):
                    reader.read_until(">", "external parameter entity")
                    continue
                value = reader.read_quoted("as a parameter entity value")
                reader.skip_space()
                reader.expect(">", "to close the parameter entity")
                self._parameter_entities.setdefault(name, value)
                del mark
            elif reader.looking_at("'") or reader.looking_at('"'):
                quote = reader.advance(1)
                reader.read_until(quote, "literal in DTD")
            else:
                reader.advance(1)

    def _expand_parameter_entities(self, text: str, depth: int) -> str:
        if depth > _MAX_PE_DEPTH:
            raise DtdError("parameter entities nested too deeply (recursive?)")
        if "%" not in text:
            return text
        pieces: list[str] = []
        index = 0
        while True:
            percent = text.find("%", index)
            if percent < 0:
                pieces.append(text[index:])
                return "".join(pieces)
            semi = text.find(";", percent + 1)
            candidate = text[percent + 1 : semi] if semi > 0 else ""
            if semi < 0 or not candidate or not candidate.isidentifier():
                # A bare '%' (e.g. inside an entity value); keep literally.
                pieces.append(text[index : percent + 1])
                index = percent + 1
                continue
            pieces.append(text[index:percent])
            if candidate not in self._parameter_entities:
                raise DtdError(f"undeclared parameter entity '%{candidate};'")
            replacement = self._parameter_entities[candidate]
            pieces.append(
                self._expand_parameter_entities(f" {replacement} ", depth + 1)
            )
            index = semi + 1

    # -- ELEMENT --------------------------------------------------------------

    def _parse_element_decl(self, reader: Reader) -> ElementDeclaration:
        reader.expect("<!ELEMENT", "to open an element declaration")
        reader.require_space("after '<!ELEMENT'")
        name = reader.read_name("as an element type name")
        reader.require_space("after the element type name")
        content = self._parse_content_spec(reader)
        reader.skip_space()
        reader.expect(">", "to close the element declaration")
        return ElementDeclaration(name, content)

    def _parse_content_spec(self, reader: Reader) -> ContentModel:
        if reader.looking_at("EMPTY"):
            reader.advance(len("EMPTY"))
            return ContentModel(ContentKind.EMPTY)
        if reader.looking_at("ANY"):
            reader.advance(len("ANY"))
            return ContentModel(ContentKind.ANY)
        if not reader.looking_at("("):
            raise DtdError("expected a content model", reader.location())
        # Look ahead for #PCDATA to distinguish mixed from children.
        mark = reader.offset
        reader.advance(1)
        reader.skip_space()
        if reader.looking_at("#PCDATA"):
            return self._parse_mixed(reader)
        # Rewind: easiest way is to re-create particle parse from the mark.
        reader.offset = mark
        # Column bookkeeping is off after a manual rewind, but only for the
        # duration of this declaration; recompute conservatively.
        particle = self._parse_particle(reader)
        return ContentModel(ContentKind.CHILDREN, particle=particle)

    def _parse_mixed(self, reader: Reader) -> ContentModel:
        reader.expect("#PCDATA", "in mixed content")
        names: list[str] = []
        while True:
            reader.skip_space()
            if reader.looking_at(")"):
                reader.advance(1)
                break
            reader.expect("|", "between mixed content names")
            reader.skip_space()
            names.append(reader.read_name("in mixed content"))
        if names:
            reader.expect("*", "after mixed content with element names")
        elif reader.looking_at("*"):
            reader.advance(1)
        if len(names) != len(set(names)):
            raise DtdError("duplicate name in mixed content", reader.location())
        return ContentModel(ContentKind.MIXED, mixed_names=frozenset(names))

    def _parse_particle(self, reader: Reader) -> DtdParticle:
        reader.skip_space()
        if reader.looking_at("("):
            reader.advance(1)
            children = [self._parse_particle(reader)]
            reader.skip_space()
            connector: str | None = None
            while not reader.looking_at(")"):
                if reader.looking_at("|") or reader.looking_at(","):
                    symbol = reader.advance(1)
                    if connector is None:
                        connector = symbol
                    elif connector != symbol:
                        raise DtdError(
                            "',' and '|' may not be mixed in one group",
                            reader.location(),
                        )
                    children.append(self._parse_particle(reader))
                    reader.skip_space()
                else:
                    raise DtdError(
                        f"expected ',', '|' or ')' in content model, found "
                        f"{reader.peek()!r}",
                        reader.location(),
                    )
            reader.advance(1)
            kind = (
                ParticleKind.CHOICE if connector == "|" else ParticleKind.SEQUENCE
            )
            particle = DtdParticle(kind, children=children)
        else:
            particle = DtdParticle(
                ParticleKind.NAME, name=reader.read_name("in a content model")
            )
        if reader.peek() in ("?", "*", "+"):
            particle.occurrence = reader.advance(1)
        return particle

    # -- ATTLIST ----------------------------------------------------------------

    def _parse_attlist(
        self, reader: Reader
    ) -> tuple[str, list[AttributeDefinition]]:
        reader.expect("<!ATTLIST", "to open an attribute-list declaration")
        reader.require_space("after '<!ATTLIST'")
        element_name = reader.read_name("as the attribute list's element type")
        definitions: list[AttributeDefinition] = []
        while True:
            reader.skip_space()
            if reader.looking_at(">"):
                reader.advance(1)
                return element_name, definitions
            definitions.append(self._parse_attribute_definition(reader))

    def _parse_attribute_definition(self, reader: Reader) -> AttributeDefinition:
        name = reader.read_name("as an attribute name")
        reader.require_space("after the attribute name")
        att_type, enumeration = self._parse_attribute_type(reader)
        reader.require_space("before the attribute default")
        default_kind, default_value = self._parse_default(reader)
        if (
            att_type is AttType.ENUMERATION
            and default_value is not None
            and default_value not in enumeration
        ):
            raise DtdError(
                f"default '{default_value}' of attribute '{name}' is not "
                "among its enumerated values",
                reader.location(),
            )
        return AttributeDefinition(
            name, att_type, default_kind, default_value, enumeration
        )

    def _parse_attribute_type(
        self, reader: Reader
    ) -> tuple[AttType, tuple[str, ...]]:
        for token, att_type in (
            ("CDATA", AttType.CDATA),
            ("IDREFS", AttType.IDREFS),
            ("IDREF", AttType.IDREF),
            ("ID", AttType.ID),
            ("ENTITIES", AttType.ENTITIES),
            ("ENTITY", AttType.ENTITY),
            ("NMTOKENS", AttType.NMTOKENS),
            ("NMTOKEN", AttType.NMTOKEN),
        ):
            if reader.looking_at(token):
                reader.advance(len(token))
                return att_type, ()
        if reader.looking_at("NOTATION"):
            reader.advance(len("NOTATION"))
            reader.require_space("after 'NOTATION'")
            values = self._parse_name_group(reader)
            return AttType.NOTATION, values
        if reader.looking_at("("):
            return AttType.ENUMERATION, self._parse_name_group(reader)
        raise DtdError(
            f"expected an attribute type, found {reader.peek(10)!r}",
            reader.location(),
        )

    def _parse_name_group(self, reader: Reader) -> tuple[str, ...]:
        reader.expect("(", "to open a value group")
        values: list[str] = []
        while True:
            reader.skip_space()
            values.append(reader.read_name("in a value group"))
            reader.skip_space()
            if reader.looking_at(")"):
                reader.advance(1)
                return tuple(values)
            reader.expect("|", "between group values")

    def _parse_default(self, reader: Reader) -> tuple[AttDefault, str | None]:
        if reader.looking_at("#REQUIRED"):
            reader.advance(len("#REQUIRED"))
            return AttDefault.REQUIRED, None
        if reader.looking_at("#IMPLIED"):
            reader.advance(len("#IMPLIED"))
            return AttDefault.IMPLIED, None
        if reader.looking_at("#FIXED"):
            reader.advance(len("#FIXED"))
            reader.require_space("after '#FIXED'")
            return AttDefault.FIXED, reader.read_quoted("as the fixed value")
        try:
            return AttDefault.DEFAULT, reader.read_quoted("as the default value")
        except XmlSyntaxError as error:
            raise DtdError(str(error.message), error.location)

    # -- ENTITY ----------------------------------------------------------------

    def _parse_entity(self, reader: Reader, dtd: Dtd) -> None:
        reader.expect("<!ENTITY", "to open an entity declaration")
        reader.require_space("after '<!ENTITY'")
        if reader.looking_at("%"):
            # Parameter entities were collected in the first pass.
            reader.read_until(">", "parameter entity declaration")
            return
        name = reader.read_name("as an entity name")
        reader.require_space("after the entity name")
        if reader.looking_at("SYSTEM") or reader.looking_at("PUBLIC"):
            reader.read_until(">", "external entity declaration")
            return
        value = reader.read_quoted("as an entity value")
        reader.skip_space()
        if reader.looking_at("NDATA"):
            reader.read_until(">", "unparsed entity declaration")
            return
        reader.expect(">", "to close the entity declaration")
        dtd.entities.setdefault(name, value)

"""Parallel bulk validation: a pool of warm-started ingest workers.

``vdom-generate validate --jobs N`` lands here.  Each worker process
binds the schema once at startup — warm-starting from the persistent
compilation cache, so the XSD parse/normalize/DFA work is an unpickle —
then streams documents through the fused ingest path
(:mod:`repro.ingest.fused`).  Per-file verdicts and timings aggregate
into one JSON-ready report.

Verdicts are themselves cacheable: keyed on (path, document content,
schema fingerprint), a re-run over an unchanged corpus answers from the
cache without parsing anything.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro.errors import ReproError
from repro.cache.fingerprint import fingerprint
from repro.cache.manager import ReproCache
from repro.ingest.fused import ingest

#: keys of a per-file record that the verdict cache persists
_VERDICT_KEYS = ("valid", "error", "error_type", "fused")

#: per-process worker state, set once by :func:`_init_worker`
_WORKER: dict[str, Any] = {}


def _init_worker(
    schema_text: str, cache_dir: str | None, use_verdict_cache: bool
) -> None:
    """Bind the schema in this process, warm from the persistent cache."""
    cache = ReproCache(directory=cache_dir)
    binding = cache.bind(schema_text)
    _WORKER["binding"] = binding
    _WORKER["schema_key"] = binding.cache_fingerprint
    _WORKER["cache"] = cache if (use_verdict_cache and cache_dir) else None


def _validate_one(path: str) -> dict[str, Any]:
    """Validate one document; never raises for document-level problems."""
    binding = _WORKER["binding"]
    cache = _WORKER["cache"]
    started = time.perf_counter()
    record: dict[str, Any] = {
        "path": path,
        "valid": False,
        "error": None,
        "error_type": None,
        "fused": None,
        "cached": False,
        "ms": 0.0,
    }
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        record["error"] = str(error)
        record["error_type"] = "OSError"
        record["ms"] = round((time.perf_counter() - started) * 1000, 3)
        return record
    key = None
    if cache is not None:
        # The path is part of the key: cached error messages embed it
        # (``Location.__str__``), so identical content under another name
        # must not replay the wrong path.
        key = fingerprint(
            "ingest", text, schema=_WORKER["schema_key"], path=path
        )
        verdict = cache.get_json("ingest", key)
        if verdict is not None:
            record.update(verdict)
            record["cached"] = True
            record["ms"] = round((time.perf_counter() - started) * 1000, 3)
            return record
    try:
        result = ingest(binding, text, source=path)
        record["valid"] = True
        record["fused"] = result.fused
    except ReproError as error:
        record["error"] = str(error)
        record["error_type"] = type(error).__name__
    if key is not None:
        cache.put_json(
            "ingest", key, {name: record[name] for name in _VERDICT_KEYS}
        )
    record["ms"] = round((time.perf_counter() - started) * 1000, 3)
    return record


def validate_files(
    schema_text: str,
    paths: list[str | os.PathLike],
    jobs: int = 1,
    cache_dir: str | None = None,
    use_verdict_cache: bool = True,
    schema_label: str | None = None,
) -> dict[str, Any]:
    """Validate *paths* against the schema, *jobs* processes wide.

    Returns the aggregate report::

        {"schema": ..., "jobs": N,
         "summary": {"documents", "valid", "invalid", "fused", "cached",
                     "elapsed_ms", "worker_ms"},
         "files": [{"path", "valid", "error", "error_type", "fused",
                    "cached", "ms"}, ...]}

    ``jobs=1`` runs inline (no pool); higher values fan out over a
    ``multiprocessing.Pool`` whose workers warm-start their binding from
    the persistent compilation cache at *cache_dir*.
    """
    started = time.perf_counter()
    names = [os.fspath(path) for path in paths]
    if jobs <= 1:
        _init_worker(schema_text, cache_dir, use_verdict_cache)
        files = [_validate_one(name) for name in names]
    else:
        from multiprocessing import Pool

        with Pool(
            processes=jobs,
            initializer=_init_worker,
            initargs=(schema_text, cache_dir, use_verdict_cache),
        ) as pool:
            files = pool.map(_validate_one, names)
    elapsed_ms = (time.perf_counter() - started) * 1000
    valid = sum(1 for record in files if record["valid"])
    return {
        "schema": schema_label,
        "jobs": jobs,
        "summary": {
            "documents": len(files),
            "valid": valid,
            "invalid": len(files) - valid,
            "fused": sum(1 for record in files if record["fused"]),
            "cached": sum(1 for record in files if record["cached"]),
            "elapsed_ms": round(elapsed_ms, 3),
            "worker_ms": round(sum(record["ms"] for record in files), 3),
        },
        "files": files,
    }

"""Parallel bulk validation: a *persistent* pool of warm ingest workers.

``vdom-generate validate --jobs N`` lands here.  Bulk v2 replaces the
per-call ``multiprocessing.Pool`` of PR 3 (re-fork + re-bind on every
run, one pickled round-trip per file — which measured 0.95x at
``--jobs 4``) with :class:`repro.ingest.pool.ValidationPool`: workers
spawn once, bind once (warm-started from the persistent compilation
cache, flat DFA tables included), and pull *document batches* off
per-worker queues.  Documents are consistent-hash sharded to workers
(:class:`~repro.ingest.pool.HashRing`) so per-worker verdict caches
stay hot across batches and across repeated runs; a dead worker's
in-flight batches are requeued to a sibling and counted.

A pool can also be passed in (``pool=``) and reused across calls — the
serve tier keeps one for its whole lifetime — in which case ``jobs``
is whatever the pool was built with.

Two hardening rules shape the error handling here:

* a *document*-level problem (unreadable file, bad encoding, invalid
  content) yields one failed verdict and never aborts the run;
* a *schema*-level problem is pre-flighted in the parent before any
  worker starts: a schema that fails to bind used to blow up inside the
  pool initializer, which surfaces as a hung pool or an opaque
  ``BrokenProcessPool`` — now it raises the original
  :class:`~repro.errors.ReproError` (and the successful pre-flight
  warms the persistent cache the workers start from).

When :mod:`repro.obs` is collecting, each worker keeps its own registry
and ships snapshot deltas back per *batch* (inline runs keep per-file
deltas); the parent merges them into its registry and into the report's
``"obs"`` section, so fused/fallback/cache counters cover the whole
pool.

Verdicts are themselves cacheable: keyed on (path, document content,
schema fingerprint), a re-run over an unchanged corpus answers from the
cache without parsing anything — and inside one pool session, from the
worker's in-memory verdict layer without touching the cache directory.
"""

from __future__ import annotations

import os
import time
from typing import Any

from repro import obs
from repro.errors import ReproError
from repro.cache.fingerprint import fingerprint
from repro.cache.manager import ReproCache
from repro.ingest.fused import ingest

#: keys of a per-file record that the verdict cache persists
_VERDICT_KEYS = ("valid", "error", "error_type", "fused")


def effective_jobs(jobs: int, cpu_count: int | None = None) -> int:
    """Clamp a requested worker count to the CPUs actually present.

    ``jobs <= 0`` means "auto": one worker per CPU.  Anything above the
    CPU count is clamped down — oversubscribing a process pool never
    helps a CPU-bound workload and measurably hurts (on a 1-CPU box,
    ``jobs=4`` ran at 0.74x the inline throughput before this clamp).
    *cpu_count* overrides :func:`os.cpu_count` for tests.
    """
    cpus = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    cpus = max(1, cpus)
    if jobs <= 0:
        return cpus
    return min(jobs, cpus)

#: per-process worker state, set once by :func:`_init_worker`
_WORKER: dict[str, Any] = {}


def _init_worker(
    schema_text: str,
    cache_dir: str | None,
    use_verdict_cache: bool,
    collect_obs: bool = False,
    schema_location: str | None = None,
    lazy_roots: tuple[str, ...] | None = None,
) -> None:
    """Bind the schema in this process, warm from the persistent cache."""
    mark = None
    if collect_obs:
        # Baseline *before* the bind below, so warm-start cost lands on
        # the first record's delta.  A snapshot (not a reset) keeps this
        # correct both inline — where "the worker" is the parent, whose
        # prior observations must survive — and in forked workers, whose
        # registries inherit the parent's pre-fork contents.
        mark = obs.snapshot()
        obs.enable()
    cache = ReproCache(directory=cache_dir)
    binding = cache.bind(
        schema_text, location=schema_location, lazy_roots=lazy_roots
    )
    _WORKER["binding"] = binding
    _WORKER["schema_key"] = binding.cache_fingerprint
    _WORKER["cache"] = cache if (use_verdict_cache and cache_dir) else None
    _WORKER["obs_mark"] = mark
    # Namespaced schemas bypass the typed ingest lanes (which match by
    # local tag name) and validate through the streaming validator.
    if binding.schema.uses_namespaces:
        from repro.xsd.stream import StreamingValidator

        _WORKER["streaming"] = StreamingValidator(binding.schema)
    else:
        _WORKER["streaming"] = None


def _validate_one(path: str) -> dict[str, Any]:
    """Validate one document; never raises for document-level problems."""
    binding = _WORKER["binding"]
    cache = _WORKER["cache"]
    started = time.perf_counter()
    record: dict[str, Any] = {
        "path": path,
        "valid": False,
        "error": None,
        "error_type": None,
        "fused": None,
        "cached": False,
        "ms": 0.0,
    }
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as error:
        # UnicodeDecodeError is a ValueError, *not* an OSError: before it
        # was caught here, one mis-encoded file crashed the whole
        # ``pool.map`` instead of producing one failed verdict.
        record["error"] = str(error)
        record["error_type"] = type(error).__name__
        return _finish(record, started)
    key = None
    if cache is not None:
        # The path is part of the key: cached error messages embed it
        # (``Location.__str__``), so identical content under another name
        # must not replay the wrong path.
        key = fingerprint(
            "ingest", text, schema=_WORKER["schema_key"], path=path
        )
        verdict = cache.get_json("ingest", key)
        if verdict is not None:
            record.update(verdict)
            record["cached"] = True
            return _finish(record, started)
    streaming = _WORKER.get("streaming")
    try:
        if streaming is not None:
            errors = streaming.validate_text(text)
            if errors:
                record["error"] = str(errors[0])
                record["error_type"] = type(errors[0]).__name__
            else:
                record["valid"] = True
        else:
            result = ingest(binding, text, source=path)
            record["valid"] = True
            record["fused"] = result.fused
    except ReproError as error:
        record["error"] = str(error)
        record["error_type"] = type(error).__name__
    if key is not None:
        cache.put_json(
            "ingest", key, {name: record[name] for name in _VERDICT_KEYS}
        )
    return _finish(record, started)


def _finish(record: dict[str, Any], started: float) -> dict[str, Any]:
    """Stamp the timing and, when collecting, the obs delta."""
    record["ms"] = round((time.perf_counter() - started) * 1000, 3)
    mark = _WORKER.get("obs_mark")
    if mark is not None:
        current = obs.snapshot()
        record["obs"] = obs.diff_snapshots(current, mark)
        _WORKER["obs_mark"] = current
    return record


def _preflight_bind(
    schema_text: str,
    cache_dir: str | None,
    schema_location: str | None = None,
    lazy_roots: tuple[str, ...] | None = None,
) -> None:
    """Bind once in the parent before any worker exists.

    A failure here is a clean :class:`ReproError` instead of the hung
    pool / ``BrokenProcessPool`` an initializer crash produces; a
    success leaves the compiled artifact in the persistent cache, which
    is exactly the warm start the workers want.
    """
    try:
        ReproCache(directory=cache_dir).bind(
            schema_text, location=schema_location, lazy_roots=lazy_roots
        )
    except ReproError:
        raise
    # Audited boundary: any bind crash must surface as the library's
    # error type here in the parent, not kill the worker pool.
    except Exception as error:  # noqa: BLE001
        raise ReproError(f"schema failed to bind: {error}") from error


def auto_batch_size(documents: int, workers: int) -> int:
    """The default batch size: ``documents / workers / 4``, floored at 1.

    Four batches per worker keeps the tail balanced (a slow shard still
    hands out work in pieces) while staying far from the old one-task-
    per-file regime whose queue round-trips dominated the runtime.
    """
    return max(1, documents // (max(1, workers) * 4))


def _pooled_files(
    pool,
    names: list[str],
    batch_size: int,
) -> list[dict[str, Any]]:
    """Fan *names* out over the persistent pool, preserving input order.

    Paths group by their consistent-hash shard first (so a batch never
    straddles workers and verdict caches stay hot), then each shard's
    run of documents is chunked into *batch_size* pieces.
    """
    shards: dict[int, list[int]] = {}
    for index, name in enumerate(names):
        shards.setdefault(pool.shard_of(name), []).append(index)
    submissions: list[tuple[list[int], Any]] = []
    for indices in shards.values():
        for start in range(0, len(indices), batch_size):
            chunk = indices[start : start + batch_size]
            future = pool.submit_batch(
                [names[i] for i in chunk], key=names[chunk[0]]
            )
            submissions.append((chunk, future))
    files: list[dict[str, Any] | None] = [None] * len(names)
    for chunk, future in submissions:
        for index, record in zip(chunk, future.result()):
            files[index] = record
    return files  # type: ignore[return-value]


def _sniff_roots(names: list[str]) -> tuple[str, ...] | None:
    """Root element keys of every document, or None when any resists.

    The lazy route only engages when *all* roots are known: an
    unsniffable document falls the whole run back to the full binding so
    verdicts never depend on what the sniffer could read.
    """
    from repro.xsd.subset import SNIFF_WINDOW, sniff_root_key

    roots: set[str] = set()
    for name in names:
        try:
            with open(name, encoding="utf-8") as handle:
                head = handle.read(SNIFF_WINDOW)
        except (OSError, UnicodeDecodeError):
            return None
        key = sniff_root_key(head)
        if key is None:
            return None
        roots.add(key)
    return tuple(sorted(roots)) if roots else None


def validate_files(
    schema_text: str,
    paths: list[str | os.PathLike],
    jobs: int = 1,
    cache_dir: str | None = None,
    use_verdict_cache: bool = True,
    schema_label: str | None = None,
    collect_obs: bool | None = None,
    clamp_jobs: bool = True,
    batch_size: int | None = None,
    pool=None,
    schema_location: str | None = None,
    lazy: bool = False,
) -> dict[str, Any]:
    """Validate *paths* against the schema, *jobs* processes wide.

    Returns the aggregate report::

        {"schema": ..., "jobs": N, "jobs_requested": M,
         "batch_size": B,                       # None on inline runs
         "pool": {"workers", "live_workers", "batches", "texts",
                  "completed", "requeued", "workers_lost"},  # pooled runs
         "summary": {"documents", "valid", "invalid", "fused", "fallback",
                     "cached", "elapsed_ms", "worker_ms"},
         "files": [{"path", "valid", "error", "error_type", "fused",
                    "cached", "ms"}, ...],
         "obs": {"counters": ..., "timers": ..., "spans": ...}}  # optional

    ``jobs=1`` runs inline (no pool); higher values fan out over a
    persistent :class:`~repro.ingest.pool.ValidationPool` whose workers
    spawn once, warm-start their binding from the persistent compilation
    cache at *cache_dir*, and consume consistent-hash-sharded document
    batches of *batch_size* (default: :func:`auto_batch_size`, i.e.
    files/jobs/4).  ``jobs=0`` means "auto" — one worker per CPU — and
    any request beyond the CPU count is clamped via
    :func:`effective_jobs` (the report's ``"jobs"`` key is the count
    actually used; ``"jobs_requested"`` preserves the ask, and a clamp
    is counted under ``ingest.bulk.jobs_clamped`` in the ``"obs"``
    section).  *clamp_jobs* = False keeps the exact requested count —
    for oversubscription experiments and pool tests on small machines.

    An already-running pool can be passed as *pool* (it is left open);
    ``jobs``/``clamp_jobs`` are then ignored in favor of the pool's own
    worker count, and repeated calls keep its per-worker verdict caches
    hot.

    *collect_obs* defaults to whatever :func:`repro.obs.enabled` says in
    the parent; when on, worker observations are merged into the parent
    registry and returned under the report's ``"obs"`` key.

    *schema_location* is the path the schema text came from — required
    for ``xsd:include``/``xsd:import`` with relative locations.  *lazy*
    sniffs every document's root element first and binds only the
    schema subset those roots reach (falling back to the full binding
    whenever a root cannot be sniffed); verdicts are identical either
    way.  Namespaced schemas validate through the streaming validator
    (the typed ingest lanes match by local name); their records report
    ``"fused": null``.
    """
    started = time.perf_counter()
    if collect_obs is None:
        collect_obs = obs.enabled()
    requested = jobs
    if pool is not None:
        jobs = pool.workers
        clamped = False
    else:
        jobs = effective_jobs(jobs) if clamp_jobs else max(1, jobs)
        clamped = jobs != requested
    use_pool = pool is not None or jobs > 1
    if clamped and not use_pool:
        # Pooled runs record the clamp via the merged report registry
        # below; counting here too would double it in the parent.
        obs.count(
            "ingest.bulk.jobs_clamped", requested=requested, effective=jobs
        )
    names = [os.fspath(path) for path in paths]
    lazy_roots: tuple[str, ...] | None = None
    if lazy and pool is None:
        # Sniff the root of every document up front; the workers then
        # bind only the subset those roots reach.  Any unsniffable
        # document disables the subset for the whole run (full binding,
        # identical verdicts either way).
        lazy_roots = _sniff_roots(names)
        obs.count(
            "ingest.bulk.lazy",
            outcome="subset" if lazy_roots else "full",
            roots=len(lazy_roots) if lazy_roots else 0,
        )
    effective_batch: int | None = None
    pool_info: dict[str, Any] | None = None
    pool_obs: dict[str, Any] | None = None
    with obs.span("ingest.bulk"):
        if not use_pool:
            _init_worker(
                schema_text,
                cache_dir,
                use_verdict_cache,
                collect_obs,
                schema_location,
                lazy_roots,
            )
            files = [_validate_one(name) for name in names]
        else:
            from repro.ingest.pool import ValidationPool

            own_pool = pool is None
            if own_pool:
                pool = ValidationPool(
                    schema_text,
                    jobs,
                    cache_dir=cache_dir,
                    use_verdict_cache=use_verdict_cache,
                    collect_obs=collect_obs,
                    schema_location=schema_location,
                    lazy_roots=lazy_roots,
                )
            try:
                effective_batch = batch_size or auto_batch_size(
                    len(names), pool.workers
                )
                files = _pooled_files(pool, names, effective_batch)
            finally:
                if collect_obs:
                    pool_obs = pool.take_obs()
                pool_info = pool.stats_snapshot()
                if own_pool:
                    pool.close()
    merged: dict[str, Any] | None = None
    if collect_obs:
        registry = obs.ObsRegistry()
        if clamped:
            # The worker deltas cannot see a parent-side decision; inject
            # the clamp so the report's "obs" section records it.
            registry.count(
                "ingest.bulk.jobs_clamped",
                requested=requested,
                effective=jobs,
            )
        if pool_obs is not None:
            registry.merge(pool_obs)
        for record in files:
            delta = record.pop("obs", None)
            if delta:
                registry.merge(delta)
        merged = registry.snapshot()
        if use_pool:
            # Fold the pool's activity into the parent registry too, so
            # ``repro.obs.snapshot()`` covers the whole run.  Inline runs
            # recorded straight into the parent registry already.
            obs.merge(merged)
    elapsed_ms = (time.perf_counter() - started) * 1000
    valid = sum(1 for record in files if record["valid"])
    report: dict[str, Any] = {
        "schema": schema_label,
        "jobs": jobs,
        "jobs_requested": requested,
        "batch_size": effective_batch,
        "summary": {
            "documents": len(files),
            "valid": valid,
            "invalid": len(files) - valid,
            "fused": sum(1 for record in files if record["fused"]),
            "fallback": sum(
                1 for record in files if record["fused"] is False
            ),
            "cached": sum(1 for record in files if record["cached"]),
            "elapsed_ms": round(elapsed_ms, 3),
            "worker_ms": round(sum(record["ms"] for record in files), 3),
        },
        "files": files,
    }
    if pool_info is not None:
        report["pool"] = pool_info
    if merged is not None:
        report["obs"] = merged
    return report

"""Persistent warm worker pool for bulk validation (:mod:`repro.ingest`).

PR 3's ``pool.map`` runner paid its whole setup bill on every call:
each ``validate_files`` re-forked the workers, each worker re-bound the
schema, and every document was one pickled round-trip.  On the
``bulk_scaling`` benchmark that overhead ate the parallelism whole
(0.95x at ``--jobs 4``).  This module is the paper's
preparation/runtime split applied to the pool itself:

* **spawn once** — :class:`ValidationPool` forks its workers at
  construction and keeps them for the session (or the server lifetime).
  Each worker binds the schema exactly once, warm-starting from the
  persistent compilation cache artifact — flat DFA tables included — so
  the per-task payload is a path list, never a pickled schema;
* **document batches** — work travels as batches over per-worker task
  queues (one :class:`multiprocessing.Queue` each) instead of one
  ``pool.map`` task per file, and observability ships back as one
  snapshot delta per *batch*, not per file;
* **consistent-hash sharding** — :class:`HashRing` maps a document's
  path to a worker, so the same document lands on the same worker
  across batches and across repeated runs.  Per-worker verdict caches
  (an in-memory layer over the persistent verdict store) therefore stay
  hot, and losing one worker remaps only that worker's shard;
* **crash recovery** — the parent-side collector notices a dead worker
  (``is_alive`` goes false), removes it from the ring, and requeues its
  in-flight batches to a sibling.  The requeue is counted
  (``ingest.pool.requeued`` / ``ingest.pool.worker_lost``) and surfaced
  in the pool stats; only when *every* worker has died do outstanding
  futures fail with a :class:`~repro.errors.ReproError`;
* **HTTP fan-out** — :meth:`ValidationPool.submit_text` validates a
  raw document body through the table-driven streaming validator in a
  worker, which is how ``vdom-generate serve --validate-pool N`` scales
  ``POST /-/validate`` past one core.

Shutdown is drain-by-default: :meth:`ValidationPool.close` enqueues a
sentinel *behind* any queued batches, so workers finish everything
already submitted before exiting — the same contract a worker applies
to its own queue when it receives SIGTERM directly.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import queue as queue_module
import signal
import threading
import time
from bisect import bisect_right
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any

from repro import obs
from repro.errors import ReproError
from repro.obs.registry import ObsRegistry, diff_snapshots

__all__ = ["HashRing", "ValidationPool"]

#: test hook: a worker about to validate a path containing this
#: substring exits hard (``os._exit``) — once per document, recorded by
#: a ``<path>.pool-crashed`` marker file, so the requeued batch
#: completes on the sibling.  Exercised by the crash-recovery tests.
CRASH_ENV = "REPRO_POOL_CRASH_ONCE"

#: in-memory verdict entries a worker keeps before evicting the oldest
HOT_VERDICT_ENTRIES = 4096

#: how often (seconds) the collector wakes to check worker liveness
_REAP_INTERVAL = 0.2


class HashRing:
    """Consistent hashing of shard keys onto worker ids.

    Each worker owns ``replicas`` points on a 64-bit ring
    (``blake2b`` — stable across processes, unlike ``hash()``); a key
    belongs to the first point clockwise from its own hash.  Removing a
    worker moves only that worker's keys to their ring successors,
    which is exactly the property crash recovery needs: the surviving
    workers' verdict caches stay hot.
    """

    def __init__(self, workers=(), replicas: int = 64):
        self._replicas = replicas
        self._points: list[int] = []
        self._owners: list[int] = []
        self._members: set[int] = set()
        for worker in workers:
            self.add(worker)

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def add(self, worker: int) -> None:
        if worker in self._members:
            return
        self._members.add(worker)
        pairs = list(zip(self._points, self._owners))
        pairs.extend(
            (self._hash(f"{worker}#{replica}"), worker)
            for replica in range(self._replicas)
        )
        pairs.sort()
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def remove(self, worker: int) -> None:
        if worker not in self._members:
            return
        self._members.discard(worker)
        pairs = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != worker
        ]
        self._points = [point for point, _ in pairs]
        self._owners = [owner for _, owner in pairs]

    def lookup(self, key: str) -> int:
        if not self._points:
            raise ReproError("hash ring is empty: no live workers")
        index = bisect_right(self._points, self._hash(key))
        return self._owners[index % len(self._owners)]

    @property
    def members(self) -> frozenset[int]:
        return frozenset(self._members)

    def __len__(self) -> int:
        return len(self._members)

    def __bool__(self) -> bool:
        return bool(self._members)


class _HotVerdicts:
    """A bounded in-memory layer over the persistent verdict store.

    Sharding sends the same path to the same worker run after run, so
    this per-worker memo answers repeat verdicts without touching the
    cache directory at all; everything still writes through, so a
    *different* pool (or an inline run) sees the same verdicts.
    """

    def __init__(self, cache, max_entries: int = HOT_VERDICT_ENTRIES):
        self._cache = cache
        self._memo: OrderedDict[tuple[str, str], Any] = OrderedDict()
        self._max_entries = max_entries

    def get_json(self, kind: str, key: str):
        memo_key = (kind, key)
        if memo_key in self._memo:
            self._memo.move_to_end(memo_key)
            return self._memo[memo_key]
        value = self._cache.get_json(kind, key)
        if value is not None:
            self._remember(memo_key, value)
        return value

    def put_json(self, kind: str, key: str, value) -> None:
        self._cache.put_json(kind, key, value)
        self._remember((kind, key), value)

    def _remember(self, memo_key: tuple[str, str], value) -> None:
        self._memo[memo_key] = value
        self._memo.move_to_end(memo_key)
        while len(self._memo) > self._max_entries:
            self._memo.popitem(last=False)


def _crash_requested(path: str, marker: str | None) -> bool:
    """The :data:`CRASH_ENV` test hook: crash once per document."""
    if not marker or marker not in path:
        return False
    sentinel = path + ".pool-crashed"
    if os.path.exists(sentinel):
        return False
    with open(sentinel, "w", encoding="utf-8") as handle:
        handle.write("crashed\n")
    return True


def _validate_text_task(validator, text: str) -> dict[str, Any]:
    """One posted document through the streaming validator, JSON-shaped
    exactly like the serve tier's inline ``POST /-/validate`` verdict."""
    from repro.errors import XmlSyntaxError
    from repro.xsd.stream import error_entry

    try:
        errors = validator.validate_text(text)
    except XmlSyntaxError as error:
        errors = [error]
    return {
        "valid": not errors,
        "errors": [error_entry(error) for error in errors],
    }


def _worker_main(
    worker_id: int,
    schema_text: str,
    cache_dir: str | None,
    use_verdict_cache: bool,
    collect_obs: bool,
    tasks,
    results,
    schema_location: str | None = None,
    lazy_roots: tuple[str, ...] | None = None,
) -> None:
    """Worker process body: bind once, then serve batches until told.

    SIGTERM means *drain*: finish everything already in the queue, then
    exit — in-flight work is never abandoned by a polite shutdown.  The
    parent's collector covers the impolite ones.
    """
    from repro.cache.manager import ReproCache
    from repro.ingest import bulk

    draining = threading.Event()
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, lambda _signum, _frame: draining.set())
    except ValueError:  # not the main thread (embedded/test contexts)
        pass
    if collect_obs:
        obs.enable()
    # Baseline *before* the bind so warm-start cost lands on the first
    # batch's delta (mirrors the inline runner's bookkeeping).
    mark = obs.snapshot() if collect_obs else None
    cache = ReproCache(directory=cache_dir)
    binding = cache.bind(
        schema_text, location=schema_location, lazy_roots=lazy_roots
    )
    bulk._WORKER["binding"] = binding
    bulk._WORKER["schema_key"] = binding.cache_fingerprint
    bulk._WORKER["cache"] = (
        _HotVerdicts(cache) if (use_verdict_cache and cache_dir) else None
    )
    bulk._WORKER["obs_mark"] = None  # deltas are per batch, not per file
    if binding.schema.uses_namespaces:
        from repro.xsd.stream import StreamingValidator

        bulk._WORKER["streaming"] = StreamingValidator(binding.schema)
    else:
        bulk._WORKER["streaming"] = None
    validator = None
    crash_marker = os.environ.get(CRASH_ENV) or None
    empty_polls = 0
    while True:
        try:
            task = tasks.get(timeout=0.1)
        except queue_module.Empty:
            # Drain means *drain*: tasks the parent queued just before
            # the signal may still be in flight through the queue's
            # feeder thread, so require a few consecutive empty polls
            # before trusting that the queue is truly dry.
            if draining.is_set():
                empty_polls += 1
                if empty_polls >= 3:
                    break
            continue
        empty_polls = 0
        if task is None:
            break
        kind, task_id, payload = task
        if kind == "batch":
            records = []
            for path in payload:
                if _crash_requested(path, crash_marker):
                    os._exit(17)
                records.append(bulk._validate_one(path))
            result: Any = records
        else:  # "text"
            if validator is None:
                from repro.xsd import StreamingValidator

                validator = StreamingValidator(binding.schema)
            result = _validate_text_task(validator, payload)
        delta = None
        if mark is not None:
            current = obs.snapshot()
            delta = diff_snapshots(current, mark)
            mark = current
        results.put((worker_id, task_id, result, delta))


class _Worker:
    __slots__ = ("process", "queue", "live")

    def __init__(self, process, queue):
        self.process = process
        self.queue = queue
        self.live = True


class _Pending:
    __slots__ = ("kind", "payload", "key", "worker", "future")

    def __init__(self, kind, payload, key, worker, future):
        self.kind = kind
        self.payload = payload
        self.key = key
        self.worker = worker
        self.future = future


class ValidationPool:
    """A session-persistent pool of warm schema-validation workers."""

    def __init__(
        self,
        schema_text: str,
        workers: int,
        *,
        cache_dir: str | None = None,
        use_verdict_cache: bool = True,
        collect_obs: bool | None = None,
        schema_location: str | None = None,
        lazy_roots: tuple[str, ...] | None = None,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        from multiprocessing import get_context

        from repro.ingest import bulk

        if collect_obs is None:
            collect_obs = obs.enabled()
        # A schema that cannot bind must fail here, in the parent, as a
        # clean ReproError — not as a pile of dead worker processes.
        bulk._preflight_bind(schema_text, cache_dir, schema_location, lazy_roots)
        context = get_context()
        self._results = context.Queue()
        self._workers: dict[int, _Worker] = {}
        for worker_id in range(workers):
            task_queue = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    schema_text,
                    cache_dir,
                    use_verdict_cache,
                    collect_obs,
                    task_queue,
                    self._results,
                    schema_location,
                    lazy_roots,
                ),
                daemon=True,
            )
            process.start()
            self._workers[worker_id] = _Worker(process, task_queue)
        self._ring = HashRing(self._workers)
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._task_ids = itertools.count()
        self._registry = ObsRegistry()
        self._obs_mark = self._registry.snapshot()
        self._closed = False
        self._stats = {
            "workers": workers,
            "live_workers": workers,
            "batches": 0,
            "texts": 0,
            "completed": 0,
            "requeued": 0,
            "workers_lost": 0,
        }
        self._stop = threading.Event()
        self._collector = threading.Thread(
            target=self._collect, name="repro-pool-collector", daemon=True
        )
        self._collector.start()

    # -- submitting work -----------------------------------------------------

    @property
    def workers(self) -> int:
        """The configured worker count (the report's ``jobs``)."""
        return self._stats["workers"]

    def shard_of(self, path: str | os.PathLike) -> int:
        """Which live worker owns *path* right now."""
        with self._lock:
            return self._ring.lookup(os.fspath(path))

    def submit_batch(
        self, paths: list[str], key: str | None = None
    ) -> Future:
        """Queue one batch of document paths; resolves to the records.

        *key* is the shard key (default: the first path) — callers
        grouping paths by :meth:`shard_of` pass any path of the group so
        the whole batch lands on its shard's worker.
        """
        names = [os.fspath(path) for path in paths]
        return self._submit("batch", names, key or names[0])

    def submit_text(self, text: str, key: str | None = None) -> Future:
        """Queue one raw document body; resolves to the JSON verdict."""
        return self._submit("text", text, key if key is not None else text)

    def _submit(self, kind: str, payload, key: str) -> Future:
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ReproError("validation pool is closed")
            worker_id = self._ring.lookup(key)  # raises when all died
            task_id = next(self._task_ids)
            self._pending[task_id] = _Pending(
                kind, payload, key, worker_id, future
            )
            self._stats["batches" if kind == "batch" else "texts"] += 1
            queue = self._workers[worker_id].queue
        queue.put((kind, task_id, payload))
        return future

    # -- observing -----------------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._stats)

    def take_obs(self) -> dict[str, Any]:
        """Worker + pool observations accumulated since the last take.

        Batch deltas and requeue/crash counters merge into a pool-local
        registry; callers (``validate_files``, the serve tier) fold the
        diff into their own reports so a shared pool never double-counts
        across runs.
        """
        current = self._registry.snapshot()
        with self._lock:
            delta = diff_snapshots(current, self._obs_mark)
            self._obs_mark = current
        return delta

    # -- the collector -------------------------------------------------------

    def _collect(self) -> None:
        while not self._stop.is_set():
            try:
                worker_id, task_id, result, delta = self._results.get(
                    timeout=_REAP_INTERVAL
                )
            except queue_module.Empty:
                self._reap_dead()
                continue
            except (EOFError, OSError):
                return  # result queue torn down under us: closing
            if delta:
                self._registry.merge(delta)
            with self._lock:
                pending = self._pending.pop(task_id, None)
                if pending is not None:
                    self._stats["completed"] += 1
            # A None here is a duplicate: the task was requeued after a
            # crash and both executions answered.  First result wins.
            if pending is not None and not pending.future.cancelled():
                pending.future.set_result(result)

    def _reap_dead(self) -> None:
        """Detect dead workers; requeue their in-flight work."""
        requeues: list[tuple[int, _Pending]] = []
        failures: list[_Pending] = []
        with self._lock:
            dead = [
                worker_id
                for worker_id, worker in self._workers.items()
                if worker.live and not worker.process.is_alive()
            ]
            if not dead:
                return
            for worker_id in dead:
                self._workers[worker_id].live = False
                self._ring.remove(worker_id)
                self._stats["workers_lost"] += 1
                self._stats["live_workers"] -= 1
                self._registry.count(
                    "ingest.pool.worker_lost", worker=worker_id
                )
            orphaned = [
                (task_id, pending)
                for task_id, pending in self._pending.items()
                if not self._workers[pending.worker].live
            ]
            if not self._ring:
                # Nothing left to requeue onto: fail every outstanding
                # future (not only the orphans — none can ever finish).
                failures = list(self._pending.values())
                self._pending.clear()
            else:
                for task_id, pending in orphaned:
                    pending.worker = self._ring.lookup(pending.key)
                    self._stats["requeued"] += 1
                    self._registry.count(
                        "ingest.pool.requeued", kind=pending.kind
                    )
                    requeues.append((task_id, pending))
        for task_id, pending in requeues:
            self._workers[pending.worker].queue.put(
                (pending.kind, task_id, pending.payload)
            )
        if failures:
            error = ReproError(
                f"all {self._stats['workers']} validation worker(s) died"
            )
            for pending in failures:
                if not pending.future.done():
                    pending.future.set_exception(error)

    # -- shutdown ------------------------------------------------------------

    def close(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool; with *drain* (default) finish queued work first.

        The sentinel rides *behind* queued batches on each worker's
        FIFO, so a drain close is also the flush: every batch submitted
        before ``close()`` still resolves.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            live = [
                worker for worker in self._workers.values() if worker.live
            ]
        deadline = time.monotonic() + timeout
        if drain:
            for worker in live:
                worker.queue.put(None)
            while time.monotonic() < deadline:
                with self._lock:
                    if not self._pending:
                        break
                time.sleep(0.02)
            for worker in live:
                worker.process.join(
                    max(0.1, deadline - time.monotonic())
                )
        self._stop.set()
        self._collector.join(timeout=2.0)
        for worker in self._workers.values():
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        with self._lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for pending in leftovers:
            if not pending.future.done():
                pending.future.set_exception(
                    ReproError("validation pool closed with work outstanding")
                )
        for worker in self._workers.values():
            worker.queue.close()
            worker.queue.cancel_join_thread()
        self._results.close()
        self._results.cancel_join_thread()

    def __enter__(self) -> "ValidationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

"""High-throughput ingest: fused parse-to-typed-tree + bulk validation.

Two entry points:

* :func:`parse_typed` / :func:`ingest` — one document to a typed V-DOM
  tree in a single pass.  The table-driven turbo lane
  (:func:`table_parse`) scans the source with one precompiled regex
  alternation (or a numpy structural index when available) and steps
  flat integer DFA tables; documents outside its subset restart through
  :func:`fused_parse` (events drive the content-model automata during
  parsing; no generic DOM intermediate), which in turn falls back to
  the legacy parse → build → bind route for documents the fused walk
  does not cover;
* :func:`validate_files` — a whole corpus through a persistent
  :class:`ValidationPool` of workers warm-started from the persistent
  compilation cache, consistent-hash sharded into document batches,
  aggregated into a JSON-ready report.  The pool itself is reusable
  across runs (and backs the serve tier's ``POST /-/validate``
  fan-out).
"""

from repro.ingest.bulk import (
    auto_batch_size,
    effective_jobs,
    validate_files,
)
from repro.ingest.pool import HashRing, ValidationPool
from repro.ingest.fused import (
    IngestFallback,
    IngestResult,
    fused_parse,
    ingest,
    legacy_parse,
    parse_typed,
)
from repro.ingest.table_driven import table_parse

__all__ = [
    "HashRing",
    "IngestFallback",
    "IngestResult",
    "ValidationPool",
    "auto_batch_size",
    "effective_jobs",
    "fused_parse",
    "ingest",
    "legacy_parse",
    "parse_typed",
    "table_parse",
    "validate_files",
]

"""High-throughput ingest: fused parse-to-typed-tree + bulk validation.

Two entry points:

* :func:`parse_typed` / :func:`ingest` — one document to a typed V-DOM
  tree in a single pass (events drive the content-model DFAs during
  parsing; no generic DOM intermediate), with transparent fallback to
  the legacy parse → build → bind route for documents the fused walk
  does not cover;
* :func:`validate_files` — a whole corpus through a multiprocessing
  pool of workers warm-started from the persistent compilation cache,
  aggregated into a JSON-ready report.
"""

from repro.ingest.bulk import effective_jobs, validate_files
from repro.ingest.fused import (
    IngestFallback,
    IngestResult,
    fused_parse,
    ingest,
    legacy_parse,
    parse_typed,
)

__all__ = [
    "IngestFallback",
    "IngestResult",
    "effective_jobs",
    "fused_parse",
    "ingest",
    "legacy_parse",
    "parse_typed",
    "validate_files",
]

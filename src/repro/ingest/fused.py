"""Fused parse-to-typed-tree: events drive typed construction directly.

The legacy ingest route is three passes over the data::

    PullParser events -> generic DOM -> Binding.from_dom -> typed tree
                         (builder)      (DFA walk #1)       (DFA walk #2
                                                             in check_valid)

This module collapses them into one: parser events step the content-model
DFAs *while the document is being read*, and ``TypedElement`` nodes are
allocated directly — no generic DOM is ever built and no second
validation pass runs.  The observable behaviour is identical to
``binding.from_dom(parse_document(text).document_element)``:

* the same typed classes are instantiated for the same declarations,
* the same tree shape results (text-node granularity, CDATA flattening,
  whitespace dropping, ``xmlns`` attribute filtering, attribute defaults),
* every document the legacy route rejects is rejected with the same
  exception type and message, and syntax errors keep their precedence
  over validity errors (the legacy route parses fully before binding),
* post-parse mutation behaves identically, including the
  ``_content_state`` incremental-append cache.

Documents using features the fused walk cannot prove (an internal DTD
subset, whose entity/default machinery the DOM route may interpret) fall
back to the legacy route transparently via :func:`ingest`.

``tests/ingest/test_fused.py`` holds the two routes to the same answers,
valid and invalid alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.errors import SimpleTypeError, VdomTypeError
from repro.dom.attr import NamedNodeMap
from repro.dom.builder import parse_document
from repro.dom.charnodes import Text
from repro.core.vdom import Binding, TypedElement
from repro.xml.events import Characters, DoctypeDecl, EndElement, StartElement
from repro.xml.parser import PullParser
from repro.xsd.components import ANY_TYPE, ComplexType, ContentType
from repro.xsd.simple import SimpleType

_STRUCTURED = (ContentType.ELEMENT_ONLY, ContentType.MIXED)

#: per-declaration cap on the accepted-leaf-value memo (turbo lane):
#: high-cardinality corpora stop inserting once full instead of growing
#: without bound, and hits keep working for the values already seen
_VALUE_MEMO_LIMIT = 4096


class IngestFallback(Exception):
    """Raised internally when a document needs the legacy parse route."""


class _Frame:
    """One open element during the fused walk."""

    __slots__ = (
        "tag",
        "cls",
        "type_definition",
        "matcher",
        "table",
        "state",
        "structured",
        "content_type",
        "has_required",
        "cinfo",
        "memo",
        "children",
        "text_parts",
        "attributes",
        "element_count",
    )

    def __init__(
        self,
        tag,
        cls,
        type_definition,
        matcher,
        table,
        structured,
        content_type,
        has_required,
        cinfo,
        attributes,
    ):
        self.tag = tag
        self.cls = cls
        self.type_definition = type_definition
        self.matcher = matcher  # object-DFA Matcher (golden route) or None
        self.table = table  # DfaTable when stepping flat tables, else None
        self.state = 0  # integer DFA state (table route)
        self.structured = structured
        self.content_type = content_type  # None for simple-typed elements
        self.has_required = has_required  # any required attribute use?
        self.cinfo = cinfo  # class-derived constants for _construct
        self.memo = None  # accepted-leaf-value memo (turbo lane only)
        self.children = []  # str | TypedElement, in document order
        self.text_parts = []  # all character data in the subtree (leaf only)
        self.attributes = attributes
        self.element_count = 0


@dataclass
class IngestResult:
    """Outcome of :func:`ingest`: the typed root plus route taken."""

    root: TypedElement
    fused: bool  #: False when the legacy parse->build->bind fallback ran


def legacy_parse(binding: Binding, text: str, source: str | None = None):
    """The original three-pass route: parse -> DOM -> ``from_dom``."""
    document = parse_document(text, source)
    return binding.from_dom(document.document_element)


def parse_typed(binding: Binding, text: str, source: str | None = None):
    """Parse *text* into a typed tree, fused when possible.

    This is the drop-in replacement for
    ``binding.from_dom(parse_document(text).document_element)``.
    """
    return ingest(binding, text, source).root


def ingest(binding: Binding, text: str, source: str | None = None) -> IngestResult:
    """Like :func:`parse_typed` but reporting which route ran."""
    # Function-level import: table_driven builds on this module.
    from repro.ingest.table_driven import table_parse

    try:
        result = IngestResult(table_parse(binding, text, source), True)
    except IngestFallback as fallback:
        obs.count(
            "ingest.route", route="legacy", reason=str(fallback) or "unknown"
        )
        return IngestResult(legacy_parse(binding, text, source), False)
    obs.count("ingest.route", route="fused")
    return result


def fused_parse(
    binding: Binding,
    text: str,
    source: str | None = None,
    *,
    use_tables: bool = True,
) -> TypedElement:
    """Single-pass parse + validate + typed construction.

    Raises :class:`IngestFallback` on documents the fused walk does not
    cover (DOCTYPE declarations); callers wanting transparency use
    :func:`ingest` / :func:`parse_typed`.

    With ``use_tables`` (the default) content models are stepped through
    flat integer transition tables — one dict probe and two array
    indexings per child element.  ``use_tables=False`` steps the object
    DFAs instead; it is the golden reference the table route is held to
    (and the baseline the ``ingest:table_driven`` benchmark floor is
    measured against).
    """
    binding._require_no_namespaces("fused ingest")
    schema = binding.schema
    class_by_declaration = binding.class_by_declaration
    # Per-declaration dispatch info (class, resolved type, structuredness,
    # DFA + flat table, content type), computed once per binding:
    # declarations are interned in the schema, so ``id`` keys are stable
    # for its lifetime.
    dispatch = binding.__dict__.get("_ingest_dispatch")
    if dispatch is None:
        dispatch = {}
        binding._ingest_dispatch = dispatch
    events = iter(PullParser(text, source))
    stack: list[_Frame] = []
    root: TypedElement | None = None
    # Elements below a leaf (non-structured) frame are not typed at all —
    # ``from_dom`` flattens that subtree to its text content — so they are
    # only counted, and their character data accrues to the leaf frame.
    skip_depth = 0
    try:
        for event in events:
            kind = event.__class__
            if kind is Characters:
                frame = stack[-1]
                if frame.structured:
                    if event.data.strip():
                        frame.children.append(event.data)
                else:
                    frame.text_parts.append(event.data)
            elif kind is StartElement:
                if stack:
                    frame = stack[-1]
                    if not frame.structured:
                        skip_depth += 1
                        continue
                    table = frame.table
                    if table is not None:
                        # The table-driven hot step: symbol-id probe plus
                        # two array indexings, no method dispatch.
                        sym = table.symbol_ids.get(event.name)
                        if sym is None:
                            target = -1
                        else:
                            cell = frame.state * table.n_symbols + sym
                            target = table.nxt[cell]
                        if target < 0:
                            raise VdomTypeError(
                                f"<{event.name}> is not allowed inside "
                                f"<{frame.tag}>"
                            )
                        frame.state = target
                        declaration = table.payloads[table.pay[cell]]
                    else:
                        matched = frame.matcher.step(event.name)
                        if matched is None:
                            raise VdomTypeError(
                                f"<{event.name}> is not allowed inside "
                                f"<{frame.tag}>"
                            )
                        declaration = matched
                else:
                    declaration = schema.elements.get(event.name)
                    if declaration is None:
                        raise VdomTypeError(
                            f"<{event.name}> is not a global element of the "
                            "schema"
                        )
                info = dispatch.get(id(declaration))
                if info is None:
                    info = _dispatch_info(
                        schema, class_by_declaration, declaration
                    )
                    dispatch[id(declaration)] = info
                (
                    cls,
                    type_definition,
                    structured,
                    dfa,
                    table,
                    content_type,
                    has_required,
                    cinfo,
                    _memo,  # turbo-lane leaf-value memo; unused here
                ) = info
                attributes = event.attributes
                if attributes:
                    attributes = [
                        pair
                        for pair in attributes
                        if not pair[0].startswith("xmlns")
                    ]
                stack.append(
                    _Frame(
                        event.name,
                        cls,
                        type_definition,
                        dfa.matcher() if structured and not use_tables else None,
                        table if structured and use_tables else None,
                        structured,
                        content_type,
                        has_required,
                        cinfo,
                        attributes,
                    )
                )
            elif kind is EndElement:
                if skip_depth:
                    skip_depth -= 1
                    continue
                frame = stack.pop()
                element = _construct(binding, frame)
                if stack:
                    parent = stack[-1]
                    parent.children.append(element)
                    parent.element_count += 1
                else:
                    root = element
            elif kind is DoctypeDecl:
                raise IngestFallback("internal DTD subset")
            # XML declarations, comments, and processing instructions
            # carry no typed content (from_dom ignores them).
    except VdomTypeError:
        # The legacy route parses the *whole* document before binding, so
        # a syntax error anywhere outranks any validity error.  Drain the
        # remaining events to surface one before re-raising.
        for _ in events:
            pass
        raise
    assert root is not None  # the parser guarantees a root element
    return root


def _dispatch_info(schema, class_by_declaration, declaration) -> tuple:
    """Build one per-declaration dispatch entry: ``(cls, type_definition,
    structured, dfa, table, content_type, has_required, cinfo)``.

    Shared by the event-driven fused walk and the table-driven turbo
    lane; entries live in ``binding._ingest_dispatch`` keyed on
    ``id(declaration)``.
    """
    cls = class_by_declaration.get(id(declaration))
    if cls is None:
        raise VdomTypeError(
            f"no generated class for declaration '{declaration.name}'"
        )
    type_definition = declaration.resolved_type()
    if isinstance(type_definition, ComplexType):
        content_type = type_definition.content_type
        structured = content_type in _STRUCTURED
        has_required = any(
            use.required
            for use in type_definition.effective_attribute_uses().values()
        )
    else:
        content_type = None
        structured = False
        has_required = False
    return (
        cls,
        type_definition,
        structured,
        schema.content_dfa(type_definition) if structured else None,
        schema.content_table(type_definition) if structured else None,
        content_type,
        has_required,
        _construct_info(cls),
        # Accepted-leaf-value memo, used by the turbo lane only: a
        # bounded set of raw text contents this declaration's simple
        # type has already accepted, so repeated values skip the
        # facet/lexical re-validation.  Validation is pure, so caching
        # acceptance is observationally free; rejections are never
        # cached (the error path re-raises identically every time).
        {},
    )


def _construct_info(cls) -> tuple:
    """Class-derived constants ``_construct`` would otherwise re-derive
    per element: the tag, the pre-rendered abstractness rejection (or
    None), the declared type and its two fast-path classifications, the
    element-level ``fixed`` value, and the attribute tables."""
    declaration = cls._DECLARATION
    type_definition = cls._TYPE
    abstract_error = None
    if declaration.abstract:
        abstract_error = (
            f"element '{declaration.name}' is abstract; construct a "
            "member of its substitution group instead"
        )
    elif isinstance(type_definition, ComplexType) and type_definition.abstract:
        abstract_error = (
            f"type '{type_definition.name}' of element "
            f"'{declaration.name}' is abstract"
        )
    lookup, defaults = cls.__dict__.get("_INGEST_ATTRS") or _build_attr_tables(cls)
    return (
        declaration.name,
        abstract_error,
        type_definition,
        isinstance(type_definition, SimpleType),
        type_definition is ANY_TYPE,
        declaration.fixed,
        lookup,
        defaults,
    )


def _construct(binding: Binding, frame: _Frame) -> TypedElement:
    """Allocate the typed element for a completed frame.

    Mirrors ``TypedElement.__init__`` as driven by ``Binding.from_dom``
    — same checks, same messages, same ordering — but allocates
    directly: names were already validated by the parser (or come from
    the schema), and the content-model DFA was stepped during parsing,
    so neither is re-run.
    """
    cls = frame.cls
    (
        tag,
        abstract_error,
        type_definition,
        is_simple,
        is_any,
        fixed,
        lookup,
        defaults,
    ) = frame.cinfo
    if abstract_error is not None:
        raise VdomTypeError(abstract_error)
    element = cls.__new__(cls)
    element._owner_document = None
    element._parent = None
    element._tag_name = tag
    attribute_map = NamedNodeMap(element)
    element._attributes = attribute_map

    nodes = []
    has_text = False
    data = ""
    if frame.structured:
        for child in frame.children:
            if child.__class__ is str:
                node = Text(child, None)
                node._parent = element
                nodes.append(node)
                has_text = True
            else:
                child._parent = element
                nodes.append(child)
    else:
        data = "".join(frame.text_parts)
        if data:
            node = Text(data, None)
            node._parent = element
            nodes.append(node)
    element._children = nodes

    # Fixed/defaulted attributes first, explicit values second — the
    # explicit value overwrites in place, keeping the default's position,
    # exactly as repeated set_attribute calls would.  Both tables derive
    # from ``_ATTRIBUTE_FIELDS`` once per class: ``lookup`` maps every
    # accepted spelling (python name, XML name) to the install key with
    # ``_attribute_field``'s precedence, ``defaults`` lists the
    # fixed/defaulted keys in field order.
    attrs = attribute_map._attrs
    for key, literal in defaults:
        attribute_map._install(key, literal)
    for name, value in frame.attributes:
        key = lookup.get(name)
        if key is None:
            element._attribute_field(name)  # raises "has no attribute"
        existing = attrs.get(key)
        if existing is not None:
            existing.value = value
        else:
            attribute_map._install(key, value)

    if binding.validate_on_mutate:
        if is_simple:
            # Leaf frame: child elements were flattened into *data*, so
            # only the attribute and value checks of ``_check_simple``
            # can fire.
            if attrs:
                raise VdomTypeError(
                    f"<{tag}> has a simple type and may not "
                    "carry attributes"
                )
            memo = frame.memo
            if memo is None or data not in memo:
                try:
                    type_definition.parse(data)
                except SimpleTypeError as error:
                    raise VdomTypeError(
                        f"content of <{tag}>: {error.message}"
                    )
                if memo is not None and len(memo) < _VALUE_MEMO_LIMIT:
                    memo[data] = True
        elif not is_any:
            matcher = frame.matcher
            table = frame.table
            if (
                matcher is not None or table is not None
            ) and type_definition is frame.type_definition:
                # The live automaton (object matcher or flat table)
                # already accepted every child in order; only the checks
                # it cannot subsume remain.  With no attributes present
                # and none required, the attribute check is a proven
                # no-op.
                if attrs or frame.has_required:
                    element._check_attributes(type_definition)
                if (
                    frame.content_type is ContentType.ELEMENT_ONLY
                    and has_text
                ):
                    raise VdomTypeError(
                        f"<{tag}> has element-only content and "
                        "may not contain text"
                    )
                if table is not None:
                    state = frame.state
                    accepted = table.accepting[state] == 1
                else:
                    state = matcher.state
                    accepted = matcher.at_accepting_state()
                if not accepted:
                    expected_keys = (
                        table.expected_keys(state)
                        if table is not None
                        else matcher.expected()
                    )
                    expected = ", ".join(
                        f"<{key}>" for key in expected_keys
                    )
                    raise VdomTypeError(
                        f"content of <{tag}> is incomplete; "
                        f"expected {expected}"
                    )
                # Table and object DFAs share state numbering, so the
                # incremental-append cache resumes either way.
                element._content_state = (
                    frame.element_count,
                    len(nodes),
                    state,
                )
            elif not frame.structured and type_definition is frame.type_definition:
                # Leaf complex frame (EMPTY or SIMPLE content): the checks
                # of ``_check_complex`` specialized to a childless element
                # whose text is *data*.
                if attrs or frame.has_required:
                    element._check_attributes(type_definition)
                if frame.content_type is ContentType.EMPTY:
                    if data.strip():
                        raise VdomTypeError(
                            f"<{tag}> must be empty"
                        )
                else:  # ContentType.SIMPLE
                    memo = frame.memo
                    if memo is None or data not in memo:
                        try:
                            type_definition.simple_content.parse(data)
                        except SimpleTypeError as error:
                            raise VdomTypeError(
                                f"content of <{tag}>: "
                                f"{error.message}"
                            )
                        if memo is not None and len(memo) < _VALUE_MEMO_LIMIT:
                            memo[data] = True
            else:
                # A class whose declared type differs from the matched
                # declaration's: run the full check, exactly as the typed
                # constructor would.
                element._check_complex(type_definition)
        if fixed is not None:
            content = data if not frame.structured else element.text_content
            if content != fixed:
                raise VdomTypeError(
                    f"element '{tag}' must have the fixed "
                    f"value {fixed!r}"
                )
    return element


def _build_attr_tables(cls) -> tuple[dict[str, str], tuple[tuple[str, str], ...]]:
    """Derive and cache the per-class attribute tables on *cls*.

    ``lookup`` replicates ``TypedElement._attribute_field``'s precedence:
    python names win outright; XML spellings fall to the first field (in
    declaration order) accepting them.
    """
    fields = cls._ATTRIBUTE_FIELDS
    lookup: dict[str, str] = {}
    for python_name, attr_field in fields.items():
        lookup[python_name] = attr_field.xml_name or attr_field.name
    for attr_field in fields.values():
        install_key = attr_field.xml_name or attr_field.name
        for spelling in (attr_field.xml_name, attr_field.name):
            if spelling:
                lookup.setdefault(spelling, install_key)
    defaults = tuple(
        (
            attr_field.xml_name or attr_field.name,
            attr_field.fixed if attr_field.fixed is not None else attr_field.default,
        )
        for attr_field in fields.values()
        if attr_field.fixed is not None or attr_field.default is not None
    )
    cls._INGEST_ATTRS = (lookup, defaults)
    return cls._INGEST_ATTRS

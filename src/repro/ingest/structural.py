"""Vectorized structural index over an XML source (the numpy fast lane).

simdjson-style stage 1: find every markup delimiter position in one
vectorized sweep instead of discovering them one ``re.match`` at a time.
The document's bytes are viewed as a ``uint8`` array and the positions
of ``<`` and ``>`` fall out of two ``flatnonzero`` passes; the turbo
scanner (:mod:`repro.ingest.table_driven`) then walks tag-body and
text-run *slices* directly instead of running the token regex per tag.

The lane is strictly optional:

* numpy absent (or disabled via the ``REPRO_NO_NUMPY`` environment
  variable, which the CI no-numpy leg sets) → :data:`AVAILABLE` is
  False and :func:`markup_index` returns ``None``;
* non-ASCII documents → ``None`` (byte offsets would diverge from
  character offsets, and every consumer indexes the ``str``).

Either way the caller falls back to the stdlib regex lane, which is
held byte-identical to this one by the parity suite — the index is a
pure accelerator, never a semantic fork.
"""

from __future__ import annotations

import os

try:
    if os.environ.get("REPRO_NO_NUMPY", "") not in ("", "0"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # numpy genuinely missing or explicitly disabled
    _np = None

#: True when the vectorized lane can run at all in this process
AVAILABLE = _np is not None


def markup_index(
    text: str, start: int = 0
) -> tuple[list[int], list[int]] | None:
    """Positions of every ``<`` and ``>`` in ``text[start:]``, sorted.

    Returns ``None`` when numpy is unavailable or *text* is not pure
    ASCII (the byte view would not line up with string indices).  The
    position lists are plain Python ints (``tolist`` converts in C),
    ready for slicing without per-element numpy boxing.
    """
    if _np is None or not text.isascii():
        return None
    data = _np.frombuffer(text.encode("ascii"), dtype=_np.uint8)
    lts = _np.flatnonzero(data == 60)  # ord("<")
    gts = _np.flatnonzero(data == 62)  # ord(">")
    if start:
        lts = lts[_np.searchsorted(lts, start) :]
        gts = gts[_np.searchsorted(gts, start) :]
    return lts.tolist(), gts.tolist()

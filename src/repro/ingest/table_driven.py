"""Table-driven turbo ingest: one regex alternation, flat DFA tables.

:func:`fused_parse` already collapsed parse→DOM→bind into a single
pass, but it still pays the event machinery per token: an ``Event``
object with a ``Location``, an iterator round-trip, and a method call
or two for every tag in the document.  This module removes that layer
for the common case.  The turbo scanner drives typed construction
straight off the source text:

* one **precompiled regex alternation** (:data:`_TOKEN`) recognizes the
  next text run, start tag (attributes included), end tag, or reference
  in a single C-level ``match`` — no chained ``find`` calls, no event
  allocation, no location bookkeeping;
* content models are stepped through the flat integer
  :class:`~repro.automata.tables.DfaTable` arrays — a symbol-id probe
  and two array indexings per child element;
* when numpy is importable (see :mod:`repro.ingest.structural`) an
  **index lane** first locates every ``<``/``>`` in one vectorized
  sweep and walks tag-body slices directly, memoizing the parse of each
  distinct tag body — repeated tags cost a dict probe.

Parity is guaranteed by construction, not by reimplementation:
**the turbo lane never produces its own verdicts**.  It succeeds only
on documents it can prove well-formed and schema-valid along the exact
semantics of the fused route; on *any* deviation — a construct outside
its subset (DOCTYPE, CDATA, comments, PIs, single-quoted or
reference-bearing attributes, ``\\r`` line endings, non-ASCII names), a
syntax anomaly, or a validation failure — it raises the internal
:class:`_Restart` and the document is re-run through
:func:`~repro.ingest.fused.fused_parse`, which produces the
authoritative result: same tree, same exception type, same message,
same :class:`~repro.xml.events.Location`, same syntax-over-validity
error precedence.  Invalid documents therefore pay one extra (fast,
aborted) scan; valid documents — the hot serving case — skip the event
layer entirely.  ``tests/ingest/test_table_parity.py`` holds both lanes
to the fused/legacy routes across the full parity corpus.
"""

from __future__ import annotations

import re

from repro import obs
from repro.core.vdom import Binding, TypedElement
from repro.errors import VdomTypeError, XmlSyntaxError
from repro.ingest import structural
from repro.ingest.fused import (
    _construct,
    _dispatch_info,
    _Frame,
    fused_parse,
)
from repro.xml.chars import char_class
from repro.xml.entities import PREDEFINED_ENTITIES, decode_char_reference


class _Restart(Exception):
    """Internal: the document left the turbo subset; re-run fused."""

    __slots__ = ("reason",)

    def __init__(self, reason: str):
        self.reason = reason


#: XML white space minus ``\r`` (any ``\r`` restarts: §2.11 line-ending
#: normalization is the fused route's business)
_WS = r"[ \t\n]"

#: ASCII-only strict subset of the XML Name production — any name the
#: turbo lane accepts is a valid XML Name; names outside the subset
#: simply fail to match and restart into the fused route
_NAME = r"[A-Za-z_][A-Za-z0-9._:\-]*"

#: zero or more complete attributes: double-quoted values containing no
#: references, no ``<``, and no normalizable white space — exactly the
#: contract of the scanning parser's quick path, so raw values need no
#: further processing
_ATTR_BLOB = rf'(?:{_WS}+{_NAME}{_WS}*={_WS}*"[^"&<\t\n\r]*")*'

#: the master tokenizer: one alternation, one C-level ``match`` per
#: token.  ``lastindex`` dispatches: 1 = text run, 4 = start tag
#: (2 = name, 3 = attribute blob, 4 = self-closing flag), 5 = end tag,
#: 6 = reference body.
_TOKEN = re.compile(
    rf"([^<&]+)"
    rf"|<({_NAME})({_ATTR_BLOB}){_WS}*(/?)>"
    rf"|</({_NAME}){_WS}*>"
    rf"|&(#[0-9]+|#x[0-9A-Fa-f]+|{_NAME});"
)

#: one attribute inside an already-validated blob
_ATTR = re.compile(rf'({_NAME}){_WS}*={_WS}*"([^"]*)"')

#: a strict subset of the XML declaration grammar; declarations outside
#: it leave ``<?`` in the text and the hazard scan restarts
_XML_DECL = re.compile(
    rf'<\?xml{_WS}+version{_WS}*={_WS}*"1\.0"'
    rf'(?:{_WS}+encoding{_WS}*={_WS}*"[A-Za-z][A-Za-z0-9._\-]*")?'
    rf'(?:{_WS}+standalone{_WS}*={_WS}*"(?:yes|no)")?'
    rf"{_WS}*\?>"
)

#: anything that forces the fused route, found in one pre-scan:
#: markup declarations / PIs / CDATA / comments (``<!``, ``<?``),
#: ``]]>`` (an error in content, legal only in constructs we restart on
#: anyway), any ``\r`` (line-ending normalization), any character
#: outside the XML Char production (identical illegality verdicts)
_HAZARD = re.compile(f"<[!?]|]]>|\r|[^{char_class()}]")

#: tag body for the index lane: ``/name`` (end) or ``name attrs /?``
_TAG_BODY = re.compile(rf"/({_NAME}){_WS}*|({_NAME})({_ATTR_BLOB}){_WS}*(/?)")


def table_parse(
    binding: Binding,
    text: str,
    source: str | None = None,
    *,
    lane: str = "auto",
) -> TypedElement:
    """Parse + validate *text* through the turbo lane, fused on restart.

    ``lane`` selects the tokenizer: ``"auto"`` (vectorized index when
    numpy is importable and the text is ASCII, stdlib regex otherwise),
    ``"stdlib"``, or ``"index"`` (raises :class:`ValueError` when numpy
    is unavailable — used by the parity tests to pin a lane).

    Observationally identical to ``fused_parse(binding, text, source)``
    in every outcome; restarts are counted under the
    ``ingest.turbo{outcome=restart}`` observability counter.
    """
    binding._require_no_namespaces("table-driven ingest")
    try:
        root, used = _turbo_parse(binding, text, lane)
    except _Restart as restart:
        obs.count("ingest.turbo", outcome="restart", reason=restart.reason)
        return fused_parse(binding, text, source)
    except VdomTypeError:
        # The fused route decides validity verdicts (and drains the rest
        # of the document so syntax errors keep their precedence).
        obs.count("ingest.turbo", outcome="restart", reason="validation")
        return fused_parse(binding, text, source)
    except XmlSyntaxError:
        # e.g. an out-of-range character reference; let the event parser
        # produce the error with its exact location.
        obs.count("ingest.turbo", outcome="restart", reason="syntax")
        return fused_parse(binding, text, source)
    obs.count("ingest.turbo", outcome="hit", lane=used)
    return root


def _turbo_parse(
    binding: Binding, text: str, lane: str
) -> tuple[TypedElement, str]:
    if text.startswith("﻿"):
        text = text[1:]
    pos = 0
    declaration = _XML_DECL.match(text)
    if declaration is not None:
        pos = declaration.end()
    if _HAZARD.search(text, pos) is not None:
        raise _Restart("hazard")
    if lane == "index":
        index = structural.markup_index(text, pos)
        if index is None:
            raise ValueError(
                "index lane requested but numpy is unavailable "
                "(or the document is not ASCII)"
            )
        return _scan_index(binding, text, pos, index), "index"
    if lane == "auto":
        index = structural.markup_index(text, pos)
        if index is not None:
            return _scan_index(binding, text, pos, index), "index"
    elif lane != "stdlib":
        raise ValueError(f"unknown turbo lane {lane!r}")
    return _scan_regex(binding, text, pos), "stdlib"


def _dispatch_table(binding: Binding) -> dict:
    dispatch = binding.__dict__.get("_ingest_dispatch")
    if dispatch is None:
        dispatch = {}
        binding._ingest_dispatch = dispatch
    return dispatch


def _decode_reference(body: str) -> str:
    """Replacement text for ``&body;`` — restart on anything the event
    parser would have to error on or expand from a DTD."""
    if body[0] == "#":
        try:
            return decode_char_reference(body)
        except XmlSyntaxError:
            raise _Restart("character reference")
    replacement = PREDEFINED_ENTITIES.get(body)
    if replacement is None:
        # A general entity: only a DTD could define it, and DOCTYPE is
        # outside the turbo subset.
        raise _Restart("entity reference")
    return replacement


def _parse_attributes(blob: str) -> list[tuple[str, str]]:
    """Attribute pairs from a regex-validated blob, ``xmlns`` filtered.

    Duplicate names are a well-formedness error even in subtrees the
    typed walk skips, so the check runs before any filtering.
    """
    attributes = _ATTR.findall(blob)
    if len(attributes) > 1:
        seen = set()
        for name, _ in attributes:
            if name in seen:
                raise _Restart("duplicate attribute")
            seen.add(name)
    return [pair for pair in attributes if not pair[0].startswith("xmlns")]


def _scan_regex(binding: Binding, text: str, pos: int) -> TypedElement:
    """The stdlib lane: drive construction off the master alternation."""
    schema = binding.schema
    elements = schema.elements
    class_by_declaration = binding.class_by_declaration
    dispatch = _dispatch_table(binding)
    token_match = _TOKEN.match
    length = len(text)
    stack: list[_Frame] = []
    open_names: list[str] = []
    pending: list[str] = []
    skip_depth = 0
    root: TypedElement | None = None
    while pos < length:
        match = token_match(text, pos)
        if match is None:
            raise _Restart("tokenizer")
        pos = match.end()
        kind = match.lastindex
        if kind == 1:  # text run
            pending.append(match[1])
            continue
        if kind == 6:  # reference
            if not stack:
                raise _Restart("reference outside content")
            pending.append(_decode_reference(match[6]))
            continue
        # A tag boundary: flush the accumulated run as ONE data unit —
        # the event parser emits one Characters per inter-markup run,
        # references joined in, and the fused walk's white-space
        # dropping looks at the whole run.
        if pending:
            data = pending[0] if len(pending) == 1 else "".join(pending)
            pending.clear()
            if stack:
                frame = stack[-1]
                if frame.structured:
                    if data.strip():
                        frame.children.append(data)
                else:
                    frame.text_parts.append(data)
            elif data.strip(" \t\n"):
                # Non-white-space character data outside the root (the
                # parser's white-space production, not str.strip()'s).
                raise _Restart("text outside root")
        if kind == 4:  # start tag
            name = match[2]
            blob = match[3]
            attributes = _parse_attributes(blob) if blob else []
            if stack:
                frame = stack[-1]
                if not frame.structured:
                    # Below a leaf frame: the subtree flattens to text.
                    # Attribute well-formedness was checked above; the
                    # element itself is only depth-tracked.
                    if not match[4]:
                        skip_depth += 1
                        open_names.append(name)
                    continue
                table = frame.table
                sym = table.symbol_ids.get(name)
                if sym is None:
                    raise VdomTypeError(
                        f"<{name}> is not allowed inside <{frame.tag}>"
                    )
                cell = frame.state * table.n_symbols + sym
                target = table.nxt[cell]
                if target < 0:
                    raise VdomTypeError(
                        f"<{name}> is not allowed inside <{frame.tag}>"
                    )
                frame.state = target
                declaration = table.payloads[table.pay[cell]]
            else:
                if root is not None:
                    raise _Restart("multiple root elements")
                declaration = elements.get(name)
                if declaration is None:
                    raise VdomTypeError(
                        f"<{name}> is not a global element of the schema"
                    )
            info = dispatch.get(id(declaration))
            if info is None:
                info = _dispatch_info(schema, class_by_declaration, declaration)
                dispatch[id(declaration)] = info
            new_frame = _Frame(
                name,
                info[0],
                info[1],
                None,
                info[4],
                info[2],
                info[5],
                info[6],
                info[7],
                attributes,
            )
            new_frame.memo = info[8]
            if match[4]:  # self-closing: construct immediately
                element = _construct(binding, new_frame)
                if stack:
                    parent = stack[-1]
                    parent.children.append(element)
                    parent.element_count += 1
                else:
                    root = element
            else:
                stack.append(new_frame)
                open_names.append(name)
        else:  # kind == 5: end tag
            name = match[5]
            if not open_names or open_names[-1] != name:
                raise _Restart("tag mismatch")
            open_names.pop()
            if skip_depth:
                skip_depth -= 1
                continue
            frame = stack.pop()
            element = _construct(binding, frame)
            if stack:
                parent = stack[-1]
                parent.children.append(element)
                parent.element_count += 1
            else:
                root = element
    if open_names:
        raise _Restart("unclosed element")
    if root is None:
        raise _Restart("no root element")
    if pending:
        data = "".join(pending)
        pending.clear()
        if data.strip(" \t\n"):
            raise _Restart("text outside root")
    return root


def _scan_index(
    binding: Binding,
    text: str,
    pos: int,
    index: tuple[list[int], list[int]],
) -> TypedElement:
    """The vectorized lane: walk precomputed ``<``/``>`` positions.

    Tag bodies are sliced straight out of the source and their parse
    (kind, name, attributes, self-closing flag) memoized per distinct
    body string — repeated tags, the overwhelming case in real corpora,
    cost one dict probe.  Byte-identical in every outcome to
    :func:`_scan_regex` (asserted by the parity suite): same subset,
    same restarts, same trees.
    """
    lts, gts = index
    schema = binding.schema
    elements = schema.elements
    class_by_declaration = binding.class_by_declaration
    dispatch = _dispatch_table(binding)
    tag_cache: dict[str, tuple] = {}
    tag_body = _TAG_BODY.fullmatch
    stack: list[_Frame] = []
    open_names: list[str] = []
    pending: list[str] = []
    skip_depth = 0
    root: TypedElement | None = None
    gi = 0
    n_gts = len(gts)
    prev_end = pos
    for lt in lts:
        # -- the text run before this tag ----------------------------------
        if lt > prev_end:
            run = text[prev_end:lt]
            if "&" in run:
                if not stack:
                    raise _Restart("reference outside content")
                parts = run.split("&")
                if parts[0]:
                    pending.append(parts[0])
                for part in parts[1:]:
                    semi = part.find(";")
                    if semi < 0:
                        raise _Restart("unterminated reference")
                    pending.append(_decode_reference(part[:semi]))
                    rest = part[semi + 1 :]
                    if rest:
                        pending.append(rest)
            else:
                pending.append(run)
        # -- the tag itself -------------------------------------------------
        while gi < n_gts and gts[gi] < lt:
            gi += 1
        if gi >= n_gts:
            raise _Restart("unterminated tag")
        gt = gts[gi]
        gi += 1
        prev_end = gt + 1
        body = text[lt + 1 : gt]
        parsed = tag_cache.get(body)
        if parsed is None:
            match = tag_body(body)
            if match is None:
                # Includes '>' inside an attribute value (the slice ends
                # early) and every construct outside the turbo grammar.
                raise _Restart("tokenizer")
            end_name = match[1]
            if end_name is not None:
                parsed = (end_name, None, None)
            else:
                blob = match[3]
                parsed = (
                    None,
                    match[2],
                    (
                        _parse_attributes(blob) if blob else [],
                        bool(match[4]),
                    ),
                )
            tag_cache[body] = parsed
        end_name = parsed[0]
        # -- flush the run at the boundary (one data unit per run) ---------
        if pending:
            data = pending[0] if len(pending) == 1 else "".join(pending)
            pending.clear()
            if stack:
                frame = stack[-1]
                if frame.structured:
                    if data.strip():
                        frame.children.append(data)
                else:
                    frame.text_parts.append(data)
            elif data.strip(" \t\n"):
                raise _Restart("text outside root")
        if end_name is None:  # start tag
            name = parsed[1]
            attributes, self_close = parsed[2]
            if stack:
                frame = stack[-1]
                if not frame.structured:
                    if not self_close:
                        skip_depth += 1
                        open_names.append(name)
                    continue
                table = frame.table
                sym = table.symbol_ids.get(name)
                if sym is None:
                    raise VdomTypeError(
                        f"<{name}> is not allowed inside <{frame.tag}>"
                    )
                cell = frame.state * table.n_symbols + sym
                target = table.nxt[cell]
                if target < 0:
                    raise VdomTypeError(
                        f"<{name}> is not allowed inside <{frame.tag}>"
                    )
                frame.state = target
                declaration = table.payloads[table.pay[cell]]
            else:
                if root is not None:
                    raise _Restart("multiple root elements")
                declaration = elements.get(name)
                if declaration is None:
                    raise VdomTypeError(
                        f"<{name}> is not a global element of the schema"
                    )
            info = dispatch.get(id(declaration))
            if info is None:
                info = _dispatch_info(schema, class_by_declaration, declaration)
                dispatch[id(declaration)] = info
            new_frame = _Frame(
                name,
                info[0],
                info[1],
                None,
                info[4],
                info[2],
                info[5],
                info[6],
                info[7],
                # Frames mutate nothing in the attribute list, but the
                # cached parse is shared across repeats of this body.
                attributes,
            )
            new_frame.memo = info[8]
            if self_close:
                element = _construct(binding, new_frame)
                if stack:
                    parent = stack[-1]
                    parent.children.append(element)
                    parent.element_count += 1
                else:
                    root = element
            else:
                stack.append(new_frame)
                open_names.append(name)
        else:  # end tag
            if not open_names or open_names[-1] != end_name:
                raise _Restart("tag mismatch")
            open_names.pop()
            if skip_depth:
                skip_depth -= 1
                continue
            frame = stack.pop()
            element = _construct(binding, frame)
            if stack:
                parent = stack[-1]
                parent.children.append(element)
                parent.element_count += 1
            else:
                root = element
    if open_names:
        raise _Restart("unclosed element")
    if root is None:
        raise _Restart("no root element")
    if prev_end < len(text):
        tail = text[prev_end:]
        if "&" in tail or tail.strip(" \t\n"):
            raise _Restart("text outside root")
    return root

"""Simple types: the built-in hierarchy plus restriction, list, union.

A :class:`SimpleType` owns a *kernel* (lexical→value parser inherited
from its primitive ancestor or overridden by a built-in derived type), a
merged :class:`~repro.xsd.facets.FacetSet`, and a base pointer used for
derivation checks.  ``BUILTIN_TYPES`` holds the complete built-in
hierarchy of XML Schema Part 2 that the paper's schemas draw from.
"""

from __future__ import annotations

import datetime
import decimal
import enum
from collections.abc import Callable
from typing import Any

from repro.errors import SchemaError, SimpleTypeError
from repro.xml.chars import collapse_whitespace, replace_whitespace
from repro.xsd import values
from repro.xsd.facets import FacetSet, WhiteSpace


class Variety(enum.Enum):
    """The three simple-type varieties."""

    ATOMIC = "atomic"
    LIST = "list"
    UNION = "union"


Kernel = Callable[[str], Any]


class SimpleType:
    """A simple type definition (built-in or schema-derived)."""

    def __init__(
        self,
        name: str | None,
        variety: Variety,
        base: SimpleType | None,
        kernel: Kernel | None = None,
        facets: FacetSet | None = None,
        item_type: SimpleType | None = None,
        member_types: tuple[SimpleType, ...] = (),
        python_type: type | None = None,
    ):
        self.name = name
        self.variety = variety
        self.base = base
        self._kernel = kernel if kernel is not None else (
            base._kernel if base is not None else values.parse_string
        )
        self.facets = facets if facets is not None else (
            base.facets if base is not None else FacetSet()
        )
        self.item_type = item_type
        self.member_types = member_types
        self.python_type = python_type or (
            base.python_type if base is not None else str
        )

    # -- identity ------------------------------------------------------------

    def __repr__(self) -> str:
        label = self.name or "<anonymous>"
        return f"SimpleType({label}, {self.variety.value})"

    # -- pickling (the persistent compilation cache) ---------------------------

    def __reduce_ex__(self, protocol):
        # Built-in types are process-wide singletons (some with closure
        # kernels that cannot be pickled); serialize them as a name
        # lookup so a cached schema rehydrates to the same objects.
        name = self.name
        if name is not None and BUILTIN_TYPES.get(name) is self:
            return (_restore_builtin, (name,))
        return super().__reduce_ex__(protocol)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # A derived type usually shares its base's kernel object; that
        # reference may be an unpicklable closure (the Gregorian
        # builtins).  Mark it inherited and re-resolve after load.
        if self.base is not None and state["_kernel"] is self.base._kernel:
            state["_kernel"] = _INHERITED_KERNEL
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if isinstance(self._kernel, str):  # the inherited-kernel marker
            self._kernel = (
                self.base._kernel if self.base is not None else values.parse_string
            )

    def is_derived_from(self, other: SimpleType) -> bool:
        """True when *other* appears on this type's base chain (or is it)."""
        current: SimpleType | None = self
        while current is not None:
            if current is other or (
                other.name is not None and current.name == other.name
            ):
                return True
            current = current.base
        return False

    def primitive(self) -> SimpleType:
        """The primitive ancestor (self for primitives/list/union)."""
        current = self
        while current.base is not None and current.base.base is not None:
            current = current.base
        return current

    # -- parsing ---------------------------------------------------------------

    def normalize(self, raw: str) -> str:
        mode = self.facets.white_space
        if mode == WhiteSpace.COLLAPSE:
            return collapse_whitespace(raw)
        if mode == WhiteSpace.REPLACE:
            return replace_whitespace(raw)
        return raw

    def parse(self, raw: str) -> Any:
        """Map a raw literal to its value, enforcing every facet."""
        literal = self.normalize(raw)
        self.facets.check_lexical(literal)
        if self.variety is Variety.ATOMIC:
            value = self._kernel(literal)
        elif self.variety is Variety.LIST:
            assert self.item_type is not None
            items = literal.split()
            value = tuple(self.item_type.parse(item) for item in items)
        else:
            value = self._parse_union(literal)
        self.facets.check_value(value, literal)
        return value

    def _parse_union(self, literal: str) -> Any:
        failures: list[str] = []
        for member in self.member_types:
            try:
                return member.parse(literal)
            except SimpleTypeError as error:
                failures.append(f"{member.name or '<anonymous>'}: {error.message}")
        raise SimpleTypeError(
            f"'{literal}' matches no member of union "
            f"{self.name or '<anonymous>'} ({'; '.join(failures)})"
        )

    def validate(self, raw: str) -> None:
        """Parse and discard (raises on invalid literals)."""
        self.parse(raw)

    def is_valid(self, raw: str) -> bool:
        try:
            self.parse(raw)
        except SimpleTypeError:
            return False
        return True


#: primitives whose value space is ordered (range facets applicable)
_ORDERED_PRIMITIVES = frozenset(
    {
        "decimal", "float", "double", "duration", "dateTime", "time",
        "date", "gYearMonth", "gYear", "gMonthDay", "gDay", "gMonth",
    }
)

#: primitives with a length (length facets applicable); lists always have
_LENGTHED_PRIMITIVES = frozenset(
    {
        "string", "anyURI", "QName", "NOTATION", "hexBinary",
        "base64Binary", "anySimpleType",
    }
)

_RANGE_FACETS = ("min_inclusive", "max_inclusive", "min_exclusive",
                 "max_exclusive")
_LENGTH_FACETS = ("length", "min_length", "max_length")
_DIGIT_FACETS = ("total_digits", "fraction_digits")


def _check_facet_applicability(
    base: SimpleType, facet_arguments: dict[str, Any]
) -> None:
    """Reject facets the base type's primitive cannot carry (XSD Part 2
    applicability tables)."""
    if base.variety is Variety.LIST:
        for facet in _RANGE_FACETS + _DIGIT_FACETS:
            if facet_arguments.get(facet) is not None:
                raise SchemaError(
                    f"facet '{facet}' is not applicable to a list type"
                )
        return
    primitive = base.primitive().name or "anySimpleType"
    ordered = primitive in _ORDERED_PRIMITIVES
    lengthed = primitive in _LENGTHED_PRIMITIVES
    for facet in _RANGE_FACETS:
        if facet_arguments.get(facet) is not None and not ordered:
            raise SchemaError(
                f"facet '{facet}' is not applicable to types derived "
                f"from '{primitive}' (unordered value space)"
            )
    for facet in _LENGTH_FACETS:
        if facet_arguments.get(facet) is not None and not lengthed:
            raise SchemaError(
                f"facet '{facet}' is not applicable to types derived "
                f"from '{primitive}'"
            )
    for facet in _DIGIT_FACETS:
        if facet_arguments.get(facet) is not None and primitive != "decimal":
            raise SchemaError(
                f"facet '{facet}' only applies to decimal-derived types, "
                f"not '{primitive}'"
            )


def restrict(
    base: SimpleType,
    name: str | None = None,
    **facet_arguments: Any,
) -> SimpleType:
    """Derive a new simple type from *base* by restriction.

    Facet keyword arguments mirror ``FacetSet.derive``; range and
    enumeration literals are interpreted by *base* so they live in its
    value space (exactly how ``maxExclusive value="100"`` on the paper's
    ``quantity`` element is handled).  Facets inapplicable to the base's
    primitive (a range on a string, digits on a float) are rejected.
    """
    if base.variety is Variety.UNION and any(
        key not in ("patterns", "enumeration") for key in facet_arguments
    ):
        raise SchemaError(
            "a union type only supports pattern and enumeration facets"
        )
    _check_facet_applicability(base, facet_arguments)
    facets = base.facets.derive(parse=base.parse, **facet_arguments)
    return SimpleType(
        name,
        base.variety,
        base,
        kernel=base._kernel,
        facets=facets,
        item_type=base.item_type,
        member_types=base.member_types,
        python_type=base.python_type,
    )


def list_of(item_type: SimpleType, name: str | None = None) -> SimpleType:
    """Construct a list simple type (``<xsd:list itemType=.../>``)."""
    if item_type.variety is Variety.LIST:
        raise SchemaError("the item type of a list may not itself be a list")
    return SimpleType(
        name,
        Variety.LIST,
        BUILTIN_TYPES["anySimpleType"],
        facets=FacetSet(white_space=WhiteSpace.COLLAPSE),
        item_type=item_type,
        python_type=tuple,
    )


def union_of(
    member_types: tuple[SimpleType, ...], name: str | None = None
) -> SimpleType:
    """Construct a union simple type (``<xsd:union memberTypes=.../>``)."""
    if not member_types:
        raise SchemaError("a union needs at least one member type")
    return SimpleType(
        name,
        Variety.UNION,
        BUILTIN_TYPES["anySimpleType"],
        facets=FacetSet(white_space=WhiteSpace.COLLAPSE),
        member_types=tuple(member_types),
        python_type=object,
    )


# ---------------------------------------------------------------------------
# Built-in hierarchy
# ---------------------------------------------------------------------------

BUILTIN_TYPES: dict[str, SimpleType] = {}

#: pickle placeholder for "same kernel object as the base type"
_INHERITED_KERNEL = "__kernel-inherited-from-base__"


def _restore_builtin(name: str) -> SimpleType:
    return BUILTIN_TYPES[name]


def _register(simple_type: SimpleType) -> SimpleType:
    assert simple_type.name is not None
    BUILTIN_TYPES[simple_type.name] = simple_type
    return simple_type


def _primitive(
    name: str,
    kernel: Kernel,
    python_type: type,
    white_space: str = WhiteSpace.COLLAPSE,
) -> SimpleType:
    facets = FacetSet(white_space=white_space)
    if white_space == WhiteSpace.COLLAPSE:
        facets = FacetSet(
            white_space=WhiteSpace.COLLAPSE, fixed=frozenset({"whiteSpace"})
        )
    return _register(
        SimpleType(
            name,
            Variety.ATOMIC,
            _ANY_SIMPLE,
            kernel=kernel,
            facets=facets,
            python_type=python_type,
        )
    )


def _derived(
    name: str,
    base: SimpleType,
    kernel: Kernel | None = None,
    python_type: type | None = None,
    **facet_arguments: Any,
) -> SimpleType:
    facets = base.facets.derive(parse=base.parse, **facet_arguments)
    return _register(
        SimpleType(
            name,
            Variety.ATOMIC,
            base,
            kernel=kernel if kernel is not None else base._kernel,
            facets=facets,
            python_type=python_type or base.python_type,
        )
    )


_ANY_SIMPLE = _register(
    SimpleType("anySimpleType", Variety.ATOMIC, None, kernel=values.parse_string)
)

_STRING = _primitive(
    "string", values.parse_string, str, white_space=WhiteSpace.PRESERVE
)
_BOOLEAN = _primitive("boolean", values.parse_boolean, bool)
_DECIMAL = _primitive("decimal", values.parse_decimal, decimal.Decimal)
_FLOAT = _primitive("float", values.parse_float, float)
_DOUBLE = _primitive("double", values.parse_float, float)
_DURATION = _primitive("duration", values.parse_duration, values.Duration)
_DATETIME = _primitive("dateTime", values.parse_datetime, datetime.datetime)
_TIME = _primitive("time", values.parse_time, datetime.time)
_DATE = _primitive("date", values.parse_date, datetime.date)
for _gregorian in ("gYearMonth", "gYear", "gMonthDay", "gDay", "gMonth"):
    _primitive(
        _gregorian,
        (lambda kind: lambda literal: values.parse_gregorian(kind, literal))(
            _gregorian
        ),
        str,
    )
_HEX = _primitive("hexBinary", values.parse_hex_binary, bytes)
_BASE64 = _primitive("base64Binary", values.parse_base64_binary, bytes)
_ANYURI = _primitive("anyURI", values.parse_any_uri, str)
_QNAME = _primitive("QName", values.parse_qname_literal, str)
_NOTATION = _primitive("NOTATION", values.parse_qname_literal, str)

_NORMALIZED = _register(
    SimpleType(
        "normalizedString",
        Variety.ATOMIC,
        _STRING,
        facets=FacetSet(white_space=WhiteSpace.REPLACE),
    )
)
_TOKEN = _register(
    SimpleType(
        "token",
        Variety.ATOMIC,
        _NORMALIZED,
        facets=FacetSet(white_space=WhiteSpace.COLLAPSE),
    )
)
_LANGUAGE = _derived("language", _TOKEN, kernel=values.parse_language)
_NMTOKEN = _derived("NMTOKEN", _TOKEN, kernel=values.parse_nmtoken)
_NAME = _derived("Name", _TOKEN, kernel=values.parse_name)
_NCNAME = _derived("NCName", _NAME, kernel=values.parse_ncname)
_ID = _derived("ID", _NCNAME)
_IDREF = _derived("IDREF", _NCNAME)
_ENTITY = _derived("ENTITY", _NCNAME)

for _list_name, _item in (
    ("NMTOKENS", _NMTOKEN),
    ("IDREFS", _IDREF),
    ("ENTITIES", _ENTITY),
):
    _list_base = list_of(_item)
    _register(
        SimpleType(
            _list_name,
            Variety.LIST,
            _list_base,
            facets=_list_base.facets.derive(parse=_list_base.parse, min_length=1),
            item_type=_item,
            python_type=tuple,
        )
    )

_INTEGER = _derived(
    "integer",
    _DECIMAL,
    kernel=values.parse_integer,
    python_type=int,
    fraction_digits=0,
    fixed_names=frozenset({"fractionDigits"}),
)
_NON_POSITIVE = _derived("nonPositiveInteger", _INTEGER, max_inclusive="0")
_NEGATIVE = _derived("negativeInteger", _NON_POSITIVE, max_inclusive="-1")
_LONG = _derived(
    "long",
    _INTEGER,
    min_inclusive="-9223372036854775808",
    max_inclusive="9223372036854775807",
)
_INT = _derived(
    "int", _LONG, min_inclusive="-2147483648", max_inclusive="2147483647"
)
_SHORT = _derived("short", _INT, min_inclusive="-32768", max_inclusive="32767")
_BYTE = _derived("byte", _SHORT, min_inclusive="-128", max_inclusive="127")
_NON_NEGATIVE = _derived("nonNegativeInteger", _INTEGER, min_inclusive="0")
_UNSIGNED_LONG = _derived(
    "unsignedLong", _NON_NEGATIVE, max_inclusive="18446744073709551615"
)
_UNSIGNED_INT = _derived("unsignedInt", _UNSIGNED_LONG, max_inclusive="4294967295")
_UNSIGNED_SHORT = _derived("unsignedShort", _UNSIGNED_INT, max_inclusive="65535")
_UNSIGNED_BYTE = _derived("unsignedByte", _UNSIGNED_SHORT, max_inclusive="255")
_POSITIVE = _derived("positiveInteger", _NON_NEGATIVE, min_inclusive="1")


def builtin_type(name: str) -> SimpleType:
    """Look up a built-in type by its local name (e.g. ``'decimal'``)."""
    try:
        return BUILTIN_TYPES[name]
    except KeyError:
        raise SchemaError(f"'{name}' is not a built-in XML Schema type")

"""Schema components: elements, particles, model groups, complex types.

The component model follows XML Schema Part 1 structures, trimmed to the
feature set the paper handles (no wildcards, no identity constraints;
``all`` groups treated like sequences, as the paper states in Sect. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Union

from repro.errors import SchemaError
from repro.automata import (
    Alternation,
    Dfa,
    DfaTable,
    Epsilon,
    Regex,
    Repetition,
    Sequence,
    Symbol,
    build_dfa,
)
from repro.automata.rex import UNBOUNDED
from repro.xsd.simple import SimpleType

TypeDefinition = Union[SimpleType, "ComplexType"]


def expanded_name(namespace: str | None, local_name: str) -> str:
    """The matching key for a component: Clark notation when namespaced.

    ``{uri}local`` for components in a namespace, the bare local name
    otherwise — so schemas without namespaces keep exactly the keys (and
    the DFA symbol tables, error messages, and cache artifacts) they had
    before namespace support existed.
    """
    if namespace:
        return f"{{{namespace}}}{local_name}"
    return local_name


class Compositor(enum.Enum):
    """Model-group compositors."""

    SEQUENCE = "sequence"
    CHOICE = "choice"
    ALL = "all"


class ContentType(enum.Enum):
    """Complex-type content categories."""

    EMPTY = "empty"
    SIMPLE = "simple"
    ELEMENT_ONLY = "element-only"
    MIXED = "mixed"


class DerivationMethod(enum.Enum):
    """How a complex type is derived from its base."""

    NONE = "none"
    EXTENSION = "extension"
    RESTRICTION = "restriction"


@dataclass
class ElementDeclaration:
    """``<xsd:element>`` — global or local.

    ``type_definition`` is filled in during schema resolution; until then
    ``type_name`` carries the (possibly prefixed) reference.
    """

    name: str
    type_name: str | None = None
    type_definition: TypeDefinition | None = None
    is_global: bool = False
    abstract: bool = False
    substitution_group: str | None = None
    default: str | None = None
    fixed: str | None = None
    #: the namespace instance elements must use to match this
    #: declaration: the schema document's ``targetNamespace`` for global
    #: declarations, and for local ones only when ``form`` /
    #: ``elementFormDefault`` says *qualified*
    target_namespace: str | None = None

    @property
    def key(self) -> str:
        """The expanded name content models and lookups match on."""
        return expanded_name(self.target_namespace, self.name)

    def resolved_type(self) -> TypeDefinition:
        if self.type_definition is None:
            raise SchemaError(
                f"element '{self.name}' has no resolved type "
                f"(reference '{self.type_name}')"
            )
        return self.type_definition

    def __repr__(self) -> str:
        return f"ElementDeclaration({self.name!r})"


@dataclass
class ModelGroup:
    """A sequence/choice/all group of particles."""

    compositor: Compositor
    particles: list[Particle] = field(default_factory=list)
    #: set for named group definitions and by V-DOM normalization
    name: str | None = None

    def __repr__(self) -> str:
        return (
            f"ModelGroup({self.compositor.value}, "
            f"{len(self.particles)} particles, name={self.name!r})"
        )


@dataclass
class GroupReference:
    """``<xsd:group ref="..."/>`` before/after resolution."""

    ref: str
    definition: GroupDefinition | None = None

    def resolved(self) -> ModelGroup:
        if self.definition is None:
            raise SchemaError(f"unresolved group reference '{self.ref}'")
        return self.definition.model_group


Term = Union[ElementDeclaration, ModelGroup, GroupReference]


@dataclass
class Particle:
    """A term with occurrence bounds."""

    term: Term
    min_occurs: int = 1
    max_occurs: int = 1  # UNBOUNDED (-1) for 'unbounded'

    def occurs_once(self) -> bool:
        return self.min_occurs == 1 and self.max_occurs == 1

    def is_optional(self) -> bool:
        return self.min_occurs == 0

    def is_list(self) -> bool:
        """The paper's "list expression": maxOccurs > 1 (or unbounded)."""
        return self.max_occurs == UNBOUNDED or self.max_occurs > 1

    def __repr__(self) -> str:
        bound = "unbounded" if self.max_occurs == UNBOUNDED else self.max_occurs
        return f"Particle({self.term!r}, {self.min_occurs}..{bound})"


@dataclass
class GroupDefinition:
    """``<xsd:group name="...">`` — the paper's *explicit naming* hook."""

    name: str
    model_group: ModelGroup


@dataclass
class AttributeDeclaration:
    """``<xsd:attribute>``"""

    name: str
    type_name: str | None = None
    type_definition: SimpleType | None = None
    #: non-None for global attribute declarations and for local ones
    #: with qualified form — unprefixed instance attributes are in *no*
    #: namespace, so the default here stays None
    target_namespace: str | None = None
    #: value constraints carried by *global* declarations; ``ref=`` uses
    #: inherit them unless the use overrides
    default: str | None = None
    fixed: str | None = None

    @property
    def key(self) -> str:
        return expanded_name(self.target_namespace, self.name)

    def resolved_type(self) -> SimpleType:
        if self.type_definition is None:
            raise SchemaError(
                f"attribute '{self.name}' has no resolved type "
                f"(reference '{self.type_name}')"
            )
        return self.type_definition


@dataclass
class AttributeUse:
    """An attribute declaration plus its per-type use constraints."""

    declaration: AttributeDeclaration
    required: bool = False
    default: str | None = None
    fixed: str | None = None

    @property
    def name(self) -> str:
        return self.declaration.name

    @property
    def key(self) -> str:
        """The expanded attribute name instance attributes match on."""
        return self.declaration.key


@dataclass
class ComplexType:
    """``<xsd:complexType>``"""

    name: str | None = None
    base_name: str | None = None
    base: TypeDefinition | None = None
    derivation: DerivationMethod = DerivationMethod.NONE
    abstract: bool = False
    mixed: bool = False
    content: Particle | None = None
    #: for simpleContent: the simple type of the text value
    simple_content: SimpleType | None = None
    attribute_uses: dict[str, AttributeUse] = field(default_factory=dict)
    #: unresolved attribute-group references
    attribute_group_refs: list[str] = field(default_factory=list)
    #: memo for :meth:`effective_attribute_uses`, guarded by the local
    #: use count so incremental additions (DTD ATTLIST) stay visible
    _uses_cache: tuple[int, dict[str, AttributeUse]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def content_type(self) -> ContentType:
        if self.simple_content is not None:
            return ContentType.SIMPLE
        has_elements = self.content is not None and _has_elements(self.content)
        if (
            not has_elements
            and self.derivation is DerivationMethod.EXTENSION
            and isinstance(self.base, ComplexType)
        ):
            # An attribute-only extension inherits the base's particle,
            # so classify from the effective content, not the local one.
            inherited = self.base.effective_content()
            has_elements = inherited is not None and _has_elements(inherited)
        if not has_elements:
            return ContentType.MIXED if self.mixed else ContentType.EMPTY
        return ContentType.MIXED if self.mixed else ContentType.ELEMENT_ONLY

    def effective_content(self) -> Particle | None:
        """Content particle including inherited base content (extension).

        For an extension the spec prescribes a sequence of the base's
        content followed by the extension's own particle; restriction
        replaces the base content outright.
        """
        if self.derivation is not DerivationMethod.EXTENSION:
            return self.content
        base = self.base
        base_content = (
            base.effective_content() if isinstance(base, ComplexType) else None
        )
        if base_content is None:
            return self.content
        if self.content is None:
            return base_content
        combined = ModelGroup(
            Compositor.SEQUENCE, [base_content, self.content]
        )
        return Particle(combined)

    def effective_attribute_uses(self) -> dict[str, AttributeUse]:
        """Attribute uses including those inherited from the base chain.

        Memoized — validation consults this per element on the ingest
        hot path.  Callers must treat the result as read-only.
        """
        # getattr: instances unpickled from artifacts written before this
        # field existed have no ``_uses_cache`` in their ``__dict__``
        cache = getattr(self, "_uses_cache", None)
        count = len(self.attribute_uses)
        if cache is not None and cache[0] == count:
            return cache[1]
        merged: dict[str, AttributeUse] = {}
        if isinstance(self.base, ComplexType):
            merged.update(self.base.effective_attribute_uses())
        merged.update(self.attribute_uses)
        self._uses_cache = (count, merged)
        return merged

    def is_derived_from(self, other: ComplexType) -> bool:
        current: TypeDefinition | None = self
        while isinstance(current, ComplexType):
            if current is other or (
                other.name is not None and current.name == other.name
            ):
                return True
            current = current.base
        return False

    def __repr__(self) -> str:
        return f"ComplexType({self.name!r}, {self.content_type.value})"

    def __reduce_ex__(self, protocol):
        # The ur-type is compared by identity (``definition is ANY_TYPE``)
        # all over the generator and V-DOM runtime; a cached schema must
        # rehydrate to the singleton, not a copy.
        if self is ANY_TYPE:
            return (_restore_any_type, ())
        return super().__reduce_ex__(protocol)


def _restore_any_type() -> "ComplexType":
    return ANY_TYPE


def _has_elements(particle: Particle) -> bool:
    term = particle.term
    if isinstance(term, ElementDeclaration):
        return True
    if isinstance(term, GroupReference):
        return _has_elements(Particle(term.resolved()))
    return any(_has_elements(child) for child in term.particles)


#: The ur-type: anything goes.  Used as the default base.
ANY_TYPE = ComplexType(name="anyType", mixed=True)


class Schema:
    """A resolved schema: global components plus automaton caching."""

    def __init__(self, target_namespace: str | None = None):
        self.target_namespace = target_namespace
        #: every target namespace that contributed components (imports
        #: included); empty for namespace-free schemas
        self.namespaces: set[str] = set()
        if target_namespace:
            self.namespaces.add(target_namespace)
        #: global maps are keyed by :func:`expanded_name` — the bare
        #: local name for namespace-free components, Clark notation
        #: (``{uri}local``) otherwise
        self.elements: dict[str, ElementDeclaration] = {}
        self.types: dict[str, TypeDefinition] = {}
        self.groups: dict[str, GroupDefinition] = {}
        self.attribute_groups: dict[str, list[AttributeUse]] = {}
        #: global ``<xsd:attribute>`` declarations (``ref=`` targets)
        self.attributes: dict[str, AttributeDeclaration] = {}
        #: head element key -> members (transitively closed at resolution)
        self.substitution_members: dict[str, list[ElementDeclaration]] = {}
        #: ``(resolved location, content sha256)`` of every document
        #: reached through include/import — caches re-hash these to
        #: detect edits to related documents
        self.related_documents: tuple[tuple[str, str], ...] = ()
        #: root element keys this schema was subset to (lazy binding);
        #: empty for a full schema
        self.subset_roots: tuple[str, ...] = ()
        #: id(complex_type) -> (complex_type, dfa); the type reference is
        #: retained so the cache can be re-keyed after unpickling, when
        #: every object identity (and so every ``id()``) has changed
        self._dfa_cache: dict[int, tuple[ComplexType, Dfa]] = {}
        self._table_cache: dict[int, tuple[ComplexType, DfaTable]] = {}

    @property
    def uses_namespaces(self) -> bool:
        """True when any component lives in a namespace.

        Namespace-free schemas (the paper's own examples, DTD
        conversions) keep the exact pre-namespace behavior everywhere
        this is consulted.
        """
        # getattr: Schema instances built before this field existed
        # (old pickles, hand-rolled test doubles) count as namespace-free
        return bool(getattr(self, "namespaces", None))

    # -- lookups ---------------------------------------------------------------

    def element(self, name: str) -> ElementDeclaration:
        try:
            return self.elements[name]
        except KeyError:
            raise SchemaError(f"no global element '{name}' in the schema")

    def type_definition(self, name: str) -> TypeDefinition:
        try:
            return self.types[name]
        except KeyError:
            raise SchemaError(f"no type definition '{name}' in the schema")

    def group(self, name: str) -> GroupDefinition:
        try:
            return self.groups[name]
        except KeyError:
            raise SchemaError(f"no model group '{name}' in the schema")

    def substitution_alternatives(
        self, declaration: ElementDeclaration
    ) -> list[ElementDeclaration]:
        """Elements usable where *declaration* is expected.

        The head itself (unless abstract) plus every member of its
        substitution group, transitively.
        """
        alternatives: list[ElementDeclaration] = []
        if not declaration.abstract:
            alternatives.append(declaration)
        alternatives.extend(self.substitution_members.get(declaration.key, ()))
        return alternatives

    # -- content automata ------------------------------------------------------------

    def particle_to_regex(self, particle: Particle) -> Regex:
        """Translate a particle tree to the automaton regex AST.

        Element terminals carry the :class:`ElementDeclaration` as their
        payload; substitution-group members become alternations, which is
        how "elements can be substituted for other elements" reaches the
        matcher.
        """
        term = particle.term
        if isinstance(term, ElementDeclaration):
            alternatives = self.substitution_alternatives(
                self.elements.get(term.key, term)
                if term.is_global
                else term
            )
            if not alternatives:
                base: Regex = Symbol(term)
            elif len(alternatives) == 1:
                base = Symbol(alternatives[0])
            else:
                base = Alternation([Symbol(alt) for alt in alternatives])
        elif isinstance(term, GroupReference):
            return self.particle_to_regex(
                Particle(term.resolved(), particle.min_occurs, particle.max_occurs)
            )
        else:
            parts = [self.particle_to_regex(child) for child in term.particles]
            if not parts:
                base = Epsilon()
            elif term.compositor is Compositor.CHOICE:
                base = Alternation(parts)
            else:
                # ALL is treated like SEQUENCE, exactly as the paper does.
                base = Sequence(parts)
        if particle.occurs_once():
            return base
        return Repetition(base, particle.min_occurs, particle.max_occurs)

    def check_unique_particle_attribution(self) -> list[SchemaError]:
        """Check every named complex type against the UPA constraint.

        XML Schema requires deterministic content models (Unique
        Particle Attribution); the validator here tolerates ambiguity
        via subset construction, so the check is advisory — run it to
        know whether a schema is portable to stricter processors.
        """
        from repro.automata.glushkov import NondeterminismError

        violations: list[SchemaError] = []
        for name, definition in self.types.items():
            if not isinstance(definition, ComplexType):
                continue
            content = definition.effective_content()
            if content is None:
                continue
            try:
                build_dfa(
                    self.particle_to_regex(content),
                    key=lambda declaration: declaration.key,
                    require_deterministic=True,
                )
            except NondeterminismError as error:
                violations.append(
                    SchemaError(
                        f"type '{name}' violates Unique Particle "
                        f"Attribution: {error}"
                    )
                )
        return violations

    def content_dfa(self, complex_type: ComplexType) -> Dfa:
        """DFA for *complex_type*'s effective element content (cached)."""
        cache_key = id(complex_type)
        if cache_key not in self._dfa_cache:
            content = complex_type.effective_content()
            regex: Regex = (
                self.particle_to_regex(content) if content is not None else Epsilon()
            )
            self._dfa_cache[cache_key] = (
                complex_type,
                build_dfa(regex, key=lambda declaration: declaration.key),
            )
        return self._dfa_cache[cache_key][1]

    def content_table(self, complex_type: ComplexType) -> DfaTable:
        """Flat integer transition table for *complex_type* (cached).

        Same automaton as :meth:`content_dfa` — identical state numbering,
        acceptance, and payload attribution — compiled down to
        ``array('i')`` matrices for the table-driven hot loops.
        """
        cache_key = id(complex_type)
        if cache_key not in self._table_cache:
            self._table_cache[cache_key] = (
                complex_type,
                DfaTable.from_dfa(self.content_dfa(complex_type)),
            )
        return self._table_cache[cache_key][1]

    # -- pickling (the persistent compilation cache) ------------------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        # ``id()`` keys are meaningless in another process; ship the
        # (type, dfa) pairs and re-key on load.
        state["_dfa_cache"] = list(self._dfa_cache.values())
        state["_table_cache"] = list(self._table_cache.values())
        return state

    def __setstate__(self, state: dict) -> None:
        pairs = state.pop("_dfa_cache")
        # Older artifacts predate the table cache; default to empty.
        table_pairs = state.pop("_table_cache", [])
        self.__dict__.update(state)
        self._dfa_cache = {
            id(complex_type): (complex_type, dfa) for complex_type, dfa in pairs
        }
        self._table_cache = {
            id(complex_type): (complex_type, table)
            for complex_type, table in table_pairs
        }

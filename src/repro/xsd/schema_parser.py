"""Parse XML Schema documents into the component model.

The parser walks a DOM built by :mod:`repro.dom` in two phases: first it
indexes the global definitions (elements, types, groups, attribute
groups), then it resolves references on demand with cycle detection, so
forward references — ubiquitous in real schemas, including the paper's
purchase order schema — just work.

Supported surface: element, complexType (complexContent/simpleContent
with extension/restriction), simpleType (restriction/list/union with all
standard facets), group, attributeGroup, attribute, annotation (skipped),
abstract elements/types, substitutionGroup.  Wildcards, identity
constraints, import/include/redefine raise
:class:`~repro.errors.UnsupportedFeatureError` — matching the feature
boundary the paper draws in Sect. 3.
"""

from __future__ import annotations

from repro.errors import SchemaError, SimpleTypeError, UnsupportedFeatureError
from repro.xml.qname import XSD_NAMESPACE
from repro.dom import Element, parse_document
from repro.automata.rex import UNBOUNDED
from repro.xsd.components import (
    AttributeDeclaration,
    AttributeUse,
    ANY_TYPE,
    ComplexType,
    Compositor,
    DerivationMethod,
    ElementDeclaration,
    GroupDefinition,
    GroupReference,
    ModelGroup,
    Particle,
    Schema,
    TypeDefinition,
)
from repro.xsd.simple import (
    BUILTIN_TYPES,
    SimpleType,
    list_of,
    restrict,
    union_of,
)

_UNSUPPORTED = {
    "any": "wildcards (xsd:any)",
    "anyAttribute": "attribute wildcards (xsd:anyAttribute)",
    "key": "identity constraints (xsd:key)",
    "keyref": "identity constraints (xsd:keyref)",
    "unique": "identity constraints (xsd:unique)",
    "import": "schema composition (xsd:import)",
    "include": "schema composition (xsd:include)",
    "redefine": "schema composition (xsd:redefine)",
}

_FACET_NAMES = {
    "length",
    "minLength",
    "maxLength",
    "pattern",
    "enumeration",
    "whiteSpace",
    "minInclusive",
    "maxInclusive",
    "minExclusive",
    "maxExclusive",
    "totalDigits",
    "fractionDigits",
}


def parse_schema(text: str, source: str | None = None) -> Schema:
    """Parse schema-document *text* into a resolved :class:`Schema`."""
    document = parse_document(text, source)
    root = document.document_element
    if root is None:
        raise SchemaError("schema document has no root element")
    return parse_schema_document(root)


def parse_schema_document(root: Element) -> Schema:
    """Parse a DOM whose root is ``<xsd:schema>``."""
    return _SchemaParser(root).parse()


class _SchemaParser:
    def __init__(self, root: Element):
        self._root = root
        self._xsd_prefixes: set[str] = set()
        self._default_is_xsd = False
        self._scan_namespace_bindings(root)
        local = self._local_name(root)
        if local != "schema":
            raise SchemaError(
                f"root element is <{root.tag_name}>, expected an xsd:schema"
            )
        self._schema = Schema(
            target_namespace=root.get_attribute("targetNamespace") or None
        )
        # Global definition indexes (DOM nodes until resolved).
        self._type_nodes: dict[str, Element] = {}
        self._group_nodes: dict[str, Element] = {}
        self._attribute_group_nodes: dict[str, Element] = {}
        self._element_nodes: dict[str, Element] = {}
        self._resolving: set[str] = set()
        #: (particle, ref) patches for <element ref="..."/>
        self._element_ref_patches: list[tuple[Particle, str]] = []

    # -- namespace handling -----------------------------------------------------

    def _scan_namespace_bindings(self, root: Element) -> None:
        """Find prefixes bound to the XSD namespace on the root element.

        Nested re-bindings are rare in schema documents and unsupported;
        they would silently change element identities, so we fail fast if
        we meet one below the root.
        """
        for name, value in root.attributes.items():
            if name == "xmlns" and value == XSD_NAMESPACE:
                self._default_is_xsd = True
            elif name.startswith("xmlns:") and value == XSD_NAMESPACE:
                self._xsd_prefixes.add(name[len("xmlns:") :])
        if not self._xsd_prefixes and not self._default_is_xsd:
            # Tolerate schemas written without namespace declarations
            # (common in teaching material, incl. the paper's snippets).
            self._default_is_xsd = True
            self._xsd_prefixes.update({"xsd", "xs"})

    def _local_name(self, element: Element) -> str | None:
        """Local name if *element* is an XSD-namespace element else None."""
        prefix, colon, local = element.tag_name.partition(":")
        if not colon:
            return element.tag_name if self._default_is_xsd else None
        if prefix in self._xsd_prefixes:
            return local
        if prefix.startswith("xmlns"):
            return None
        for name, value in element.attributes.items():
            if name == f"xmlns:{prefix}" and value == XSD_NAMESPACE:
                return local
        return None

    def _split_reference(self, reference: str) -> tuple[bool, str]:
        """Return (is_builtin_namespace, local_name) for a QName reference."""
        prefix, colon, local = reference.partition(":")
        if not colon:
            # Unprefixed: builtin if the default namespace is XSD *and*
            # there is no local definition shadowing it.
            return False, reference
        return prefix in self._xsd_prefixes, local

    # -- child iteration ----------------------------------------------------------

    def _xsd_children(self, element: Element) -> list[tuple[str, Element]]:
        children: list[tuple[str, Element]] = []
        for child in element.child_elements():
            local = self._local_name(child)
            if local is None:
                raise SchemaError(
                    f"foreign element <{child.tag_name}> inside the schema"
                )
            if local in _UNSUPPORTED:
                raise UnsupportedFeatureError(
                    f"{_UNSUPPORTED[local]} are not supported "
                    "(the paper's V-DOM does not handle them)"
                )
            if local in ("annotation", "notation"):
                continue
            children.append((local, child))
        return children

    # -- top level -------------------------------------------------------------------

    def parse(self) -> Schema:
        for local, child in self._xsd_children(self._root):
            name = child.get_attribute("name")
            if local in ("complexType", "simpleType"):
                self._require_name(name, local)
                if name in self._type_nodes or name in BUILTIN_TYPES:
                    raise SchemaError(f"duplicate type definition '{name}'")
                self._type_nodes[name] = child
            elif local == "element":
                self._require_name(name, local)
                if name in self._element_nodes:
                    raise SchemaError(f"duplicate global element '{name}'")
                self._element_nodes[name] = child
            elif local == "group":
                self._require_name(name, local)
                if name in self._group_nodes:
                    raise SchemaError(f"duplicate group definition '{name}'")
                self._group_nodes[name] = child
            elif local == "attributeGroup":
                self._require_name(name, local)
                if name in self._attribute_group_nodes:
                    raise SchemaError(f"duplicate attribute group '{name}'")
                self._attribute_group_nodes[name] = child
            elif local == "attribute":
                raise UnsupportedFeatureError(
                    "global attribute declarations are not supported"
                )
            else:
                raise SchemaError(f"unexpected top-level xsd:{local}")

        for name in self._type_nodes:
            self._resolve_type(name)
        for name in self._group_nodes:
            self._resolve_group(name)
        for name in self._element_nodes:
            self._resolve_global_element(name)
        self._patch_element_references()
        self._close_substitution_groups()
        return self._schema

    @staticmethod
    def _require_name(name: str, what: str) -> None:
        if not name:
            raise SchemaError(f"top-level xsd:{what} needs a 'name' attribute")

    # -- reference resolution -------------------------------------------------------

    def _resolve_type_reference(self, reference: str) -> TypeDefinition:
        is_builtin_ns, local = self._split_reference(reference)
        if is_builtin_ns:
            if local == "anyType":
                return ANY_TYPE
            if local in BUILTIN_TYPES:
                return BUILTIN_TYPES[local]
            raise SchemaError(f"unknown built-in type '{reference}'")
        if local in self._schema.types:
            return self._schema.types[local]
        if local in self._type_nodes:
            return self._resolve_type(local)
        # Fall back to built-ins for unprefixed references in schemas
        # whose default namespace is XSD.
        if local in BUILTIN_TYPES:
            return BUILTIN_TYPES[local]
        if local == "anyType":
            return ANY_TYPE
        raise SchemaError(f"reference to undefined type '{reference}'")

    def _resolve_simple_type_reference(self, reference: str) -> SimpleType:
        resolved = self._resolve_type_reference(reference)
        if not isinstance(resolved, SimpleType):
            raise SchemaError(f"'{reference}' is not a simple type")
        return resolved

    def _resolve_type(self, name: str) -> TypeDefinition:
        if name in self._schema.types:
            return self._schema.types[name]
        if name in self._resolving:
            raise SchemaError(f"circular type definition involving '{name}'")
        self._resolving.add(name)
        try:
            node = self._type_nodes[name]
            local = self._local_name(node)
            if local == "simpleType":
                definition: TypeDefinition = self._parse_simple_type(node, name)
                self._schema.types[name] = definition
            else:
                # Register the shell first so recursive content models
                # (a Tree containing Tree children) resolve to it.
                shell = self._complex_type_shell(node, name)
                self._schema.types[name] = shell
                self._fill_complex_type(node, shell)
                definition = shell
            return definition
        finally:
            self._resolving.discard(name)

    def _resolve_group(self, name: str) -> GroupDefinition:
        if name in self._schema.groups:
            return self._schema.groups[name]
        if name in self._resolving:
            raise SchemaError(f"circular group definition involving '{name}'")
        self._resolving.add(name)
        try:
            node = self._group_nodes.get(name)
            if node is None:
                raise SchemaError(f"reference to undefined group '{name}'")
            children = self._xsd_children(node)
            if len(children) != 1 or children[0][0] not in (
                "sequence",
                "choice",
                "all",
            ):
                raise SchemaError(
                    f"group '{name}' must contain exactly one model group"
                )
            model_group = self._parse_model_group(children[0][1], children[0][0])
            model_group.name = name
            definition = GroupDefinition(name, model_group)
            self._schema.groups[name] = definition
            return definition
        finally:
            self._resolving.discard(name)

    def _resolve_attribute_group(self, name: str) -> list[AttributeUse]:
        if name in self._schema.attribute_groups:
            return self._schema.attribute_groups[name]
        if name in self._resolving:
            raise SchemaError(
                f"circular attribute group definition involving '{name}'"
            )
        self._resolving.add(name)
        try:
            node = self._attribute_group_nodes.get(name)
            if node is None:
                raise SchemaError(f"reference to undefined attribute group '{name}'")
            uses: list[AttributeUse] = []
            for local, child in self._xsd_children(node):
                if local == "attribute":
                    use = self._parse_attribute_use(child)
                    if use is not None:
                        uses.append(use)
                elif local == "attributeGroup":
                    reference = child.get_attribute("ref")
                    __, ref_local = self._split_reference(reference)
                    uses.extend(self._resolve_attribute_group(ref_local))
                else:
                    raise SchemaError(
                        f"unexpected xsd:{local} in attribute group '{name}'"
                    )
            self._schema.attribute_groups[name] = uses
            return uses
        finally:
            self._resolving.discard(name)

    def _resolve_global_element(self, name: str) -> ElementDeclaration:
        if name in self._schema.elements:
            return self._schema.elements[name]
        node = self._element_nodes[name]
        declaration = self._parse_element_declaration(node, is_global=True)
        self._schema.elements[name] = declaration
        return declaration

    def _patch_element_references(self) -> None:
        for particle, reference in self._element_ref_patches:
            __, local = self._split_reference(reference)
            if local not in self._element_nodes:
                raise SchemaError(
                    f"element reference '{reference}' has no global declaration"
                )
            particle.term = self._resolve_global_element(local)

    def _close_substitution_groups(self) -> None:
        """Build the transitive member lists for every head element."""
        direct: dict[str, list[ElementDeclaration]] = {}
        for declaration in self._schema.elements.values():
            head = declaration.substitution_group
            if head is None:
                continue
            if head not in self._schema.elements:
                raise SchemaError(
                    f"substitutionGroup head '{head}' of element "
                    f"'{declaration.name}' is not a global element"
                )
            direct.setdefault(head, []).append(declaration)

        def members(head: str, seen: frozenset[str]) -> list[ElementDeclaration]:
            if head in seen:
                raise SchemaError(
                    f"circular substitution group through '{head}'"
                )
            result: list[ElementDeclaration] = []
            for member in direct.get(head, ()):
                result.append(member)
                result.extend(members(member.name, seen | {head}))
            return result

        for head in direct:
            self._schema.substitution_members[head] = members(head, frozenset())

    # -- element declarations ------------------------------------------------------

    def _parse_element_declaration(
        self, node: Element, is_global: bool
    ) -> ElementDeclaration:
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("element declaration needs a 'name'")
        declaration = ElementDeclaration(
            name,
            type_name=node.get_attribute("type") or None,
            is_global=is_global,
            abstract=node.get_attribute("abstract") == "true",
            substitution_group=node.get_attribute("substitutionGroup") or None,
            default=node.get_attribute("default") or None,
            fixed=node.get_attribute("fixed") or None,
        )
        if declaration.substitution_group and not is_global:
            raise SchemaError(
                f"local element '{name}' may not join a substitution group"
            )
        inline_children = self._xsd_children(node)
        inline_type = [
            (local, child)
            for local, child in inline_children
            if local in ("complexType", "simpleType")
        ]
        if declaration.type_name and inline_type:
            raise SchemaError(
                f"element '{name}' has both a type attribute and an inline type"
            )
        if declaration.type_name:
            declaration.type_definition = self._resolve_type_reference(
                declaration.type_name
            )
        elif inline_type:
            local, child = inline_type[0]
            if local == "simpleType":
                declaration.type_definition = self._parse_simple_type(child, None)
            else:
                declaration.type_definition = self._parse_complex_type(child, None)
        elif declaration.substitution_group:
            # Per spec the type defaults to the head's type.
            __, head_local = self._split_reference(declaration.substitution_group)
            head = self._resolve_global_element(head_local)
            declaration.type_definition = head.resolved_type()
        else:
            declaration.type_definition = ANY_TYPE
        return declaration

    def _parse_content_particle(self, node: Element, local: str) -> Particle:
        """A particle inside a model group: element / group ref / nested group."""
        min_occurs, max_occurs = self._parse_occurs(node)
        if local == "element":
            reference = node.get_attribute("ref")
            if reference:
                placeholder = ElementDeclaration(
                    self._split_reference(reference)[1], is_global=True
                )
                particle = Particle(placeholder, min_occurs, max_occurs)
                self._element_ref_patches.append((particle, reference))
                return particle
            declaration = self._parse_element_declaration(node, is_global=False)
            return Particle(declaration, min_occurs, max_occurs)
        if local == "group":
            reference = node.get_attribute("ref")
            if not reference:
                raise SchemaError("nested xsd:group must use ref=")
            __, ref_local = self._split_reference(reference)
            definition = self._resolve_group(ref_local)
            return Particle(
                GroupReference(ref_local, definition), min_occurs, max_occurs
            )
        model_group = self._parse_model_group(node, local)
        return Particle(model_group, min_occurs, max_occurs)

    def _parse_model_group(self, node: Element, local: str) -> ModelGroup:
        compositor = Compositor(local)
        group = ModelGroup(compositor)
        for child_local, child in self._xsd_children(node):
            if child_local not in ("element", "sequence", "choice", "all", "group"):
                raise SchemaError(
                    f"unexpected xsd:{child_local} inside xsd:{local}"
                )
            if compositor is Compositor.ALL and child_local != "element":
                raise SchemaError("xsd:all may contain only element particles")
            group.particles.append(
                self._parse_content_particle(child, child_local)
            )
        return group

    @staticmethod
    def _parse_occurs(node: Element) -> tuple[int, int]:
        raw_min = node.get_attribute("minOccurs") or "1"
        raw_max = node.get_attribute("maxOccurs") or "1"
        try:
            min_occurs = int(raw_min)
        except ValueError:
            raise SchemaError(f"bad minOccurs '{raw_min}'")
        if raw_max == "unbounded":
            max_occurs = UNBOUNDED
        else:
            try:
                max_occurs = int(raw_max)
            except ValueError:
                raise SchemaError(f"bad maxOccurs '{raw_max}'")
            if max_occurs < min_occurs:
                raise SchemaError(
                    f"maxOccurs {max_occurs} is below minOccurs {min_occurs}"
                )
        if min_occurs < 0:
            raise SchemaError("minOccurs may not be negative")
        return min_occurs, max_occurs

    # -- complex types -----------------------------------------------------------------

    def _complex_type_shell(self, node: Element, name: str | None) -> ComplexType:
        return ComplexType(
            name=name,
            abstract=node.get_attribute("abstract") == "true",
            mixed=node.get_attribute("mixed") == "true",
        )

    def _parse_complex_type(self, node: Element, name: str | None) -> ComplexType:
        complex_type = self._complex_type_shell(node, name)
        self._fill_complex_type(node, complex_type)
        return complex_type

    def _fill_complex_type(self, node: Element, complex_type: ComplexType) -> None:
        children = self._xsd_children(node)
        content_children = [
            (local, child)
            for local, child in children
            if local in ("sequence", "choice", "all", "group")
        ]
        wrapper = [
            (local, child)
            for local, child in children
            if local in ("simpleContent", "complexContent")
        ]
        if wrapper and content_children:
            raise SchemaError(
                "complexType cannot mix simpleContent/complexContent with "
                "a direct model group"
            )
        if wrapper:
            local, child = wrapper[0]
            if local == "simpleContent":
                self._parse_simple_content(child, complex_type)
            else:
                self._parse_complex_content(child, complex_type)
        else:
            if len(content_children) > 1:
                raise SchemaError("complexType has more than one model group")
            if content_children:
                local, child = content_children[0]
                complex_type.content = self._parse_content_particle(child, local)
            self._parse_attribute_uses(children, complex_type)

    def _parse_attribute_uses(
        self,
        children: list[tuple[str, Element]],
        complex_type: ComplexType,
    ) -> None:
        for local, child in children:
            if local == "attribute":
                use = self._parse_attribute_use(child)
                if use is not None:
                    if use.name in complex_type.attribute_uses:
                        raise SchemaError(
                            f"duplicate attribute '{use.name}' on complex type "
                            f"'{complex_type.name}'"
                        )
                    complex_type.attribute_uses[use.name] = use
            elif local == "attributeGroup":
                reference = child.get_attribute("ref")
                if not reference:
                    raise SchemaError("nested xsd:attributeGroup must use ref=")
                __, ref_local = self._split_reference(reference)
                for use in self._resolve_attribute_group(ref_local):
                    complex_type.attribute_uses[use.name] = use

    def _parse_attribute_use(self, node: Element) -> AttributeUse | None:
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("attribute declaration needs a 'name'")
        use_kind = node.get_attribute("use") or "optional"
        if use_kind == "prohibited":
            return None
        declaration = AttributeDeclaration(
            name, type_name=node.get_attribute("type") or None
        )
        inline = [
            child
            for local, child in self._xsd_children(node)
            if local == "simpleType"
        ]
        if declaration.type_name and inline:
            raise SchemaError(
                f"attribute '{name}' has both a type attribute and an inline type"
            )
        if declaration.type_name:
            declaration.type_definition = self._resolve_simple_type_reference(
                declaration.type_name
            )
        elif inline:
            declaration.type_definition = self._parse_simple_type(inline[0], None)
        else:
            declaration.type_definition = BUILTIN_TYPES["anySimpleType"]
        default = node.get_attribute("default") or None
        fixed = node.get_attribute("fixed") or None
        if default and fixed:
            raise SchemaError(
                f"attribute '{name}' has both a default and a fixed value"
            )
        if use_kind == "required" and default:
            raise SchemaError(
                f"required attribute '{name}' may not carry a default"
            )
        for kind, constant in (("default", default), ("fixed", fixed)):
            if constant is not None:
                try:
                    declaration.resolved_type().validate(constant)
                except SimpleTypeError as error:
                    raise SchemaError(
                        f"{kind} value {constant!r} of attribute '{name}' "
                        f"does not satisfy its type: {error}"
                    )
        return AttributeUse(
            declaration,
            required=use_kind == "required",
            default=default,
            fixed=fixed,
        )

    def _parse_simple_content(self, node: Element, complex_type: ComplexType) -> None:
        children = self._xsd_children(node)
        if len(children) != 1 or children[0][0] not in ("extension", "restriction"):
            raise SchemaError(
                "simpleContent must contain one extension or restriction"
            )
        local, child = children[0]
        base_reference = child.get_attribute("base")
        if not base_reference:
            raise SchemaError(f"simpleContent {local} needs a 'base'")
        base = self._resolve_type_reference(base_reference)
        complex_type.base_name = base_reference
        complex_type.derivation = (
            DerivationMethod.EXTENSION
            if local == "extension"
            else DerivationMethod.RESTRICTION
        )
        if isinstance(base, SimpleType):
            complex_type.base = base
            simple_base = base
        elif isinstance(base, ComplexType) and base.simple_content is not None:
            complex_type.base = base
            simple_base = base.simple_content
        else:
            raise SchemaError(
                f"simpleContent base '{base_reference}' has no simple content"
            )
        grand_children = self._xsd_children(child)
        facet_nodes = [
            (grand_local, grand)
            for grand_local, grand in grand_children
            if grand_local in _FACET_NAMES
        ]
        if local == "restriction" and facet_nodes:
            simple_base = self._apply_facets(simple_base, facet_nodes, None)
        complex_type.simple_content = simple_base
        self._parse_attribute_uses(grand_children, complex_type)

    def _parse_complex_content(self, node: Element, complex_type: ComplexType) -> None:
        if node.get_attribute("mixed") == "true":
            complex_type.mixed = True
        children = self._xsd_children(node)
        if len(children) != 1 or children[0][0] not in ("extension", "restriction"):
            raise SchemaError(
                "complexContent must contain one extension or restriction"
            )
        local, child = children[0]
        base_reference = child.get_attribute("base")
        if not base_reference:
            raise SchemaError(f"complexContent {local} needs a 'base'")
        base = self._resolve_type_reference(base_reference)
        if not isinstance(base, ComplexType):
            raise SchemaError(
                f"complexContent base '{base_reference}' is not a complex type"
            )
        complex_type.base_name = base_reference
        complex_type.base = base
        complex_type.derivation = (
            DerivationMethod.EXTENSION
            if local == "extension"
            else DerivationMethod.RESTRICTION
        )
        grand_children = self._xsd_children(child)
        content_children = [
            (grand_local, grand)
            for grand_local, grand in grand_children
            if grand_local in ("sequence", "choice", "all", "group")
        ]
        if len(content_children) > 1:
            raise SchemaError("derivation has more than one model group")
        if content_children:
            grand_local, grand = content_children[0]
            complex_type.content = self._parse_content_particle(grand, grand_local)
        self._parse_attribute_uses(grand_children, complex_type)

    # -- simple types --------------------------------------------------------------------

    def _parse_simple_type(self, node: Element, name: str | None) -> SimpleType:
        children = self._xsd_children(node)
        if len(children) != 1:
            raise SchemaError(
                "simpleType must contain exactly one restriction/list/union"
            )
        local, child = children[0]
        if local == "restriction":
            return self._parse_simple_restriction(child, name)
        if local == "list":
            return self._parse_simple_list(child, name)
        if local == "union":
            return self._parse_simple_union(child, name)
        raise SchemaError(f"unexpected xsd:{local} inside simpleType")

    def _parse_simple_restriction(
        self, node: Element, name: str | None
    ) -> SimpleType:
        base_reference = node.get_attribute("base")
        children = self._xsd_children(node)
        inline_base = [child for local, child in children if local == "simpleType"]
        if base_reference and inline_base:
            raise SchemaError(
                "restriction has both a base attribute and an inline base"
            )
        if base_reference:
            base = self._resolve_simple_type_reference(base_reference)
        elif inline_base:
            base = self._parse_simple_type(inline_base[0], None)
        else:
            raise SchemaError("restriction needs a base type")
        facet_nodes = [
            (local, child) for local, child in children if local in _FACET_NAMES
        ]
        return self._apply_facets(base, facet_nodes, name)

    def _apply_facets(
        self,
        base: SimpleType,
        facet_nodes: list[tuple[str, Element]],
        name: str | None,
    ) -> SimpleType:
        facet_arguments: dict[str, object] = {}
        patterns: list[str] = []
        enumeration: list[str] = []
        fixed_names: set[str] = set()

        def scalar(key: str, value: str, convert=lambda v: v) -> None:
            if key in facet_arguments:
                raise SchemaError(f"facet '{key}' given twice")
            facet_arguments[key] = convert(value)

        for local, child in facet_nodes:
            value = child.get_attribute("value")
            if child.get_attribute("fixed") == "true":
                fixed_names.add(local)
            if local == "pattern":
                patterns.append(value)
            elif local == "enumeration":
                enumeration.append(value)
            elif local == "whiteSpace":
                scalar("white_space", value)
            elif local in ("length", "minLength", "maxLength",
                           "totalDigits", "fractionDigits"):
                snake = {
                    "length": "length",
                    "minLength": "min_length",
                    "maxLength": "max_length",
                    "totalDigits": "total_digits",
                    "fractionDigits": "fraction_digits",
                }[local]
                scalar(snake, value, int)
            else:
                snake = {
                    "minInclusive": "min_inclusive",
                    "maxInclusive": "max_inclusive",
                    "minExclusive": "min_exclusive",
                    "maxExclusive": "max_exclusive",
                }[local]
                scalar(snake, value)
        if patterns:
            facet_arguments["patterns"] = tuple(patterns)
        if enumeration:
            facet_arguments["enumeration"] = tuple(enumeration)
        if fixed_names:
            facet_arguments["fixed_names"] = frozenset(fixed_names)
        return restrict(base, name, **facet_arguments)

    def _parse_simple_list(self, node: Element, name: str | None) -> SimpleType:
        item_reference = node.get_attribute("itemType")
        children = self._xsd_children(node)
        inline = [child for local, child in children if local == "simpleType"]
        if item_reference and inline:
            raise SchemaError("list has both itemType and an inline item type")
        if item_reference:
            item_type = self._resolve_simple_type_reference(item_reference)
        elif inline:
            item_type = self._parse_simple_type(inline[0], None)
        else:
            raise SchemaError("list needs an item type")
        return list_of(item_type, name)

    def _parse_simple_union(self, node: Element, name: str | None) -> SimpleType:
        members: list[SimpleType] = []
        member_references = node.get_attribute("memberTypes").split()
        for reference in member_references:
            members.append(self._resolve_simple_type_reference(reference))
        for local, child in self._xsd_children(node):
            if local == "simpleType":
                members.append(self._parse_simple_type(child, None))
        if not members:
            raise SchemaError("union needs at least one member type")
        return union_of(tuple(members), name)

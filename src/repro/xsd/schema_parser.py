"""Parse XML Schema documents into the component model.

The parser walks DOMs built by :mod:`repro.dom` in two phases: first it
indexes the global definitions (elements, types, groups, attributes,
attribute groups) of the root document and of every document reached
through ``xsd:include``/``xsd:import``, then it resolves references on
demand with cycle detection, so forward references — ubiquitous in real
schemas, including the paper's purchase order schema — just work.

Namespaces are handled with real QName resolution: every reference
attribute (``type=``, ``ref=``, ``base=``, ``substitutionGroup=``,
``memberTypes=``, ``itemType=``) is resolved against the in-scope
``xmlns`` bindings of the element carrying it, and every global
component is keyed by its *expanded name* — Clark notation
(``{uri}local``) when the schema has a ``targetNamespace``, the bare
local name otherwise, so namespace-free schemas keep exactly the
component keys they always had.  ``elementFormDefault`` /
``attributeFormDefault`` / ``form`` decide whether local declarations
are qualified.

Multi-document schemas compose through ``xsd:include`` (same or absent
— chameleon — target namespace) and ``xsd:import`` (different target
namespace), with ``schemaLocation`` resolved relative to the including
document and already-loaded documents skipped, which also makes
include/import cycles terminate.  Wildcards, identity constraints and
``xsd:redefine`` still raise
:class:`~repro.errors.UnsupportedFeatureError`.
"""

from __future__ import annotations

import hashlib
import os
from typing import Callable

from repro.errors import SchemaError, SimpleTypeError, UnsupportedFeatureError
from repro.xml.qname import XML_NAMESPACE, XSD_NAMESPACE
from repro.dom import Element, parse_document
from repro.automata.rex import UNBOUNDED
from repro.xsd.components import (
    AttributeDeclaration,
    AttributeUse,
    ANY_TYPE,
    ComplexType,
    Compositor,
    DerivationMethod,
    ElementDeclaration,
    GroupDefinition,
    GroupReference,
    ModelGroup,
    Particle,
    Schema,
    TypeDefinition,
    expanded_name,
)
from repro.xsd.simple import (
    BUILTIN_TYPES,
    SimpleType,
    list_of,
    restrict,
    union_of,
)

#: resolver(location, base_location) -> (document text, resolved location)
SchemaResolver = Callable[[str, "str | None"], "tuple[str, str]"]

_UNSUPPORTED = {
    "any": "wildcards (xsd:any)",
    "anyAttribute": "attribute wildcards (xsd:anyAttribute)",
    "key": "identity constraints (xsd:key)",
    "keyref": "identity constraints (xsd:keyref)",
    "unique": "identity constraints (xsd:unique)",
    "redefine": "schema composition (xsd:redefine)",
}

_FACET_NAMES = {
    "length",
    "minLength",
    "maxLength",
    "pattern",
    "enumeration",
    "whiteSpace",
    "minInclusive",
    "maxInclusive",
    "minExclusive",
    "maxExclusive",
    "totalDigits",
    "fractionDigits",
}

_FORMS = ("qualified", "unqualified")


def _resolve_schema_location(location: str, base: str | None) -> tuple[str, str]:
    """Default resolver: *location* as a path relative to *base*'s directory."""
    candidate = location
    if not os.path.isabs(candidate):
        directory = os.path.dirname(base) if base else os.getcwd()
        candidate = os.path.join(directory, candidate)
    candidate = os.path.normpath(candidate)
    try:
        with open(candidate, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise SchemaError(f"cannot load schema document '{location}': {error}")
    return text, candidate


def parse_schema(
    text: str,
    source: str | None = None,
    *,
    location: str | None = None,
    resolver: SchemaResolver | None = None,
) -> Schema:
    """Parse schema-document *text* into a resolved :class:`Schema`.

    Relative ``schemaLocation`` values on ``xsd:include``/``xsd:import``
    resolve against *location* (falling back to *source* when it looks
    like where the text came from), via *resolver* — by default the
    filesystem.
    """
    document = parse_document(text, source)
    root = document.document_element
    if root is None:
        raise SchemaError("schema document has no root element")
    return parse_schema_document(
        root, location=location if location is not None else source,
        resolver=resolver,
    )


def parse_schema_file(
    path: "str | os.PathLike[str]", *, resolver: SchemaResolver | None = None
) -> Schema:
    """Parse the schema document at *path*, following include/import."""
    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as error:
        raise SchemaError(f"cannot load schema document '{path}': {error}")
    return parse_schema(
        text, source=path, location=os.path.abspath(path), resolver=resolver
    )


def parse_schema_document(
    root: Element,
    *,
    location: str | None = None,
    resolver: SchemaResolver | None = None,
) -> Schema:
    """Parse a DOM whose root is ``<xsd:schema>``."""
    return _SchemaLoader(resolver).load(root, location)


class _SchemaLoader:
    """Shared component pools across every document of one schema.

    One loader builds one :class:`Schema`; each schema *document* (the
    root plus everything reached through include/import) gets its own
    :class:`_DocParser` carrying that document's namespace context, and
    registers its globals here under expanded-name keys.
    """

    def __init__(self, resolver: SchemaResolver | None):
        self._resolver = resolver or _resolve_schema_location
        self.schema: Schema = Schema()
        #: expanded key -> (owning document, DOM node), per component kind
        self.type_nodes: dict[str, tuple[_DocParser, Element]] = {}
        self.group_nodes: dict[str, tuple[_DocParser, Element]] = {}
        self.attribute_group_nodes: dict[str, tuple[_DocParser, Element]] = {}
        self.element_nodes: dict[str, tuple[_DocParser, Element]] = {}
        self.attribute_nodes: dict[str, tuple[_DocParser, Element]] = {}
        self._resolving: set[str] = set()
        #: (particle, ref text, owning doc, node) for <element ref="..."/>
        self.element_ref_patches: list[
            tuple[Particle, str, _DocParser, Element]
        ] = []
        #: (resolved location, adopted namespace) of every loaded
        #: document — re-including one is a no-op, which is what makes
        #: include/import cycles terminate
        self._seen_documents: set[tuple[str, str | None]] = set()
        #: resolved location -> content digest of every include/import
        #: target, so caches can tell when a related document changed
        self._related_documents: dict[str, str] = {}

    # -- document loading --------------------------------------------------------

    def load(self, root: Element, location: str | None) -> Schema:
        target = root.get_attribute("targetNamespace") or None
        self.schema = Schema(target)
        if location is not None:
            self._seen_documents.add((os.path.normpath(location), target))
        document = _DocParser(self, root, location, target)
        document.register_globals()
        self._resolve_all()
        self.schema.related_documents = tuple(
            sorted(self._related_documents.items())
        )
        return self.schema

    def load_related(
        self,
        location: str,
        base: str | None,
        namespace: str | None,
        directive: str,
    ) -> None:
        """Load one include/import target into the shared pools."""
        text, resolved = self._resolver(location, base)
        self._related_documents[resolved] = hashlib.sha256(
            text.encode("utf-8")
        ).hexdigest()
        dom = parse_document(text, resolved)
        root = dom.document_element
        if root is None:
            raise SchemaError(f"schema document '{resolved}' has no root element")
        declared = root.get_attribute("targetNamespace") or None
        if directive == "include":
            if declared is None:
                # Chameleon include: the document adopts the including
                # schema's target namespace.
                adopted = namespace
            elif declared != namespace:
                raise SchemaError(
                    f"included schema '{resolved}' declares targetNamespace "
                    f"'{declared}' but the including schema's is "
                    f"'{namespace or '(none)'}'"
                )
            else:
                adopted = declared
        else:
            if declared != namespace:
                raise SchemaError(
                    f"imported schema '{resolved}' declares targetNamespace "
                    f"'{declared or '(none)'}' but the xsd:import expects "
                    f"'{namespace or '(none)'}'"
                )
            adopted = declared
        dedup_key = (os.path.normpath(resolved), adopted)
        if dedup_key in self._seen_documents:
            return
        self._seen_documents.add(dedup_key)
        document = _DocParser(
            self,
            root,
            resolved,
            adopted,
            chameleon=declared is None and adopted is not None,
        )
        document.register_globals()

    # -- resolution --------------------------------------------------------------

    def _resolve_all(self) -> None:
        for key in list(self.type_nodes):
            self.resolve_type(key)
        for key in list(self.group_nodes):
            self.resolve_group(key)
        for key in list(self.attribute_nodes):
            self.resolve_attribute(key)
        for key in list(self.element_nodes):
            self.resolve_element(key)
        self._patch_element_references()
        self._close_substitution_groups()

    def _guard(self, kind: str, key: str) -> str:
        guard = f"{kind}:{key}"
        if guard in self._resolving:
            raise SchemaError(f"circular {kind} definition involving '{key}'")
        self._resolving.add(guard)
        return guard

    def resolve_type(self, key: str) -> TypeDefinition | None:
        if key in self.schema.types:
            return self.schema.types[key]
        entry = self.type_nodes.get(key)
        if entry is None:
            return None
        guard = self._guard("type", key)
        try:
            document, node = entry
            if document._local_name(node) == "simpleType":
                definition: TypeDefinition = document._parse_simple_type(
                    node, key
                )
                self.schema.types[key] = definition
            else:
                # Register the shell first so recursive content models
                # (a Tree containing Tree children) resolve to it.
                shell = document._complex_type_shell(node, key)
                self.schema.types[key] = shell
                document._fill_complex_type(node, shell)
                definition = shell
            return definition
        finally:
            self._resolving.discard(guard)

    def resolve_group(self, key: str) -> GroupDefinition:
        if key in self.schema.groups:
            return self.schema.groups[key]
        entry = self.group_nodes.get(key)
        if entry is None:
            raise SchemaError(f"reference to undefined group '{key}'")
        guard = self._guard("group", key)
        try:
            document, node = entry
            children = document._xsd_children(node)
            if len(children) != 1 or children[0][0] not in (
                "sequence",
                "choice",
                "all",
            ):
                raise SchemaError(
                    f"group '{key}' must contain exactly one model group"
                )
            model_group = document._parse_model_group(
                children[0][1], children[0][0]
            )
            model_group.name = key
            definition = GroupDefinition(key, model_group)
            self.schema.groups[key] = definition
            return definition
        finally:
            self._resolving.discard(guard)

    def resolve_attribute_group(self, key: str) -> list[AttributeUse]:
        if key in self.schema.attribute_groups:
            return self.schema.attribute_groups[key]
        entry = self.attribute_group_nodes.get(key)
        if entry is None:
            raise SchemaError(f"reference to undefined attribute group '{key}'")
        guard = self._guard("attribute group", key)
        try:
            document, node = entry
            uses: list[AttributeUse] = []
            for local, child in document._xsd_children(node):
                if local == "attribute":
                    use = document._parse_attribute_use(child)
                    if use is not None:
                        uses.append(use)
                elif local == "attributeGroup":
                    reference = child.get_attribute("ref")
                    uses.extend(
                        self.resolve_attribute_group(
                            document._reference_key(
                                reference, child, "attributeGroup reference"
                            )
                        )
                    )
                else:
                    raise SchemaError(
                        f"unexpected xsd:{local} in attribute group '{key}'"
                    )
            self.schema.attribute_groups[key] = uses
            return uses
        finally:
            self._resolving.discard(guard)

    def resolve_element(self, key: str) -> ElementDeclaration | None:
        if key in self.schema.elements:
            return self.schema.elements[key]
        entry = self.element_nodes.get(key)
        if entry is None:
            return None
        guard = self._guard("element", key)
        try:
            document, node = entry
            declaration = document._parse_element_declaration(
                node, is_global=True
            )
            self.schema.elements[key] = declaration
            return declaration
        finally:
            self._resolving.discard(guard)

    def resolve_attribute(self, key: str) -> AttributeDeclaration | None:
        if key in self.schema.attributes:
            return self.schema.attributes[key]
        entry = self.attribute_nodes.get(key)
        if entry is None:
            return None
        guard = self._guard("attribute", key)
        try:
            document, node = entry
            declaration = document._parse_global_attribute(node)
            self.schema.attributes[key] = declaration
            return declaration
        finally:
            self._resolving.discard(guard)

    def _patch_element_references(self) -> None:
        for particle, reference, document, node in self.element_ref_patches:
            key = document._reference_key(reference, node, "element reference")
            declaration = self.resolve_element(key)
            if declaration is None:
                raise SchemaError(
                    f"element reference '{reference}' has no global declaration"
                )
            particle.term = declaration

    def _close_substitution_groups(self) -> None:
        """Build the transitive member lists for every head element.

        ``substitution_group`` holds the head's already-resolved
        expanded key by the time declarations land in the pool.
        """
        direct: dict[str, list[ElementDeclaration]] = {}
        for declaration in self.schema.elements.values():
            head = declaration.substitution_group
            if head is None:
                continue
            if head not in self.schema.elements:
                raise SchemaError(
                    f"substitutionGroup head '{head}' of element "
                    f"'{declaration.name}' is not a global element"
                )
            direct.setdefault(head, []).append(declaration)

        def members(head: str, seen: frozenset[str]) -> list[ElementDeclaration]:
            if head in seen:
                raise SchemaError(
                    f"circular substitution group through '{head}'"
                )
            result: list[ElementDeclaration] = []
            for member in direct.get(head, ()):
                result.append(member)
                result.extend(members(member.key, seen | {head}))
            return result

        for head in direct:
            self.schema.substitution_members[head] = members(head, frozenset())


class _DocParser:
    """One schema *document*: its DOM plus its namespace context."""

    def __init__(
        self,
        loader: _SchemaLoader,
        root: Element,
        location: str | None,
        target_namespace: str | None,
        chameleon: bool = False,
    ):
        self._loader = loader
        self._root = root
        self._location = location
        self.target_namespace = target_namespace
        #: a chameleon include adopted the includer's namespace, and its
        #: unprefixed references follow the components there
        self._chameleon = chameleon
        # Tolerate schemas written without any XSD namespace declaration
        # (common in teaching material, incl. the paper's snippets):
        # unprefixed schema elements and the conventional xsd:/xs:
        # prefixes are then treated as the XSD namespace.
        self._legacy = not any(
            (name == "xmlns" or name.startswith("xmlns:"))
            and value == XSD_NAMESPACE
            for name, value in root.attributes.items()
        )
        self._base_bindings: dict[str, str] = {"xml": XML_NAMESPACE}
        if self._legacy:
            self._base_bindings["xsd"] = XSD_NAMESPACE
            self._base_bindings["xs"] = XSD_NAMESPACE
        self._ns_memo: dict[int, dict[str, str]] = {}
        if self._local_name(root) != "schema":
            raise SchemaError(
                f"root element is <{root.tag_name}>, expected an xsd:schema"
            )
        self.element_form_default = self._form_attribute(
            root, "elementFormDefault"
        )
        self.attribute_form_default = self._form_attribute(
            root, "attributeFormDefault"
        )
        if target_namespace:
            loader.schema.namespaces.add(target_namespace)

    @staticmethod
    def _form_attribute(root: Element, attribute: str) -> str:
        value = root.get_attribute(attribute) or "unqualified"
        if value not in _FORMS:
            raise SchemaError(f"bad {attribute} '{value}'")
        return value

    # -- namespace handling -----------------------------------------------------

    def _bindings(self, element: Element) -> dict[str, str]:
        """In-scope prefix -> namespace bindings at *element* (memoized)."""
        cached = self._ns_memo.get(id(element))
        if cached is not None:
            return cached
        parent = element.parent_node
        base = (
            self._bindings(parent)
            if isinstance(parent, Element)
            else self._base_bindings
        )
        overrides: dict[str, str] | None = None
        for name, value in element.attributes.items():
            if name == "xmlns":
                overrides = overrides or {}
                overrides[""] = value
            elif name.startswith("xmlns:"):
                overrides = overrides or {}
                overrides[name[len("xmlns:") :]] = value
        bindings = {**base, **overrides} if overrides else base
        self._ns_memo[id(element)] = bindings
        return bindings

    def _local_name(self, element: Element) -> str | None:
        """Local name if *element* is an XSD-namespace element else None."""
        prefix, colon, local = element.tag_name.partition(":")
        bindings = self._bindings(element)
        if not colon:
            default = bindings.get("")
            if default:
                return element.tag_name if default == XSD_NAMESPACE else None
            return element.tag_name if self._legacy else None
        return local if bindings.get(prefix) == XSD_NAMESPACE else None

    def _resolve_qname(
        self, reference: str, node: Element, what: str
    ) -> tuple[str | None, str]:
        """Resolve QName *reference* at *node* to (namespace, local name).

        Per the QName rules, an unprefixed reference takes the in-scope
        *default* namespace (unlike unprefixed attribute names).
        """
        prefix, colon, local = reference.partition(":")
        if not colon:
            default = self._bindings(node).get("") or None
            if default is None and self._chameleon:
                # Chameleon transformation: unqualified references track
                # the components into the adopted target namespace.
                return self.target_namespace, reference
            return default, reference
        uri = self._bindings(node).get(prefix)
        if not uri:
            raise SchemaError(
                f"{what} '{reference}' uses undeclared namespace "
                f"prefix '{prefix}'"
            )
        return uri, local

    def _reference_key(self, reference: str, node: Element, what: str) -> str:
        uri, local = self._resolve_qname(reference, node, what)
        return expanded_name(uri, local)

    # -- child iteration ----------------------------------------------------------

    def _xsd_children(self, element: Element) -> list[tuple[str, Element]]:
        children: list[tuple[str, Element]] = []
        for child in element.child_elements():
            local = self._local_name(child)
            if local is None:
                raise SchemaError(
                    f"foreign element <{child.tag_name}> inside the schema"
                )
            if local in _UNSUPPORTED:
                raise UnsupportedFeatureError(
                    f"{_UNSUPPORTED[local]} are not supported "
                    "(the paper's V-DOM does not handle them)"
                )
            if local in ("annotation", "notation"):
                continue
            children.append((local, child))
        return children

    # -- top level -------------------------------------------------------------------

    def register_globals(self) -> None:
        loader = self._loader
        for local, child in self._xsd_children(self._root):
            if local == "include":
                self._handle_include(child)
                continue
            if local == "import":
                self._handle_import(child)
                continue
            name = child.get_attribute("name")
            key = expanded_name(self.target_namespace, name)
            if local in ("complexType", "simpleType"):
                self._require_name(name, local)
                if key in loader.type_nodes or (
                    self.target_namespace is None and name in BUILTIN_TYPES
                ):
                    raise SchemaError(f"duplicate type definition '{key}'")
                loader.type_nodes[key] = (self, child)
            elif local == "element":
                self._require_name(name, local)
                if key in loader.element_nodes:
                    raise SchemaError(f"duplicate global element '{key}'")
                loader.element_nodes[key] = (self, child)
            elif local == "group":
                self._require_name(name, local)
                if key in loader.group_nodes:
                    raise SchemaError(f"duplicate group definition '{key}'")
                loader.group_nodes[key] = (self, child)
            elif local == "attributeGroup":
                self._require_name(name, local)
                if key in loader.attribute_group_nodes:
                    raise SchemaError(f"duplicate attribute group '{key}'")
                loader.attribute_group_nodes[key] = (self, child)
            elif local == "attribute":
                self._require_name(name, local)
                if key in loader.attribute_nodes:
                    raise SchemaError(
                        f"duplicate global attribute declaration '{key}'"
                    )
                loader.attribute_nodes[key] = (self, child)
            else:
                raise SchemaError(f"unexpected top-level xsd:{local}")

    def _handle_include(self, node: Element) -> None:
        location = node.get_attribute("schemaLocation")
        if not location:
            raise SchemaError("xsd:include needs a schemaLocation")
        self._loader.load_related(
            location, self._location, self.target_namespace, "include"
        )

    def _handle_import(self, node: Element) -> None:
        namespace = node.get_attribute("namespace") or None
        if namespace == self.target_namespace:
            raise SchemaError(
                "xsd:import may not import the schema's own target "
                "namespace; use xsd:include"
            )
        location = node.get_attribute("schemaLocation")
        if not location:
            # Location-less import just asserts the namespace exists;
            # its components must arrive from elsewhere.
            return
        self._loader.load_related(location, self._location, namespace, "import")

    @staticmethod
    def _require_name(name: str, what: str) -> None:
        if not name:
            raise SchemaError(f"top-level xsd:{what} needs a 'name' attribute")

    # -- reference resolution -------------------------------------------------------

    def _resolve_type_reference(
        self, reference: str, node: Element
    ) -> TypeDefinition:
        uri, local = self._resolve_qname(reference, node, "type reference")
        if uri == XSD_NAMESPACE:
            if ":" not in reference:
                # The *default* namespace is XSD: schema-local types
                # still shadow the built-ins, matching how the paper's
                # xmlns="…XMLSchema" examples have always resolved here.
                own = self._loader.resolve_type(
                    expanded_name(self.target_namespace, local)
                )
                if own is not None:
                    return own
            if local == "anyType":
                return ANY_TYPE
            if local in BUILTIN_TYPES:
                return BUILTIN_TYPES[local]
            raise SchemaError(f"unknown built-in type '{reference}'")
        key = expanded_name(uri, local)
        resolved = self._loader.resolve_type(key)
        if resolved is not None:
            return resolved
        if uri is None:
            # No default namespace in scope: after the no-namespace
            # pool, tolerate bare built-in names (teaching schemas).
            if local == "anyType":
                return ANY_TYPE
            if local in BUILTIN_TYPES:
                return BUILTIN_TYPES[local]
            raise SchemaError(f"reference to undefined type '{reference}'")
        raise SchemaError(
            f"reference to undefined type '{key}' (written '{reference}'); "
            f"namespace '{uri}' is not the XML Schema namespace, so "
            "built-ins do not apply"
        )

    def _resolve_simple_type_reference(
        self, reference: str, node: Element
    ) -> SimpleType:
        resolved = self._resolve_type_reference(reference, node)
        if not isinstance(resolved, SimpleType):
            raise SchemaError(f"'{reference}' is not a simple type")
        return resolved

    # -- element declarations ------------------------------------------------------

    def _parse_element_declaration(
        self, node: Element, is_global: bool
    ) -> ElementDeclaration:
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("element declaration needs a 'name'")
        form = node.get_attribute("form") or None
        if form is not None and form not in _FORMS:
            raise SchemaError(f"bad form '{form}' on element '{name}'")
        if is_global:
            target = self.target_namespace
        else:
            effective = form or self.element_form_default
            target = (
                self.target_namespace if effective == "qualified" else None
            )
        head_reference = node.get_attribute("substitutionGroup") or None
        head_key: str | None = None
        if head_reference:
            if not is_global:
                raise SchemaError(
                    f"local element '{name}' may not join a substitution group"
                )
            head_key = self._reference_key(
                head_reference, node, f"substitutionGroup of element '{name}'"
            )
        declaration = ElementDeclaration(
            name,
            type_name=node.get_attribute("type") or None,
            is_global=is_global,
            abstract=node.get_attribute("abstract") == "true",
            substitution_group=head_key,
            default=node.get_attribute("default") or None,
            fixed=node.get_attribute("fixed") or None,
            target_namespace=target,
        )
        inline_children = self._xsd_children(node)
        inline_type = [
            (local, child)
            for local, child in inline_children
            if local in ("complexType", "simpleType")
        ]
        if declaration.type_name and inline_type:
            raise SchemaError(
                f"element '{name}' has both a type attribute and an inline type"
            )
        if declaration.type_name:
            declaration.type_definition = self._resolve_type_reference(
                declaration.type_name, node
            )
        elif inline_type:
            local, child = inline_type[0]
            if local == "simpleType":
                declaration.type_definition = self._parse_simple_type(child, None)
            else:
                declaration.type_definition = self._parse_complex_type(child, None)
        elif head_key:
            # Per spec the type defaults to the head's type.
            head = self._loader.resolve_element(head_key)
            if head is None:
                raise SchemaError(
                    f"substitutionGroup head '{head_key}' of element "
                    f"'{name}' is not a global element"
                )
            declaration.type_definition = head.resolved_type()
        else:
            declaration.type_definition = ANY_TYPE
        return declaration

    def _parse_content_particle(self, node: Element, local: str) -> Particle:
        """A particle inside a model group: element / group ref / nested group."""
        min_occurs, max_occurs = self._parse_occurs(node)
        if local == "element":
            reference = node.get_attribute("ref")
            if reference:
                uri, ref_local = self._resolve_qname(
                    reference, node, "element reference"
                )
                placeholder = ElementDeclaration(
                    ref_local, is_global=True, target_namespace=uri
                )
                particle = Particle(placeholder, min_occurs, max_occurs)
                self._loader.element_ref_patches.append(
                    (particle, reference, self, node)
                )
                return particle
            declaration = self._parse_element_declaration(node, is_global=False)
            return Particle(declaration, min_occurs, max_occurs)
        if local == "group":
            reference = node.get_attribute("ref")
            if not reference:
                raise SchemaError("nested xsd:group must use ref=")
            key = self._reference_key(reference, node, "group reference")
            definition = self._loader.resolve_group(key)
            return Particle(
                GroupReference(key, definition), min_occurs, max_occurs
            )
        model_group = self._parse_model_group(node, local)
        return Particle(model_group, min_occurs, max_occurs)

    def _parse_model_group(self, node: Element, local: str) -> ModelGroup:
        compositor = Compositor(local)
        group = ModelGroup(compositor)
        for child_local, child in self._xsd_children(node):
            if child_local not in ("element", "sequence", "choice", "all", "group"):
                raise SchemaError(
                    f"unexpected xsd:{child_local} inside xsd:{local}"
                )
            if compositor is Compositor.ALL and child_local != "element":
                raise SchemaError("xsd:all may contain only element particles")
            group.particles.append(
                self._parse_content_particle(child, child_local)
            )
        return group

    @staticmethod
    def _parse_occurs(node: Element) -> tuple[int, int]:
        raw_min = node.get_attribute("minOccurs") or "1"
        raw_max = node.get_attribute("maxOccurs") or "1"
        try:
            min_occurs = int(raw_min)
        except ValueError:
            raise SchemaError(f"bad minOccurs '{raw_min}'")
        if raw_max == "unbounded":
            max_occurs = UNBOUNDED
        else:
            try:
                max_occurs = int(raw_max)
            except ValueError:
                raise SchemaError(f"bad maxOccurs '{raw_max}'")
            if max_occurs < min_occurs:
                raise SchemaError(
                    f"maxOccurs {max_occurs} is below minOccurs {min_occurs}"
                )
        if min_occurs < 0:
            raise SchemaError("minOccurs may not be negative")
        return min_occurs, max_occurs

    # -- complex types -----------------------------------------------------------------

    def _complex_type_shell(self, node: Element, name: str | None) -> ComplexType:
        return ComplexType(
            name=name,
            abstract=node.get_attribute("abstract") == "true",
            mixed=node.get_attribute("mixed") == "true",
        )

    def _parse_complex_type(self, node: Element, name: str | None) -> ComplexType:
        complex_type = self._complex_type_shell(node, name)
        self._fill_complex_type(node, complex_type)
        return complex_type

    def _fill_complex_type(self, node: Element, complex_type: ComplexType) -> None:
        children = self._xsd_children(node)
        content_children = [
            (local, child)
            for local, child in children
            if local in ("sequence", "choice", "all", "group")
        ]
        wrapper = [
            (local, child)
            for local, child in children
            if local in ("simpleContent", "complexContent")
        ]
        if wrapper and content_children:
            raise SchemaError(
                "complexType cannot mix simpleContent/complexContent with "
                "a direct model group"
            )
        if wrapper:
            local, child = wrapper[0]
            if local == "simpleContent":
                self._parse_simple_content(child, complex_type)
            else:
                self._parse_complex_content(child, complex_type)
        else:
            if len(content_children) > 1:
                raise SchemaError("complexType has more than one model group")
            if content_children:
                local, child = content_children[0]
                complex_type.content = self._parse_content_particle(child, local)
            self._parse_attribute_uses(children, complex_type)

    def _parse_attribute_uses(
        self,
        children: list[tuple[str, Element]],
        complex_type: ComplexType,
    ) -> None:
        for local, child in children:
            if local == "attribute":
                use = self._parse_attribute_use(child)
                if use is not None:
                    if use.key in complex_type.attribute_uses:
                        raise SchemaError(
                            f"duplicate attribute '{use.key}' on complex type "
                            f"'{complex_type.name}'"
                        )
                    complex_type.attribute_uses[use.key] = use
            elif local == "attributeGroup":
                reference = child.get_attribute("ref")
                if not reference:
                    raise SchemaError("nested xsd:attributeGroup must use ref=")
                key = self._reference_key(
                    reference, child, "attributeGroup reference"
                )
                for use in self._loader.resolve_attribute_group(key):
                    complex_type.attribute_uses[use.key] = use

    def _parse_attribute_use(self, node: Element) -> AttributeUse | None:
        use_kind = node.get_attribute("use") or "optional"
        if use_kind == "prohibited":
            return None
        reference = node.get_attribute("ref") or None
        if reference:
            if node.get_attribute("name"):
                raise SchemaError(
                    "attribute may not carry both 'name' and 'ref'"
                )
            key = self._reference_key(reference, node, "attribute reference")
            declaration = self._loader.resolve_attribute(key)
            if declaration is None:
                raise SchemaError(
                    f"attribute reference '{reference}' has no global "
                    f"declaration ('{key}')"
                )
            default = node.get_attribute("default") or declaration.default
            fixed = node.get_attribute("fixed") or declaration.fixed
            return self._build_attribute_use(
                declaration, use_kind, default, fixed
            )
        name = node.get_attribute("name")
        if not name:
            raise SchemaError("attribute declaration needs a 'name'")
        form = node.get_attribute("form") or None
        if form is not None and form not in _FORMS:
            raise SchemaError(f"bad form '{form}' on attribute '{name}'")
        effective = form or self.attribute_form_default
        declaration = AttributeDeclaration(
            name,
            type_name=node.get_attribute("type") or None,
            target_namespace=(
                self.target_namespace if effective == "qualified" else None
            ),
        )
        self._fill_attribute_type(declaration, node)
        default = node.get_attribute("default") or None
        fixed = node.get_attribute("fixed") or None
        return self._build_attribute_use(declaration, use_kind, default, fixed)

    def _build_attribute_use(
        self,
        declaration: AttributeDeclaration,
        use_kind: str,
        default: str | None,
        fixed: str | None,
    ) -> AttributeUse:
        name = declaration.name
        if default and fixed:
            raise SchemaError(
                f"attribute '{name}' has both a default and a fixed value"
            )
        if use_kind == "required" and default:
            raise SchemaError(
                f"required attribute '{name}' may not carry a default"
            )
        for kind, constant in (("default", default), ("fixed", fixed)):
            if constant is not None:
                try:
                    declaration.resolved_type().validate(constant)
                except SimpleTypeError as error:
                    raise SchemaError(
                        f"{kind} value {constant!r} of attribute '{name}' "
                        f"does not satisfy its type: {error}"
                    )
        return AttributeUse(
            declaration,
            required=use_kind == "required",
            default=default,
            fixed=fixed,
        )

    def _fill_attribute_type(
        self, declaration: AttributeDeclaration, node: Element
    ) -> None:
        inline = [
            child
            for local, child in self._xsd_children(node)
            if local == "simpleType"
        ]
        if declaration.type_name and inline:
            raise SchemaError(
                f"attribute '{declaration.name}' has both a type attribute "
                "and an inline type"
            )
        if declaration.type_name:
            declaration.type_definition = self._resolve_simple_type_reference(
                declaration.type_name, node
            )
        elif inline:
            declaration.type_definition = self._parse_simple_type(inline[0], None)
        else:
            declaration.type_definition = BUILTIN_TYPES["anySimpleType"]

    def _parse_global_attribute(self, node: Element) -> AttributeDeclaration:
        name = node.get_attribute("name")
        if node.get_attribute("ref"):
            raise SchemaError(
                f"top-level attribute '{name or ''}' may not use ref="
            )
        if node.get_attribute("use"):
            raise SchemaError(
                f"top-level attribute '{name}' may not constrain 'use'"
            )
        # Global attribute declarations are always qualified.
        declaration = AttributeDeclaration(
            name,
            type_name=node.get_attribute("type") or None,
            target_namespace=self.target_namespace,
        )
        self._fill_attribute_type(declaration, node)
        declaration.default = node.get_attribute("default") or None
        declaration.fixed = node.get_attribute("fixed") or None
        if declaration.default and declaration.fixed:
            raise SchemaError(
                f"attribute '{name}' has both a default and a fixed value"
            )
        for kind, constant in (
            ("default", declaration.default),
            ("fixed", declaration.fixed),
        ):
            if constant is not None:
                try:
                    declaration.resolved_type().validate(constant)
                except SimpleTypeError as error:
                    raise SchemaError(
                        f"{kind} value {constant!r} of attribute '{name}' "
                        f"does not satisfy its type: {error}"
                    )
        return declaration

    def _parse_simple_content(self, node: Element, complex_type: ComplexType) -> None:
        children = self._xsd_children(node)
        if len(children) != 1 or children[0][0] not in ("extension", "restriction"):
            raise SchemaError(
                "simpleContent must contain one extension or restriction"
            )
        local, child = children[0]
        base_reference = child.get_attribute("base")
        if not base_reference:
            raise SchemaError(f"simpleContent {local} needs a 'base'")
        base = self._resolve_type_reference(base_reference, child)
        complex_type.base_name = base_reference
        complex_type.derivation = (
            DerivationMethod.EXTENSION
            if local == "extension"
            else DerivationMethod.RESTRICTION
        )
        if isinstance(base, SimpleType):
            complex_type.base = base
            simple_base = base
        elif isinstance(base, ComplexType) and base.simple_content is not None:
            complex_type.base = base
            simple_base = base.simple_content
        else:
            raise SchemaError(
                f"simpleContent base '{base_reference}' has no simple content"
            )
        grand_children = self._xsd_children(child)
        facet_nodes = [
            (grand_local, grand)
            for grand_local, grand in grand_children
            if grand_local in _FACET_NAMES
        ]
        if local == "restriction" and facet_nodes:
            simple_base = self._apply_facets(simple_base, facet_nodes, None)
        complex_type.simple_content = simple_base
        self._parse_attribute_uses(grand_children, complex_type)

    def _parse_complex_content(self, node: Element, complex_type: ComplexType) -> None:
        if node.get_attribute("mixed") == "true":
            complex_type.mixed = True
        children = self._xsd_children(node)
        if len(children) != 1 or children[0][0] not in ("extension", "restriction"):
            raise SchemaError(
                "complexContent must contain one extension or restriction"
            )
        local, child = children[0]
        base_reference = child.get_attribute("base")
        if not base_reference:
            raise SchemaError(f"complexContent {local} needs a 'base'")
        base = self._resolve_type_reference(base_reference, child)
        if not isinstance(base, ComplexType):
            raise SchemaError(
                f"complexContent base '{base_reference}' is not a complex type"
            )
        complex_type.base_name = base_reference
        complex_type.base = base
        complex_type.derivation = (
            DerivationMethod.EXTENSION
            if local == "extension"
            else DerivationMethod.RESTRICTION
        )
        grand_children = self._xsd_children(child)
        content_children = [
            (grand_local, grand)
            for grand_local, grand in grand_children
            if grand_local in ("sequence", "choice", "all", "group")
        ]
        if len(content_children) > 1:
            raise SchemaError("derivation has more than one model group")
        if content_children:
            grand_local, grand = content_children[0]
            complex_type.content = self._parse_content_particle(grand, grand_local)
        self._parse_attribute_uses(grand_children, complex_type)

    # -- simple types --------------------------------------------------------------------

    def _parse_simple_type(self, node: Element, name: str | None) -> SimpleType:
        children = self._xsd_children(node)
        if len(children) != 1:
            raise SchemaError(
                "simpleType must contain exactly one restriction/list/union"
            )
        local, child = children[0]
        if local == "restriction":
            return self._parse_simple_restriction(child, name)
        if local == "list":
            return self._parse_simple_list(child, name)
        if local == "union":
            return self._parse_simple_union(child, name)
        raise SchemaError(f"unexpected xsd:{local} inside simpleType")

    def _parse_simple_restriction(
        self, node: Element, name: str | None
    ) -> SimpleType:
        base_reference = node.get_attribute("base")
        children = self._xsd_children(node)
        inline_base = [child for local, child in children if local == "simpleType"]
        if base_reference and inline_base:
            raise SchemaError(
                "restriction has both a base attribute and an inline base"
            )
        if base_reference:
            base = self._resolve_simple_type_reference(base_reference, node)
        elif inline_base:
            base = self._parse_simple_type(inline_base[0], None)
        else:
            raise SchemaError("restriction needs a base type")
        facet_nodes = [
            (local, child) for local, child in children if local in _FACET_NAMES
        ]
        return self._apply_facets(base, facet_nodes, name)

    def _apply_facets(
        self,
        base: SimpleType,
        facet_nodes: list[tuple[str, Element]],
        name: str | None,
    ) -> SimpleType:
        facet_arguments: dict[str, object] = {}
        patterns: list[str] = []
        enumeration: list[str] = []
        fixed_names: set[str] = set()

        def scalar(key: str, value: str, convert=lambda v: v) -> None:
            if key in facet_arguments:
                raise SchemaError(f"facet '{key}' given twice")
            facet_arguments[key] = convert(value)

        for local, child in facet_nodes:
            value = child.get_attribute("value")
            if child.get_attribute("fixed") == "true":
                fixed_names.add(local)
            if local == "pattern":
                patterns.append(value)
            elif local == "enumeration":
                enumeration.append(value)
            elif local == "whiteSpace":
                scalar("white_space", value)
            elif local in ("length", "minLength", "maxLength",
                           "totalDigits", "fractionDigits"):
                snake = {
                    "length": "length",
                    "minLength": "min_length",
                    "maxLength": "max_length",
                    "totalDigits": "total_digits",
                    "fractionDigits": "fraction_digits",
                }[local]
                scalar(snake, value, int)
            else:
                snake = {
                    "minInclusive": "min_inclusive",
                    "maxInclusive": "max_inclusive",
                    "minExclusive": "min_exclusive",
                    "maxExclusive": "max_exclusive",
                }[local]
                scalar(snake, value)
        if patterns:
            facet_arguments["patterns"] = tuple(patterns)
        if enumeration:
            facet_arguments["enumeration"] = tuple(enumeration)
        if fixed_names:
            facet_arguments["fixed_names"] = frozenset(fixed_names)
        return restrict(base, name, **facet_arguments)

    def _parse_simple_list(self, node: Element, name: str | None) -> SimpleType:
        item_reference = node.get_attribute("itemType")
        children = self._xsd_children(node)
        inline = [child for local, child in children if local == "simpleType"]
        if item_reference and inline:
            raise SchemaError("list has both itemType and an inline item type")
        if item_reference:
            item_type = self._resolve_simple_type_reference(item_reference, node)
        elif inline:
            item_type = self._parse_simple_type(inline[0], None)
        else:
            raise SchemaError("list needs an item type")
        return list_of(item_type, name)

    def _parse_simple_union(self, node: Element, name: str | None) -> SimpleType:
        members: list[SimpleType] = []
        member_references = node.get_attribute("memberTypes").split()
        for reference in member_references:
            members.append(self._resolve_simple_type_reference(reference, node))
        for local, child in self._xsd_children(node):
            if local == "simpleType":
                members.append(self._parse_simple_type(child, None))
        if not members:
            raise SchemaError("union needs at least one member type")
        return union_of(tuple(members), name)

"""XML Schema substrate: datatypes, structures, parsing, validation.

Implements the parts of XML Schema (the paper's reference [24]) that the
paper's transformation consumes:

* the built-in simple types and facet-based restriction, list, union
  (:mod:`repro.xsd.simple`, :mod:`repro.xsd.facets`,
  :mod:`repro.xsd.values`, :mod:`repro.xsd.regex`),
* complex types with sequence/choice/all groups, occurrence constraints,
  attribute uses, extension and restriction derivation, abstractness,
  substitution groups, named model groups
  (:mod:`repro.xsd.components`),
* a namespace-aware multi-document schema parser —
  ``targetNamespace``, ``elementFormDefault``/``form``, cross-namespace
  ``ref=``, ``xsd:include``/``xsd:import``
  (:mod:`repro.xsd.schema_parser`),
* a runtime instance validator (:mod:`repro.xsd.validator`) — the
  "expensive validation at run-time" of low-level bindings that V-DOM
  renders unnecessary,
* instance-driven lazy subsetting for per-document-class bindings
  (:mod:`repro.xsd.subset`).

Identity constraints and wildcards are intentionally not handled, exactly
as the paper states in Sect. 3.
"""

from repro.xsd.simple import BUILTIN_TYPES, SimpleType, Variety, builtin_type
from repro.xsd.components import (
    AttributeDeclaration,
    AttributeUse,
    ComplexType,
    Compositor,
    ContentType,
    ElementDeclaration,
    GroupDefinition,
    ModelGroup,
    Particle,
    Schema,
)
from repro.xsd.schema_parser import (
    parse_schema,
    parse_schema_document,
    parse_schema_file,
)
from repro.xsd.subset import sniff_root_key, subset_schema
from repro.xsd.validator import SchemaValidator, validate
from repro.xsd.stream import StreamingValidator

__all__ = [
    "AttributeDeclaration",
    "AttributeUse",
    "BUILTIN_TYPES",
    "ComplexType",
    "Compositor",
    "ContentType",
    "ElementDeclaration",
    "GroupDefinition",
    "ModelGroup",
    "Particle",
    "Schema",
    "SchemaValidator",
    "SimpleType",
    "StreamingValidator",
    "Variety",
    "builtin_type",
    "parse_schema",
    "parse_schema_document",
    "parse_schema_file",
    "sniff_root_key",
    "subset_schema",
    "validate",
]

"""Instance-driven lazy binding: subset a schema to reachable components.

Real-world schemas (the gauntlet corpus, DocBook-scale vocabularies)
declare far more than any one document class touches.  The paper's
preparation/runtime split says the preparation cost should follow the
*instances*: :func:`subset_schema` takes the root element keys actually
observed and keeps only the components a validation starting at those
roots can reach —

* the root declarations, every element reachable through their content
  models (substitution-group members included),
* every type on those elements' base/content/attribute chains, and
* every *named* global type derived from a reachable type, because an
  instance may substitute it via ``xsi:type``.

The subset shares component objects with the full schema (no deep
copy); only the global maps shrink.  Because the derived-type closure
mirrors exactly the substitutability test the validators run, a
document whose root is in the subset's roots produces byte-identical
verdicts against the subset and the full schema — the equivalence the
corpus suite asserts.

:func:`sniff_root_key` extracts the expanded root element name from an
instance document's head without validating it, which is how bulk
``--lazy`` decides the roots before any worker binds.
"""

from __future__ import annotations

from typing import Iterable

from repro.xsd.components import (
    AttributeDeclaration,
    ComplexType,
    ElementDeclaration,
    GroupDefinition,
    GroupReference,
    ModelGroup,
    Particle,
    Schema,
    TypeDefinition,
)
from repro.xsd.simple import SimpleType

#: how much of an instance document the root sniffer reads; the root
#: start tag of any realistic document is well inside this window
SNIFF_WINDOW = 65536


def reachable_components(
    schema: Schema, roots: Iterable[str]
) -> tuple[dict[str, ElementDeclaration], set[int], list[TypeDefinition]]:
    """Fixpoint over everything validation from *roots* can touch.

    Returns ``(reachable global elements by key, id-set of reachable
    type objects, the reachable type objects themselves)``.  Roots not
    declared in the schema are simply absent from the result — the
    validator's "not a global element" diagnostic stays accurate.
    """
    elements: dict[str, ElementDeclaration] = {}
    type_ids: set[int] = set()
    type_objects: list[TypeDefinition] = []
    pending_elements: list[ElementDeclaration] = []
    for key in roots:
        declaration = schema.elements.get(key)
        if declaration is not None and key not in elements:
            elements[key] = declaration
            pending_elements.append(declaration)

    def visit_type(definition: TypeDefinition | None) -> None:
        while definition is not None and id(definition) not in type_ids:
            type_ids.add(id(definition))
            type_objects.append(definition)
            if isinstance(definition, SimpleType):
                if definition.item_type is not None:
                    visit_type(definition.item_type)
                for member in definition.member_types:
                    visit_type(member)
                definition = definition.base
                continue
            assert isinstance(definition, ComplexType)
            if definition.simple_content is not None:
                visit_type(definition.simple_content)
            for use in definition.attribute_uses.values():
                visit_type(use.declaration.type_definition)
            if definition.content is not None:
                visit_particle(definition.content)
            definition = definition.base

    def visit_particle(particle: Particle) -> None:
        term = particle.term
        if isinstance(term, ElementDeclaration):
            visit_element(term)
        elif isinstance(term, GroupReference):
            if term.definition is not None:
                visit_group(term.definition.model_group)
        elif isinstance(term, ModelGroup):
            visit_group(term)

    def visit_group(group: ModelGroup) -> None:
        for particle in group.particles:
            visit_particle(particle)

    def visit_element(declaration: ElementDeclaration) -> None:
        key = declaration.key
        canonical = schema.elements.get(key, declaration)
        if canonical.is_global or declaration.is_global:
            if key in elements:
                return
            elements[key] = canonical
            pending_elements.append(canonical)
            return
        # Local declaration: no global entry to record, but its type
        # (and substitution members of same-named globals) still count.
        pending_elements.append(declaration)

    # Alternate the two fixpoints until neither grows: element/type
    # reachability first, then the xsi:type derived-closure, whose new
    # types can in turn reach new elements.
    while True:
        while pending_elements:
            declaration = pending_elements.pop()
            visit_type(declaration.type_definition)
            for member in schema.substitution_members.get(
                declaration.key, ()
            ):
                visit_element(member)
        grew = False
        for candidate in schema.types.values():
            if id(candidate) in type_ids:
                continue
            if any(
                _substitutable(candidate, reachable)
                for reachable in type_objects
            ):
                visit_type(candidate)
                grew = True
        if not (grew or pending_elements):
            break
    return elements, type_ids, type_objects


def _substitutable(candidate: TypeDefinition, declared: TypeDefinition) -> bool:
    """Mirror of the validators' ``xsi:type`` derivation test."""
    if isinstance(candidate, ComplexType) and isinstance(declared, ComplexType):
        return candidate.is_derived_from(declared)
    if isinstance(candidate, SimpleType) and isinstance(declared, SimpleType):
        return candidate.is_derived_from(declared)
    return False


def subset_schema(schema: Schema, roots: Iterable[str]) -> Schema:
    """A schema containing only what validation from *roots* can reach.

    Components are shared with *schema*; the global maps are filtered.
    The ``namespaces`` set is copied whole so namespace-aware matching
    behaves identically to the full schema.
    """
    root_keys = tuple(sorted(set(roots)))
    elements, type_ids, _objects = reachable_components(schema, root_keys)
    subset = Schema(schema.target_namespace)
    subset.namespaces = set(schema.namespaces)
    subset.related_documents = schema.related_documents
    subset.subset_roots = root_keys
    subset.elements = dict(elements)
    subset.types = {
        key: definition
        for key, definition in schema.types.items()
        if id(definition) in type_ids
    }
    subset.groups = {
        key: definition
        for key, definition in schema.groups.items()
        if _group_reachable(definition, type_ids, elements)
    }
    subset.attribute_groups = dict(schema.attribute_groups)
    subset.attributes = {
        key: declaration
        for key, declaration in schema.attributes.items()
        if _attribute_reachable(declaration, type_ids, schema)
    }
    subset.substitution_members = {
        head: [member for member in members if member.key in elements]
        for head, members in schema.substitution_members.items()
        if head in elements
    }
    return subset


def _group_reachable(
    definition: GroupDefinition,
    type_ids: set[int],
    elements: dict[str, ElementDeclaration],
) -> bool:
    """A named group stays when any reachable type's content can use it.

    Groups are only consulted through already-resolved
    ``GroupReference.definition`` objects at validation time, so keeping
    one is about binding generation; a cheap membership probe on the
    group's own element terms is enough.
    """
    stack = [definition.model_group]
    while stack:
        group = stack.pop()
        for particle in group.particles:
            term = particle.term
            if isinstance(term, ElementDeclaration):
                if term.key in elements:
                    return True
            elif isinstance(term, ModelGroup):
                stack.append(term)
            elif isinstance(term, GroupReference) and term.definition:
                stack.append(term.definition.model_group)
    return False


def _attribute_reachable(
    declaration: AttributeDeclaration, type_ids: set[int], schema: Schema
) -> bool:
    """A global attribute stays when a reachable type uses it by ref."""
    for definition in schema.types.values():
        if id(definition) not in type_ids:
            continue
        if isinstance(definition, ComplexType) and any(
            use.declaration is declaration
            for use in definition.attribute_uses.values()
        ):
            return True
    return False


def sniff_root_key(text: str) -> str | None:
    """Expanded name of an instance document's root element, or None.

    Reads at most :data:`SNIFF_WINDOW` characters and stops at the first
    start tag; any parse trouble (odd prologs, truncated markup) returns
    None, which callers treat as "cannot subset — bind the full schema".
    """
    from repro.xml.events import StartElement
    from repro.xml.parser import PullParser
    from repro.xml.qname import XML_NAMESPACE, split_qname
    from repro.xsd.components import expanded_name

    try:
        for event in PullParser(text[:SNIFF_WINDOW]):
            if not isinstance(event, StartElement):
                continue
            prefix, local = split_qname(event.name)
            bindings = {"xml": XML_NAMESPACE}
            for name, value in event.attributes:
                if name == "xmlns":
                    bindings[""] = value
                elif name.startswith("xmlns:"):
                    bindings[name[6:]] = value
            if prefix is None:
                return expanded_name(bindings.get("", None) or None, local)
            uri = bindings.get(prefix)
            if uri is None:
                # Undeclared prefix: match lexically, as the validators do.
                return event.name
            return expanded_name(uri, local)
    except Exception:  # noqa: BLE001 — sniffing must never raise
        return None
    return None

"""Translate XML Schema regular expressions to Python :mod:`re` patterns.

The XSD dialect (XML Schema Part 2, Appendix F) differs from Python's:

* patterns are implicitly anchored at both ends,
* ``^`` and ``$`` are ordinary characters,
* ``.`` matches everything except newline and carriage return,
* ``\\i``/``\\c`` match XML name-start / name characters,
* character classes support *subtraction*: ``[a-z-[aeiou]]``.

The translator is a recursive-descent parser over the XSD grammar that
emits an equivalent Python pattern; :func:`compile_pattern` returns a
compiled regex whose ``fullmatch`` decides facet satisfaction.  Unicode
property escapes (``\\p{...}``) are not supported and raise
:class:`~repro.errors.UnsupportedFeatureError`.
"""

from __future__ import annotations

import functools
import re

from repro.errors import SchemaError, UnsupportedFeatureError
from repro.xml.chars import name_char_class, name_start_class, re_escape_char

_PY_METACHARS = set(".^$*+?{}[]()|\\")

_SINGLE_ESCAPES = {
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "\\": "\\",
    "|": "|",
    ".": ".",
    "-": "-",
    "^": "^",
    "$": "$",
    "?": "?",
    "*": "*",
    "+": "+",
    "{": "{",
    "}": "}",
    "(": "(",
    ")": ")",
    "[": "[",
    "]": "]",
}

#: Class escapes usable both standalone and inside classes.  Values are
#: (inline pattern, class body).
_CLASS_ESCAPES: dict[str, tuple[str, str | None]] = {
    "s": (r"[ \t\n\r]", r" \t\n\r"),
    "S": (r"[^ \t\n\r]", None),
    "d": (r"\d", r"0-9"),
    "D": (r"\D", None),
    "w": (r"[^\s!-/:-@\[-`{-~]", None),
    "W": (r"[\s!-/:-@\[-`{-~]", None),
}


class _Translator:
    def __init__(self, pattern: str):
        self._pattern = pattern
        self._index = 0
        self._i_class = name_start_class()
        self._c_class = name_char_class()

    # -- cursor helpers -------------------------------------------------------

    def _at_end(self) -> bool:
        return self._index >= len(self._pattern)

    def _peek(self) -> str:
        return self._pattern[self._index] if not self._at_end() else ""

    def _next(self) -> str:
        char = self._peek()
        if not char:
            raise SchemaError(
                f"unexpected end of pattern '{self._pattern}'"
            )
        self._index += 1
        return char

    def _error(self, message: str) -> SchemaError:
        return SchemaError(
            f"bad pattern '{self._pattern}' at offset {self._index}: {message}"
        )

    # -- grammar ----------------------------------------------------------------

    def translate(self) -> str:
        result = self._regexp()
        if not self._at_end():
            raise self._error(f"unbalanced '{self._peek()}'")
        return result

    def _regexp(self) -> str:
        branches = [self._branch()]
        while self._peek() == "|":
            self._next()
            branches.append(self._branch())
        if len(branches) == 1:
            return branches[0]
        return "(?:" + "|".join(branches) + ")"

    def _branch(self) -> str:
        pieces: list[str] = []
        while not self._at_end() and self._peek() not in "|)":
            pieces.append(self._piece())
        return "".join(pieces)

    def _piece(self) -> str:
        atom = self._atom()
        char = self._peek()
        if char and char in "?*+":
            self._next()
            return atom + char
        if char == "{":
            return atom + self._quantity()
        return atom

    def _quantity(self) -> str:
        start = self._index
        self._next()  # consume '{'
        body: list[str] = []
        while self._peek() != "}":
            if self._at_end():
                raise self._error("unterminated quantifier")
            body.append(self._next())
        self._next()  # consume '}'
        text = "".join(body)
        if not re.fullmatch(r"\d+(,(\d+)?)?", text):
            raise SchemaError(
                f"bad quantifier '{{{text}}}' in pattern "
                f"'{self._pattern}' at offset {start}"
            )
        low, __, high = text.partition(",")
        if high and int(low) > int(high):
            raise SchemaError(
                f"reversed quantifier '{{{text}}}' in pattern "
                f"'{self._pattern}' at offset {start}"
            )
        return "{" + text + "}"

    def _atom(self) -> str:
        char = self._peek()
        if char == "(":
            self._next()
            inner = self._regexp()
            if self._peek() != ")":
                raise self._error("unbalanced '('")
            self._next()
            return "(?:" + inner + ")"
        if char == "[":
            return self._char_class()
        if char == "\\":
            return self._escape(in_class=False)
        if char == ".":
            self._next()
            return r"[^\n\r]"
        if char and char in "?*+{}":
            raise self._error(f"dangling quantifier '{char}'")
        if char == "]":
            raise self._error("unbalanced ']'")
        if not char:
            raise self._error("unexpected end of pattern")
        self._next()
        if char in _PY_METACHARS:
            return "\\" + char
        return re.escape(char)

    # -- escapes ------------------------------------------------------------------

    def _escape(self, in_class: bool) -> str:
        self._next()  # consume backslash
        char = self._next()
        if char in _SINGLE_ESCAPES:
            literal = _SINGLE_ESCAPES[char]
            if in_class:
                return re_escape_char(literal) if len(literal) == 1 else literal
            return re.escape(literal)
        if char in _CLASS_ESCAPES:
            inline, class_body = _CLASS_ESCAPES[char]
            if in_class:
                if class_body is None:
                    raise UnsupportedFeatureError(
                        f"negative class escape '\\{char}' inside a character "
                        f"class is not supported (pattern '{self._pattern}')"
                    )
                return class_body
            return inline
        if char == "i":
            return self._i_class if in_class else f"[{self._i_class}]"
        if char == "I":
            if in_class:
                raise UnsupportedFeatureError(
                    "'\\I' inside a character class is not supported"
                )
            return f"[^{self._i_class}]"
        if char == "c":
            return self._c_class if in_class else f"[{self._c_class}]"
        if char == "C":
            if in_class:
                raise UnsupportedFeatureError(
                    "'\\C' inside a character class is not supported"
                )
            return f"[^{self._c_class}]"
        if char in "pP":
            raise UnsupportedFeatureError(
                f"unicode property escape '\\{char}{{...}}' is not supported"
            )
        raise self._error(f"unknown escape '\\{char}'")

    # -- character classes ------------------------------------------------------------

    def _char_class(self) -> str:
        self._next()  # consume '['
        negated = False
        if self._peek() == "^":
            negated = True
            self._next()
        body_parts: list[str] = []
        subtrahend: str | None = None
        first = True
        while True:
            char = self._peek()
            if not char:
                raise self._error("unterminated character class")
            if char == "]" and not first:
                self._next()
                break
            if char == "-" and self._pattern[self._index : self._index + 2] == "-[":
                # Class subtraction: the rest is '-[...]' then ']'.
                self._next()
                subtrahend = self._char_class()
                if self._peek() != "]":
                    raise self._error("expected ']' after class subtraction")
                self._next()
                break
            body_parts.append(self._class_range())
            first = False
        if not body_parts:
            raise self._error("empty character class")
        body = "".join(body_parts)
        base = f"[^{body}]" if negated else f"[{body}]"
        if subtrahend is not None:
            return f"(?:(?!{subtrahend}){base})"
        return base

    def _class_range(self) -> str:
        lower = self._class_char()
        if (
            self._peek() == "-"
            and self._pattern[self._index : self._index + 2] != "-["
            and self._pattern[self._index + 1 : self._index + 2] != "]"
        ):
            self._next()
            upper = self._class_char()
            if len(lower) != 1 or len(upper) != 1:
                raise self._error("class escapes cannot bound a range")
            if ord(lower) > ord(upper):
                raise self._error(f"reversed range {lower}-{upper}")
            return f"{re_escape_char(lower)}-{re_escape_char(upper)}"
        if len(lower) == 1:
            return re_escape_char(lower)
        return lower  # an expanded class-escape body

    def _class_char(self) -> str:
        char = self._peek()
        if char == "\\":
            return self._escape(in_class=True)
        if char in "[]":
            raise self._error(f"'{char}' must be escaped inside a class")
        self._next()
        return char


def translate_pattern(pattern: str) -> str:
    """Return the Python-:mod:`re` equivalent of an XSD *pattern*."""
    return _Translator(pattern).translate()


@functools.lru_cache(maxsize=1024)
def compile_pattern(pattern: str) -> re.Pattern[str]:
    """Compile an XSD pattern; match with ``.fullmatch`` (XSD anchoring).

    Memoized: pattern facets re-check every literal on the ingest hot
    path, and translation costs orders of magnitude more than matching.
    """
    translated = translate_pattern(pattern)
    try:
        return re.compile(translated)
    except re.error as error:  # pragma: no cover - translator should prevent
        raise SchemaError(
            f"pattern '{pattern}' translated to invalid regex "
            f"'{translated}': {error}"
        )

"""Constraining facets for simple type restriction.

Each facet validates a (literal, value) pair; a :class:`FacetSet` is the
merged, inheritance-resolved collection attached to one simple type.
Fixed-facet and restriction-consistency rules are enforced when a derived
type is built (:mod:`repro.xsd.simple`).
"""

from __future__ import annotations

import decimal
from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import SchemaError, SimpleTypeError
from repro.xsd.regex import compile_pattern


class WhiteSpace:
    """The three whiteSpace normalization modes."""

    PRESERVE = "preserve"
    REPLACE = "replace"
    COLLAPSE = "collapse"

    ORDER = {PRESERVE: 0, REPLACE: 1, COLLAPSE: 2}


@dataclass(frozen=True)
class Pattern:
    """One ``xsd:pattern`` facet value."""

    source: str

    def matches(self, literal: str) -> bool:
        return compile_pattern(self.source).fullmatch(literal) is not None


def _value_length(value: Any) -> int:
    """Facet 'length' counts characters, list items, or bytes."""
    return len(value)


@dataclass
class FacetSet:
    """The effective facets of one simple type (base facets merged in)."""

    white_space: str = WhiteSpace.PRESERVE
    length: int | None = None
    min_length: int | None = None
    max_length: int | None = None
    #: patterns from *different* derivation steps must all match;
    #: patterns within one step are alternatives.  We keep one entry per
    #: derivation step, each a tuple of alternatives.
    patterns: tuple[tuple[Pattern, ...], ...] = ()
    #: enumeration: parsed values allowed (None = unconstrained)
    enumeration: tuple[Any, ...] | None = None
    min_inclusive: Any = None
    max_inclusive: Any = None
    min_exclusive: Any = None
    max_exclusive: Any = None
    total_digits: int | None = None
    fraction_digits: int | None = None
    #: facet names fixed="true" in some ancestor (cannot be changed below)
    fixed: frozenset[str] = frozenset()

    # -- validation -------------------------------------------------------------

    def check_lexical(self, literal: str) -> None:
        """Pattern facets apply to the (normalized) literal."""
        for alternatives in self.patterns:
            if not any(pattern.matches(literal) for pattern in alternatives):
                sources = " | ".join(p.source for p in alternatives)
                raise SimpleTypeError(
                    f"'{literal}' does not match pattern '{sources}'"
                )

    def check_value(self, value: Any, literal: str) -> None:
        """Value-space facets apply to the parsed value."""
        if self.length is not None and _value_length(value) != self.length:
            raise SimpleTypeError(
                f"'{literal}' has length {_value_length(value)}, "
                f"facet requires exactly {self.length}"
            )
        if self.min_length is not None and _value_length(value) < self.min_length:
            raise SimpleTypeError(
                f"'{literal}' is shorter than minLength {self.min_length}"
            )
        if self.max_length is not None and _value_length(value) > self.max_length:
            raise SimpleTypeError(
                f"'{literal}' is longer than maxLength {self.max_length}"
            )
        self._check_bounds(value, literal)
        self._check_digits(value, literal)
        if self.enumeration is not None and not self._in_enumeration(value):
            allowed = ", ".join(repr(item) for item in self.enumeration)
            raise SimpleTypeError(
                f"'{literal}' is not among the enumerated values: {allowed}"
            )

    def _in_enumeration(self, value: Any) -> bool:
        assert self.enumeration is not None
        for allowed in self.enumeration:
            if type(allowed) is type(value) or isinstance(value, type(allowed)):
                if allowed == value:
                    return True
            elif allowed == value:
                return True
        return False

    def _check_bounds(self, value: Any, literal: str) -> None:
        try:
            if self.min_inclusive is not None and value < self.min_inclusive:
                raise SimpleTypeError(
                    f"'{literal}' is below minInclusive {self.min_inclusive}"
                )
            if self.max_inclusive is not None and value > self.max_inclusive:
                raise SimpleTypeError(
                    f"'{literal}' is above maxInclusive {self.max_inclusive}"
                )
            if self.min_exclusive is not None and value <= self.min_exclusive:
                raise SimpleTypeError(
                    f"'{literal}' is not above minExclusive {self.min_exclusive}"
                )
            if self.max_exclusive is not None and value >= self.max_exclusive:
                raise SimpleTypeError(
                    f"'{literal}' is not below maxExclusive {self.max_exclusive}"
                )
        except TypeError:
            raise SchemaError(
                f"range facet value is not comparable with '{literal}'"
            )

    def _check_digits(self, value: Any, literal: str) -> None:
        if self.total_digits is None and self.fraction_digits is None:
            return
        as_decimal = (
            value
            if isinstance(value, decimal.Decimal)
            else decimal.Decimal(value)
            if isinstance(value, int)
            else None
        )
        if as_decimal is None:
            return
        sign, digits, exponent = as_decimal.normalize().as_tuple()
        del sign
        if not isinstance(exponent, int):  # NaN/Inf tuples
            return
        fraction = max(0, -exponent)
        total = max(len(digits), fraction)
        if self.total_digits is not None and total > self.total_digits:
            raise SimpleTypeError(
                f"'{literal}' has {total} digits, totalDigits allows "
                f"{self.total_digits}"
            )
        if self.fraction_digits is not None and fraction > self.fraction_digits:
            raise SimpleTypeError(
                f"'{literal}' has {fraction} fraction digits, "
                f"fractionDigits allows {self.fraction_digits}"
            )

    # -- derivation -------------------------------------------------------------

    def derive(
        self,
        *,
        parse: Callable[[str], Any],
        white_space: str | None = None,
        length: int | None = None,
        min_length: int | None = None,
        max_length: int | None = None,
        patterns: tuple[str, ...] = (),
        enumeration: tuple[str, ...] | None = None,
        min_inclusive: str | None = None,
        max_inclusive: str | None = None,
        min_exclusive: str | None = None,
        max_exclusive: str | None = None,
        total_digits: int | None = None,
        fraction_digits: int | None = None,
        fixed_names: frozenset[str] = frozenset(),
    ) -> FacetSet:
        """Return the facet set of a restriction step over this one.

        Raw facet literals are parsed with *parse* (the base type's own
        parser) so range and enumeration facets live in the value space.
        """
        def pick(name: str, new: Any, old: Any) -> Any:
            if new is None:
                return old
            if name in self.fixed and new != old:
                raise SchemaError(
                    f"facet '{name}' is fixed in the base type and cannot "
                    "be changed"
                )
            return new

        if white_space is not None:
            if WhiteSpace.ORDER[white_space] < WhiteSpace.ORDER[self.white_space]:
                raise SchemaError(
                    f"whiteSpace cannot weaken from '{self.white_space}' "
                    f"to '{white_space}'"
                )

        new_patterns = self.patterns
        if patterns:
            new_patterns = new_patterns + (
                tuple(Pattern(source) for source in patterns),
            )

        new_enumeration = self.enumeration
        if enumeration is not None:
            parsed_enum = tuple(parse(literal) for literal in enumeration)
            new_enumeration = parsed_enum

        def parse_bound(literal: str | None) -> Any:
            return parse(literal) if literal is not None else None

        derived = FacetSet(
            white_space=pick("whiteSpace", white_space, self.white_space),
            length=pick("length", length, self.length),
            min_length=pick("minLength", min_length, self.min_length),
            max_length=pick("maxLength", max_length, self.max_length),
            patterns=new_patterns,
            enumeration=new_enumeration,
            min_inclusive=pick(
                "minInclusive", parse_bound(min_inclusive), self.min_inclusive
            ),
            max_inclusive=pick(
                "maxInclusive", parse_bound(max_inclusive), self.max_inclusive
            ),
            min_exclusive=pick(
                "minExclusive", parse_bound(min_exclusive), self.min_exclusive
            ),
            max_exclusive=pick(
                "maxExclusive", parse_bound(max_exclusive), self.max_exclusive
            ),
            total_digits=pick("totalDigits", total_digits, self.total_digits),
            fraction_digits=pick(
                "fractionDigits", fraction_digits, self.fraction_digits
            ),
            fixed=self.fixed | fixed_names,
        )
        derived._check_consistency()
        return derived

    def _check_consistency(self) -> None:
        if (
            self.length is not None
            and self.min_length is not None
            and self.length < self.min_length
        ):
            raise SchemaError("length is smaller than minLength")
        if (
            self.length is not None
            and self.max_length is not None
            and self.length > self.max_length
        ):
            raise SchemaError("length is larger than maxLength")
        if (
            self.min_length is not None
            and self.max_length is not None
            and self.min_length > self.max_length
        ):
            raise SchemaError("minLength is larger than maxLength")
        if (
            self.total_digits is not None
            and self.fraction_digits is not None
            and self.fraction_digits > self.total_digits
        ):
            raise SchemaError("fractionDigits exceeds totalDigits")
        try:
            if (
                self.min_inclusive is not None
                and self.max_inclusive is not None
                and self.min_inclusive > self.max_inclusive
            ):
                raise SchemaError("minInclusive is above maxInclusive")
            if (
                self.min_exclusive is not None
                and self.max_exclusive is not None
                and self.min_exclusive >= self.max_exclusive
            ):
                raise SchemaError("minExclusive is not below maxExclusive")
        except TypeError:
            raise SchemaError("range facets of incomparable types")
        if self.min_inclusive is not None and self.min_exclusive is not None:
            raise SchemaError("minInclusive and minExclusive are both present")
        if self.max_inclusive is not None and self.max_exclusive is not None:
            raise SchemaError("maxInclusive and maxExclusive are both present")

"""Streaming schema validation over parser events.

Validates a document straight off the pull parser's event stream — no
DOM is built, memory stays proportional to element depth rather than
document size.  Functionally equivalent to
:class:`repro.xsd.validator.SchemaValidator` on the supported feature
set (the benchmarks assert agreement); it is the validation mode a
server would use for *incoming* documents before unmarshalling, and an
ablation partner for the DOM-based walk.

Namespaces are tracked as a stack of in-scope ``xmlns`` bindings pushed
per start tag: element and attribute names resolve to expanded names and
match the schema's component keys, XSI attributes are recognized by
resolved namespace whatever prefix they use (an undeclared ``xsi:``
prefix keeps its conventional meaning for legacy documents), and
diagnostics for namespaced schemas name elements in Clark notation.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SimpleTypeError, ValidationError
from repro.xml.events import (
    Characters,
    EndElement,
    Event,
    StartElement,
)
from repro.xml.parser import PullParser
from repro.xml.qname import XML_NAMESPACE, XSI_NAMESPACE
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ContentType,
    ElementDeclaration,
    Schema,
    expanded_name,
)
from repro.xsd.simple import SimpleType


class _Frame:
    """Validation state for one open element."""

    __slots__ = (
        "declaration",
        "type_definition",
        "matcher",
        "content_type",
        "text",
        "path",
        "skip",
    )

    def __init__(self, declaration, type_definition, matcher, content_type, path, skip):
        self.declaration = declaration
        self.type_definition = type_definition
        self.matcher = matcher
        self.content_type = content_type
        self.text: list[str] = []
        self.path = path
        self.skip = skip  # inside anyType: accept everything below


class _EventNamespaces:
    """In-scope ``xmlns`` bindings, one frame per open element.

    Frames without declarations share their parent's dict, so the common
    case (namespace-free documents, or declarations only on the root)
    costs one list append per element.
    """

    __slots__ = ("_stack",)

    def __init__(self) -> None:
        self._stack: list[dict[str, str]] = [{"xml": XML_NAMESPACE}]

    def push(self, attributes: tuple[tuple[str, str], ...]) -> None:
        top = self._stack[-1]
        overrides: dict[str, str] | None = None
        for name, value in attributes:
            if name == "xmlns":
                overrides = overrides or {}
                overrides[""] = value
            elif name.startswith("xmlns:"):
                overrides = overrides or {}
                overrides[name[len("xmlns:") :]] = value
        self._stack.append({**top, **overrides} if overrides else top)

    def pop(self) -> None:
        self._stack.pop()

    def get(self, prefix: str) -> str | None:
        return self._stack[-1].get(prefix)


class StreamingValidator:
    """Validate event streams against one schema.

    Content models are stepped through flat integer transition tables
    (:class:`repro.automata.DfaTable`) by default; ``use_tables=False``
    selects the object-DFA matchers instead.  Both routes produce
    identical verdicts, messages, and orderings (the parity suite holds
    them together) — the flag exists so tests can pin the golden
    reference route.
    """

    def __init__(self, schema: Schema, *, use_tables: bool = True):
        self._schema = schema
        self._use_tables = use_tables
        self._namespaced = schema.uses_namespaces

    # -- entry points ---------------------------------------------------------

    def validate_text(self, text: str) -> list[ValidationError]:
        """Parse and validate in one streaming pass."""
        return self.validate_events(PullParser(text))

    def validate_events(self, events: Iterable[Event]) -> list[ValidationError]:
        from repro import obs

        errors: list[ValidationError] = []
        stack: list[_Frame] = []
        namespaces = _EventNamespaces()
        with obs.span("xsd.stream.validate"):
            for event in events:
                if isinstance(event, StartElement):
                    namespaces.push(event.attributes)
                    self._start(event, stack, errors, namespaces)
                elif isinstance(event, EndElement):
                    self._end(stack, errors)
                    namespaces.pop()
                elif isinstance(event, Characters):
                    self._characters(event, stack, errors)
                # comments / PIs / doctype / declarations are transparent
        obs.count("xsd.stream.documents")
        if errors:
            obs.count("xsd.stream.errors", n=len(errors))
        return errors

    def is_valid(self, text: str) -> bool:
        return not self.validate_text(text)

    # -- namespace resolution ---------------------------------------------------

    def _event_key(self, event: StartElement, namespaces: _EventNamespaces) -> str:
        """Expanded name the event matches schema components under.

        Lexical tag name for namespace-free schemas (the pre-namespace
        behavior, byte for byte) and for undeclared prefixes, where the
        schema's "no such element" diagnostics do the explaining.
        """
        if not self._namespaced:
            return event.name
        prefix, colon, local = event.name.partition(":")
        if not colon:
            return expanded_name(namespaces.get("") or None, event.name)
        uri = namespaces.get(prefix)
        if uri is None:
            return event.name
        return expanded_name(uri, local)

    def _attribute_items(
        self, event: StartElement, namespaces: _EventNamespaces
    ) -> list[tuple[str, str, str]]:
        """(lexical name, matching key, value) for schema-checked attributes.

        Filters namespace declarations and XSI attributes by *resolved*
        namespace; an undeclared ``xsi:`` prefix keeps its conventional
        meaning, any other undeclared prefix leaves the attribute
        matched (and reported) by its lexical name.
        """
        items: list[tuple[str, str, str]] = []
        for name, value in event.attributes:
            if name == "xmlns" or name.startswith("xmlns:"):
                continue
            prefix, colon, local = name.partition(":")
            if not colon:
                items.append((name, name, value))
                continue
            uri = namespaces.get(prefix)
            if uri is None:
                if prefix == "xsi":
                    continue
                items.append((name, name, value))
                continue
            if uri == XSI_NAMESPACE:
                continue
            items.append((name, expanded_name(uri, local), value))
        return items

    def _xsi_type_value(
        self, event: StartElement, namespaces: _EventNamespaces
    ) -> str | None:
        for name, value in event.attributes:
            prefix, colon, local = name.partition(":")
            if not colon or local != "type" or prefix == "xmlns":
                continue
            uri = namespaces.get(prefix)
            if uri == XSI_NAMESPACE or (uri is None and prefix == "xsi"):
                return value
        return None

    def _xsi_type_key(
        self, type_name: str, namespaces: _EventNamespaces
    ) -> str:
        """Resolve the QName *value* of ``xsi:type`` to a type key."""
        if not self._namespaced:
            return type_name.rpartition(":")[2]
        prefix, colon, local = type_name.partition(":")
        if not colon:
            return expanded_name(namespaces.get("") or None, type_name)
        uri = namespaces.get(prefix)
        if uri is None:
            return local
        return expanded_name(uri, local)

    # -- event handlers ----------------------------------------------------------

    def _start(
        self,
        event: StartElement,
        stack: list[_Frame],
        errors: list[ValidationError],
        namespaces: _EventNamespaces,
    ) -> None:
        key = self._event_key(event, namespaces)
        if not stack:
            declaration = self._schema.elements.get(key)
            if declaration is None:
                errors.append(
                    ValidationError(
                        f"root element <{key}> is not a global "
                        "element of the schema",
                        event.location,
                    )
                )
                stack.append(
                    _Frame(None, ANY_TYPE, None, None, f"/{key}", True)
                )
                return
            if declaration.abstract:
                errors.append(
                    ValidationError(
                        f"element '{key}' is abstract",
                        event.location,
                    )
                )
            self._push(
                event, declaration, key, f"/{key}", stack, errors, namespaces
            )
            return
        parent = stack[-1]
        path = f"{parent.path}/{key}"
        if parent.skip:
            stack.append(_Frame(None, ANY_TYPE, None, None, path, True))
            return
        if parent.matcher is None:
            # Parent has empty or simple content: no child allowed.
            errors.append(
                ValidationError(
                    f"<{key}> is not allowed inside "
                    f"<{_name_of(parent)}>",
                    event.location,
                    path=parent.path,
                )
            )
            stack.append(_Frame(None, ANY_TYPE, None, None, path, True))
            return
        matched = parent.matcher.step(key)
        if matched is None:
            expected = ", ".join(
                f"<{key_}>" for key_ in parent.matcher.expected()
            ) or "no further elements"
            errors.append(
                ValidationError(
                    f"<{key}> is not allowed here inside "
                    f"<{_name_of(parent)}>; expected {expected}",
                    event.location,
                    path=parent.path,
                )
            )
            stack.append(_Frame(None, ANY_TYPE, None, None, path, True))
            return
        assert isinstance(matched, ElementDeclaration)
        self._push(event, matched, key, path, stack, errors, namespaces)

    def _push(
        self,
        event: StartElement,
        declaration: ElementDeclaration,
        display: str,
        path: str,
        stack: list[_Frame],
        errors: list[ValidationError],
        namespaces: _EventNamespaces,
    ) -> None:
        type_definition = declaration.resolved_type()
        override = self._xsi_type_value(event, namespaces)
        if override is not None:
            candidate = self._schema.types.get(
                self._xsi_type_key(override, namespaces)
            )
            if candidate is None:
                errors.append(
                    ValidationError(
                        f"xsi:type names unknown type '{override}'",
                        event.location,
                        path=path,
                    )
                )
            elif not _derives_from(candidate, type_definition):
                errors.append(
                    ValidationError(
                        f"xsi:type '{override}' is not derived from the "
                        "declared type",
                        event.location,
                        path=path,
                    )
                )
            else:
                type_definition = candidate
        matcher = None
        content_type = None
        skip = False
        if isinstance(type_definition, ComplexType):
            if type_definition is ANY_TYPE:
                skip = True
            else:
                if type_definition.abstract:
                    errors.append(
                        ValidationError(
                            f"type '{type_definition.name}' of element "
                            f"'{declaration.key}' is abstract",
                            event.location,
                            path=path,
                        )
                    )
                content_type = type_definition.content_type
                if content_type in (
                    ContentType.ELEMENT_ONLY,
                    ContentType.MIXED,
                ):
                    if self._use_tables:
                        matcher = self._schema.content_table(
                            type_definition
                        ).matcher()
                    else:
                        matcher = self._schema.content_dfa(
                            type_definition
                        ).matcher()
                self._check_attributes(
                    event, type_definition, display, path, errors, namespaces
                )
        else:
            if event.attributes and self._attribute_items(event, namespaces):
                errors.append(
                    ValidationError(
                        f"element <{display}> of simple type "
                        "may not carry attributes",
                        event.location,
                        path=path,
                    )
                )
        stack.append(
            _Frame(declaration, type_definition, matcher, content_type, path, skip)
        )

    def _characters(
        self,
        event: Characters,
        stack: list[_Frame],
        errors: list[ValidationError],
    ) -> None:
        if not stack:
            return
        frame = stack[-1]
        if frame.skip:
            return
        if (
            frame.content_type in (ContentType.ELEMENT_ONLY, ContentType.EMPTY)
            and event.data.strip()
        ):
            kind = (
                "element-only content"
                if frame.content_type is ContentType.ELEMENT_ONLY
                else "empty content"
            )
            errors.append(
                ValidationError(
                    f"<{_name_of(frame)}> has {kind} but contains text",
                    event.location,
                    path=frame.path,
                )
            )
            return
        frame.text.append(event.data)

    def _end(
        self, stack: list[_Frame], errors: list[ValidationError]
    ) -> None:
        frame = stack.pop()
        if frame.skip:
            return
        if frame.matcher is not None and not frame.matcher.at_accepting_state():
            expected = ", ".join(
                f"<{key}>" for key in frame.matcher.expected()
            )
            errors.append(
                ValidationError(
                    f"content of <{_name_of(frame)}> ends too early; "
                    f"expected {expected}",
                    path=frame.path,
                )
            )
        text = "".join(frame.text)
        type_definition = frame.type_definition
        if isinstance(type_definition, SimpleType):
            self._check_simple(text, type_definition, frame, errors)
        elif (
            isinstance(type_definition, ComplexType)
            and type_definition.content_type is ContentType.SIMPLE
        ):
            assert type_definition.simple_content is not None
            self._check_simple(
                text, type_definition.simple_content, frame, errors
            )
        if (
            frame.declaration is not None
            and frame.declaration.fixed is not None
            and text != frame.declaration.fixed
        ):
            errors.append(
                ValidationError(
                    f"element '{frame.declaration.key}' must have the "
                    f"fixed value {frame.declaration.fixed!r}",
                    path=frame.path,
                )
            )

    def _check_simple(
        self,
        text: str,
        simple_type: SimpleType,
        frame: _Frame,
        errors: list[ValidationError],
    ) -> None:
        try:
            simple_type.parse(text)
        except SimpleTypeError as error:
            errors.append(
                ValidationError(
                    f"content of <{_name_of(frame)}>: {error.message}",
                    path=frame.path,
                )
            )

    def _check_attributes(
        self,
        event: StartElement,
        complex_type: ComplexType,
        display: str,
        path: str,
        errors: list[ValidationError],
        namespaces: _EventNamespaces,
    ) -> None:
        uses = complex_type.effective_attribute_uses()
        seen: set[str] = set()
        for name, key, value in self._attribute_items(event, namespaces):
            seen.add(key)
            label = key if self._namespaced else name
            use = uses.get(key)
            if use is None:
                errors.append(
                    ValidationError(
                        f"attribute '{label}' is not declared on "
                        f"<{display}>",
                        event.location,
                        path=path,
                    )
                )
                continue
            if use.fixed is not None and value != use.fixed:
                errors.append(
                    ValidationError(
                        f"attribute '{label}' must have the fixed value "
                        f"{use.fixed!r}, found {value!r}",
                        event.location,
                        path=path,
                    )
                )
                continue
            try:
                use.declaration.resolved_type().parse(value)
            except SimpleTypeError as error:
                errors.append(
                    ValidationError(
                        f"attribute '{label}' of <{display}>: "
                        f"{error.message}",
                        event.location,
                        path=path,
                    )
                )
        for key, use in uses.items():
            if use.required and key not in seen:
                errors.append(
                    ValidationError(
                        f"required attribute '{key}' missing on "
                        f"<{display}>",
                        event.location,
                        path=path,
                    )
                )


def _name_of(frame: _Frame) -> str:
    if frame.declaration is not None:
        return frame.declaration.key
    return frame.path.rsplit("/", 1)[-1]


def _derives_from(candidate, declared) -> bool:
    if declared is ANY_TYPE:
        return True
    if isinstance(candidate, ComplexType) and isinstance(declared, ComplexType):
        return candidate.is_derived_from(declared)
    if isinstance(candidate, SimpleType) and isinstance(declared, SimpleType):
        return candidate.is_derived_from(declared)
    return False


def error_entry(error: Exception) -> dict:
    """JSON shape for one validation/syntax error verdict.

    Shared by the serve tier's ``POST /-/validate`` endpoint and the
    bulk pool's text-validation workers, so a pooled verdict is
    byte-identical to the inline one.
    """
    from repro.errors import XmlSyntaxError

    entry: dict = {
        "message": getattr(error, "message", str(error)),
        "kind": (
            "syntax" if isinstance(error, XmlSyntaxError) else "validation"
        ),
    }
    location = getattr(error, "location", None)
    if location is not None:
        entry["line"] = location.line
        entry["column"] = location.column
    path = getattr(error, "path", None)
    if path:
        entry["path"] = path
    return entry

"""Streaming schema validation over parser events.

Validates a document straight off the pull parser's event stream — no
DOM is built, memory stays proportional to element depth rather than
document size.  Functionally equivalent to
:class:`repro.xsd.validator.SchemaValidator` on the supported feature
set (the benchmarks assert agreement); it is the validation mode a
server would use for *incoming* documents before unmarshalling, and an
ablation partner for the DOM-based walk.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import SimpleTypeError, ValidationError
from repro.xml.events import (
    Characters,
    EndElement,
    Event,
    StartElement,
)
from repro.xml.parser import PullParser
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ContentType,
    ElementDeclaration,
    Schema,
)
from repro.xsd.simple import SimpleType


class _Frame:
    """Validation state for one open element."""

    __slots__ = (
        "declaration",
        "type_definition",
        "matcher",
        "content_type",
        "text",
        "path",
        "skip",
    )

    def __init__(self, declaration, type_definition, matcher, content_type, path, skip):
        self.declaration = declaration
        self.type_definition = type_definition
        self.matcher = matcher
        self.content_type = content_type
        self.text: list[str] = []
        self.path = path
        self.skip = skip  # inside anyType: accept everything below


class StreamingValidator:
    """Validate event streams against one schema.

    Content models are stepped through flat integer transition tables
    (:class:`repro.automata.DfaTable`) by default; ``use_tables=False``
    selects the object-DFA matchers instead.  Both routes produce
    identical verdicts, messages, and orderings (the parity suite holds
    them together) — the flag exists so tests can pin the golden
    reference route.
    """

    def __init__(self, schema: Schema, *, use_tables: bool = True):
        self._schema = schema
        self._use_tables = use_tables

    # -- entry points ---------------------------------------------------------

    def validate_text(self, text: str) -> list[ValidationError]:
        """Parse and validate in one streaming pass."""
        return self.validate_events(PullParser(text))

    def validate_events(self, events: Iterable[Event]) -> list[ValidationError]:
        from repro import obs

        errors: list[ValidationError] = []
        stack: list[_Frame] = []
        with obs.span("xsd.stream.validate"):
            for event in events:
                if isinstance(event, StartElement):
                    self._start(event, stack, errors)
                elif isinstance(event, EndElement):
                    self._end(stack, errors)
                elif isinstance(event, Characters):
                    self._characters(event, stack, errors)
                # comments / PIs / doctype / declarations are transparent
        obs.count("xsd.stream.documents")
        if errors:
            obs.count("xsd.stream.errors", n=len(errors))
        return errors

    def is_valid(self, text: str) -> bool:
        return not self.validate_text(text)

    # -- event handlers ----------------------------------------------------------

    def _start(
        self,
        event: StartElement,
        stack: list[_Frame],
        errors: list[ValidationError],
    ) -> None:
        if not stack:
            declaration = self._schema.elements.get(event.name)
            if declaration is None:
                errors.append(
                    ValidationError(
                        f"root element <{event.name}> is not a global "
                        "element of the schema",
                        event.location,
                    )
                )
                stack.append(
                    _Frame(None, ANY_TYPE, None, None, f"/{event.name}", True)
                )
                return
            if declaration.abstract:
                errors.append(
                    ValidationError(
                        f"element '{event.name}' is abstract",
                        event.location,
                    )
                )
            self._push(event, declaration, f"/{event.name}", stack, errors)
            return
        parent = stack[-1]
        path = f"{parent.path}/{event.name}"
        if parent.skip:
            stack.append(_Frame(None, ANY_TYPE, None, None, path, True))
            return
        if parent.matcher is None:
            # Parent has empty or simple content: no child allowed.
            errors.append(
                ValidationError(
                    f"<{event.name}> is not allowed inside "
                    f"<{_name_of(parent)}>",
                    event.location,
                    path=parent.path,
                )
            )
            stack.append(_Frame(None, ANY_TYPE, None, None, path, True))
            return
        matched = parent.matcher.step(event.name)
        if matched is None:
            expected = ", ".join(
                f"<{key}>" for key in parent.matcher.expected()
            ) or "no further elements"
            errors.append(
                ValidationError(
                    f"<{event.name}> is not allowed here inside "
                    f"<{_name_of(parent)}>; expected {expected}",
                    event.location,
                    path=parent.path,
                )
            )
            stack.append(_Frame(None, ANY_TYPE, None, None, path, True))
            return
        assert isinstance(matched, ElementDeclaration)
        self._push(event, matched, path, stack, errors)

    def _push(
        self,
        event: StartElement,
        declaration: ElementDeclaration,
        path: str,
        stack: list[_Frame],
        errors: list[ValidationError],
    ) -> None:
        type_definition = declaration.resolved_type()
        override = event.get("xsi:type")
        if override is not None:
            local = override.rpartition(":")[2]
            candidate = self._schema.types.get(local)
            if candidate is None:
                errors.append(
                    ValidationError(
                        f"xsi:type names unknown type '{override}'",
                        event.location,
                        path=path,
                    )
                )
            elif not _derives_from(candidate, type_definition):
                errors.append(
                    ValidationError(
                        f"xsi:type '{override}' is not derived from the "
                        "declared type",
                        event.location,
                        path=path,
                    )
                )
            else:
                type_definition = candidate
        matcher = None
        content_type = None
        skip = False
        if isinstance(type_definition, ComplexType):
            if type_definition is ANY_TYPE:
                skip = True
            else:
                if type_definition.abstract:
                    errors.append(
                        ValidationError(
                            f"type '{type_definition.name}' of element "
                            f"'{declaration.name}' is abstract",
                            event.location,
                            path=path,
                        )
                    )
                content_type = type_definition.content_type
                if content_type in (
                    ContentType.ELEMENT_ONLY,
                    ContentType.MIXED,
                ):
                    if self._use_tables:
                        matcher = self._schema.content_table(
                            type_definition
                        ).matcher()
                    else:
                        matcher = self._schema.content_dfa(
                            type_definition
                        ).matcher()
                self._check_attributes(
                    event, type_definition, path, errors
                )
        else:
            if event.attributes and any(
                not name.startswith("xmlns") and not name.startswith("xsi:")
                for name, __ in event.attributes
            ):
                errors.append(
                    ValidationError(
                        f"element <{event.name}> of simple type may not "
                        "carry attributes",
                        event.location,
                        path=path,
                    )
                )
        stack.append(
            _Frame(declaration, type_definition, matcher, content_type, path, skip)
        )

    def _characters(
        self,
        event: Characters,
        stack: list[_Frame],
        errors: list[ValidationError],
    ) -> None:
        if not stack:
            return
        frame = stack[-1]
        if frame.skip:
            return
        if (
            frame.content_type in (ContentType.ELEMENT_ONLY, ContentType.EMPTY)
            and event.data.strip()
        ):
            kind = (
                "element-only content"
                if frame.content_type is ContentType.ELEMENT_ONLY
                else "empty content"
            )
            errors.append(
                ValidationError(
                    f"<{_name_of(frame)}> has {kind} but contains text",
                    event.location,
                    path=frame.path,
                )
            )
            return
        frame.text.append(event.data)

    def _end(
        self, stack: list[_Frame], errors: list[ValidationError]
    ) -> None:
        frame = stack.pop()
        if frame.skip:
            return
        if frame.matcher is not None and not frame.matcher.at_accepting_state():
            expected = ", ".join(
                f"<{key}>" for key in frame.matcher.expected()
            )
            errors.append(
                ValidationError(
                    f"content of <{_name_of(frame)}> ends too early; "
                    f"expected {expected}",
                    path=frame.path,
                )
            )
        text = "".join(frame.text)
        type_definition = frame.type_definition
        if isinstance(type_definition, SimpleType):
            self._check_simple(text, type_definition, frame, errors)
        elif (
            isinstance(type_definition, ComplexType)
            and type_definition.content_type is ContentType.SIMPLE
        ):
            assert type_definition.simple_content is not None
            self._check_simple(
                text, type_definition.simple_content, frame, errors
            )
        if (
            frame.declaration is not None
            and frame.declaration.fixed is not None
            and text != frame.declaration.fixed
        ):
            errors.append(
                ValidationError(
                    f"element '{frame.declaration.name}' must have the "
                    f"fixed value {frame.declaration.fixed!r}",
                    path=frame.path,
                )
            )

    def _check_simple(
        self,
        text: str,
        simple_type: SimpleType,
        frame: _Frame,
        errors: list[ValidationError],
    ) -> None:
        try:
            simple_type.parse(text)
        except SimpleTypeError as error:
            errors.append(
                ValidationError(
                    f"content of <{_name_of(frame)}>: {error.message}",
                    path=frame.path,
                )
            )

    def _check_attributes(
        self,
        event: StartElement,
        complex_type: ComplexType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        uses = complex_type.effective_attribute_uses()
        seen: set[str] = set()
        for name, value in event.attributes:
            if name.startswith("xmlns") or name.startswith("xsi:"):
                continue
            seen.add(name)
            use = uses.get(name)
            if use is None:
                errors.append(
                    ValidationError(
                        f"attribute '{name}' is not declared on "
                        f"<{event.name}>",
                        event.location,
                        path=path,
                    )
                )
                continue
            if use.fixed is not None and value != use.fixed:
                errors.append(
                    ValidationError(
                        f"attribute '{name}' must have the fixed value "
                        f"{use.fixed!r}, found {value!r}",
                        event.location,
                        path=path,
                    )
                )
                continue
            try:
                use.declaration.resolved_type().parse(value)
            except SimpleTypeError as error:
                errors.append(
                    ValidationError(
                        f"attribute '{name}' of <{event.name}>: "
                        f"{error.message}",
                        event.location,
                        path=path,
                    )
                )
        for name, use in uses.items():
            if use.required and name not in seen:
                errors.append(
                    ValidationError(
                        f"required attribute '{name}' missing on "
                        f"<{event.name}>",
                        event.location,
                        path=path,
                    )
                )


def _name_of(frame: _Frame) -> str:
    if frame.declaration is not None:
        return frame.declaration.name
    return frame.path.rsplit("/", 1)[-1]


def _derives_from(candidate, declared) -> bool:
    if declared is ANY_TYPE:
        return True
    if isinstance(candidate, ComplexType) and isinstance(declared, ComplexType):
        return candidate.is_derived_from(declared)
    if isinstance(candidate, SimpleType) and isinstance(declared, SimpleType):
        return candidate.is_derived_from(declared)
    return False


def error_entry(error: Exception) -> dict:
    """JSON shape for one validation/syntax error verdict.

    Shared by the serve tier's ``POST /-/validate`` endpoint and the
    bulk pool's text-validation workers, so a pooled verdict is
    byte-identical to the inline one.
    """
    from repro.errors import XmlSyntaxError

    entry: dict = {
        "message": getattr(error, "message", str(error)),
        "kind": (
            "syntax" if isinstance(error, XmlSyntaxError) else "validation"
        ),
    }
    location = getattr(error, "location", None)
    if location is not None:
        entry["line"] = location.line
        entry["column"] = location.column
    path = getattr(error, "path", None)
    if path:
        entry["path"] = path
    return entry

"""Runtime validation of DOM trees against a schema.

This is the *baseline* path of the paper's comparison: a generic DOM tree
is built first, then walked and checked — "invalid documents usually
cannot be detected until runtime requiring extensive testing" (Sect. 2).
V-DOM makes this walk unnecessary for generated documents; the benchmarks
measure exactly the cost this module represents.
"""

from __future__ import annotations

from repro.errors import SimpleTypeError, ValidationError
from repro.dom.charnodes import Text
from repro.dom.document import Document
from repro.dom.element import Element
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ContentType,
    ElementDeclaration,
    Schema,
    TypeDefinition,
)
from repro.xsd.simple import SimpleType


class SchemaValidator:
    """Validate documents or elements against one :class:`Schema`."""

    def __init__(self, schema: Schema):
        self._schema = schema

    # -- entry points --------------------------------------------------------

    def validate(self, document: Document) -> list[ValidationError]:
        """Validate a whole document; returns all violations found."""
        root = document.document_element
        if root is None:
            return [ValidationError("document has no root element")]
        declaration = self._schema.elements.get(root.tag_name)
        if declaration is None:
            return [
                ValidationError(
                    f"root element <{root.tag_name}> is not a global element "
                    "of the schema"
                )
            ]
        return self.validate_element(root, declaration)

    def validate_element(
        self, element: Element, declaration: ElementDeclaration
    ) -> list[ValidationError]:
        """Validate *element* against a specific declaration."""
        errors: list[ValidationError] = []
        if declaration.abstract:
            errors.append(
                ValidationError(
                    f"element '{declaration.name}' is abstract; only members "
                    "of its substitution group may appear",
                    path="/" + element.tag_name,
                )
            )
        self._check_element(element, declaration, "/" + element.tag_name, errors)
        return errors

    def assert_valid(self, document: Document) -> None:
        errors = self.validate(document)
        if errors:
            raise errors[0]

    def is_valid(self, document: Document) -> bool:
        return not self.validate(document)

    # -- element dispatch ------------------------------------------------------

    def _check_element(
        self,
        element: Element,
        declaration: ElementDeclaration,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        type_definition = declaration.resolved_type()
        override = _xsi_type_override(element)
        if override is not None:
            type_definition = self._resolve_xsi_type(
                override, type_definition, path, errors
            )
        if isinstance(type_definition, ComplexType) and type_definition.abstract:
            errors.append(
                ValidationError(
                    f"type '{type_definition.name}' of element "
                    f"'{declaration.name}' is abstract",
                    path=path,
                )
            )
        if declaration.fixed is not None:
            text = element.text_content
            if text != declaration.fixed:
                errors.append(
                    ValidationError(
                        f"element '{declaration.name}' must have the fixed "
                        f"value {declaration.fixed!r}, found {text!r}",
                        path=path,
                    )
                )
        if isinstance(type_definition, SimpleType):
            self._check_simple_element(element, type_definition, path, errors)
            return
        self._check_complex_element(element, type_definition, path, errors)

    def _resolve_xsi_type(
        self,
        type_name: str,
        declared: TypeDefinition,
        path: str,
        errors: list[ValidationError],
    ) -> TypeDefinition:
        """``xsi:type`` substitutes a *derived* type for the declared one
        — the instance-document face of "type extension … reflected by
        inheritance" (paper Sect. 3)."""
        local = type_name.rpartition(":")[2]
        candidate = self._schema.types.get(local)
        if candidate is None:
            errors.append(
                ValidationError(
                    f"xsi:type names unknown type '{type_name}'", path=path
                )
            )
            return declared
        compatible = (
            declared is ANY_TYPE
            or (
                isinstance(candidate, ComplexType)
                and isinstance(declared, ComplexType)
                and candidate.is_derived_from(declared)
            )
            or (
                isinstance(candidate, SimpleType)
                and isinstance(declared, SimpleType)
                and candidate.is_derived_from(declared)
            )
        )
        if not compatible:
            declared_name = getattr(declared, "name", None) or "<anonymous>"
            errors.append(
                ValidationError(
                    f"xsi:type '{type_name}' is not derived from the "
                    f"declared type '{declared_name}'",
                    path=path,
                )
            )
            return declared
        if isinstance(candidate, ComplexType) and candidate.abstract:
            errors.append(
                ValidationError(
                    f"xsi:type names the abstract type '{type_name}'",
                    path=path,
                )
            )
        return candidate

    def _check_simple_element(
        self,
        element: Element,
        simple_type: SimpleType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        if element.child_elements():
            errors.append(
                ValidationError(
                    f"element <{element.tag_name}> has simple type "
                    f"'{simple_type.name}' but contains child elements",
                    path=path,
                )
            )
            return
        plain_attributes = [
            name
            for name, __ in element.attributes.items()
            if not name.startswith("xmlns") and not name.startswith("xsi:")
        ]
        if plain_attributes:
            errors.append(
                ValidationError(
                    f"element <{element.tag_name}> of simple type may not "
                    f"carry attributes ({', '.join(plain_attributes)})",
                    path=path,
                )
            )
        try:
            simple_type.parse(element.text_content)
        except SimpleTypeError as error:
            errors.append(
                ValidationError(
                    f"content of <{element.tag_name}>: {error.message}",
                    path=path,
                )
            )

    # -- complex types ---------------------------------------------------------------

    def _check_complex_element(
        self,
        element: Element,
        complex_type: ComplexType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        if complex_type is ANY_TYPE:
            return  # the ur-type accepts anything
        self._check_attributes(element, complex_type, path, errors)
        content_type = complex_type.content_type
        child_elements = element.child_elements()
        has_text = any(
            isinstance(node, Text) and node.data.strip()
            for node in element.iter_children()
        )
        if content_type is ContentType.EMPTY:
            if child_elements or has_text:
                errors.append(
                    ValidationError(
                        f"element <{element.tag_name}> must be empty",
                        path=path,
                    )
                )
            return
        if content_type is ContentType.SIMPLE:
            if child_elements:
                errors.append(
                    ValidationError(
                        f"element <{element.tag_name}> has simple content but "
                        "contains child elements",
                        path=path,
                    )
                )
                return
            assert complex_type.simple_content is not None
            try:
                complex_type.simple_content.parse(element.text_content)
            except SimpleTypeError as error:
                errors.append(
                    ValidationError(
                        f"content of <{element.tag_name}>: {error.message}",
                        path=path,
                    )
                )
            return
        if content_type is ContentType.ELEMENT_ONLY and has_text:
            errors.append(
                ValidationError(
                    f"element <{element.tag_name}> has element-only content "
                    "but contains text",
                    path=path,
                )
            )
        self._check_children(element, complex_type, child_elements, path, errors)

    def _check_children(
        self,
        element: Element,
        complex_type: ComplexType,
        child_elements: list[Element],
        path: str,
        errors: list[ValidationError],
    ) -> None:
        dfa = self._schema.content_dfa(complex_type)
        matcher = dfa.matcher()
        for index, child in enumerate(child_elements):
            matched = matcher.step(child.tag_name)
            if matched is None:
                expected = ", ".join(
                    f"<{key}>" for key in matcher.expected()
                ) or "no further elements"
                errors.append(
                    ValidationError(
                        f"child {index + 1} of <{element.tag_name}> is "
                        f"<{child.tag_name}>; expected {expected}",
                        path=path,
                    )
                )
                return
            child_path = f"{path}/{child.tag_name}[{index}]"
            assert isinstance(matched, ElementDeclaration)
            self._check_element(child, matched, child_path, errors)
        if not matcher.at_accepting_state():
            expected = ", ".join(f"<{key}>" for key in matcher.expected())
            errors.append(
                ValidationError(
                    f"content of <{element.tag_name}> ends too early; "
                    f"expected {expected}",
                    path=path,
                )
            )

    # -- attributes -------------------------------------------------------------------

    def _check_attributes(
        self,
        element: Element,
        complex_type: ComplexType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        uses = complex_type.effective_attribute_uses()
        for name, value in element.attributes.items():
            if name.startswith("xmlns") or name.startswith("xsi:"):
                continue  # namespace/xsi machinery, not schema attributes
            use = uses.get(name)
            if use is None:
                errors.append(
                    ValidationError(
                        f"attribute '{name}' is not declared on "
                        f"<{element.tag_name}>",
                        path=path,
                    )
                )
                continue
            if use.fixed is not None and value != use.fixed:
                errors.append(
                    ValidationError(
                        f"attribute '{name}' must have the fixed value "
                        f"{use.fixed!r}, found {value!r}",
                        path=path,
                    )
                )
                continue
            try:
                use.declaration.resolved_type().parse(value)
            except SimpleTypeError as error:
                errors.append(
                    ValidationError(
                        f"attribute '{name}' of <{element.tag_name}>: "
                        f"{error.message}",
                        path=path,
                    )
                )
        for name, use in uses.items():
            if use.required and not element.has_attribute(name):
                errors.append(
                    ValidationError(
                        f"required attribute '{name}' missing on "
                        f"<{element.tag_name}>",
                        path=path,
                    )
                )


def _xsi_type_override(element: Element) -> str | None:
    """The value of ``xsi:type`` on *element*, if present.

    Prefix resolution is simplified to the conventional ``xsi:`` prefix
    (full namespace machinery is overkill for the feature set here).
    """
    if element.has_attribute("xsi:type"):
        return element.get_attribute("xsi:type")
    return None


def validate(
    document: Document, schema: Schema
) -> list[ValidationError]:
    """One-shot validation convenience."""
    return SchemaValidator(schema).validate(document)


def type_of_element(
    schema: Schema, element_name: str
) -> TypeDefinition:
    """The resolved type of a global element (helper for tooling)."""
    return schema.element(element_name).resolved_type()

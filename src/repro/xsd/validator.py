"""Runtime validation of DOM trees against a schema.

This is the *baseline* path of the paper's comparison: a generic DOM tree
is built first, then walked and checked — "invalid documents usually
cannot be detected until runtime requiring extensive testing" (Sect. 2).
V-DOM makes this walk unnecessary for generated documents; the benchmarks
measure exactly the cost this module represents.

Namespace handling follows the Namespaces-in-XML rules: element and
attribute names resolve against the in-scope ``xmlns`` bindings and are
matched by *expanded name* against the schema's component keys, so a
document may bind any prefix (or the default namespace) to the schema's
target namespace.  Attributes are classified by resolved namespace —
``xmlns`` declarations and XSI attributes are recognized no matter what
prefix they use; an attribute merely *spelled* ``xsi:…`` whose prefix is
bound elsewhere is treated as the ordinary attribute it is.  For
documents written without namespace declarations, an undeclared ``xsi:``
prefix keeps its conventional meaning so schema-free instances validate
exactly as before.
"""

from __future__ import annotations

from repro.errors import SimpleTypeError, ValidationError
from repro.dom.charnodes import Text
from repro.dom.document import Document
from repro.dom.element import Element
from repro.xml.qname import XML_NAMESPACE, XSI_NAMESPACE
from repro.xsd.components import (
    ANY_TYPE,
    ComplexType,
    ContentType,
    ElementDeclaration,
    Schema,
    TypeDefinition,
    expanded_name,
)
from repro.xsd.simple import SimpleType


class SchemaValidator:
    """Validate documents or elements against one :class:`Schema`."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._namespaced = schema.uses_namespaces
        #: id(element) -> in-scope prefix bindings, reset per entry point
        self._ns_memo: dict[int, dict[str, str]] = {}

    # -- entry points --------------------------------------------------------

    def validate(self, document: Document) -> list[ValidationError]:
        """Validate a whole document; returns all violations found."""
        self._ns_memo = {}
        root = document.document_element
        if root is None:
            return [ValidationError("document has no root element")]
        declaration = self._schema.elements.get(self._element_key(root))
        if declaration is None:
            return [
                ValidationError(
                    f"root element <{self._display(root)}> is not a global "
                    "element of the schema"
                )
            ]
        return self._validate_element(root, declaration)

    def validate_element(
        self, element: Element, declaration: ElementDeclaration
    ) -> list[ValidationError]:
        """Validate *element* against a specific declaration."""
        self._ns_memo = {}
        return self._validate_element(element, declaration)

    def _validate_element(
        self, element: Element, declaration: ElementDeclaration
    ) -> list[ValidationError]:
        errors: list[ValidationError] = []
        if declaration.abstract:
            errors.append(
                ValidationError(
                    f"element '{declaration.key}' is abstract; only members "
                    "of its substitution group may appear",
                    path="/" + self._display(element),
                )
            )
        self._check_element(
            element, declaration, "/" + self._display(element), errors
        )
        return errors

    def assert_valid(self, document: Document) -> None:
        errors = self.validate(document)
        if errors:
            raise errors[0]

    def is_valid(self, document: Document) -> bool:
        return not self.validate(document)

    # -- namespace resolution --------------------------------------------------

    def _bindings(self, element: Element) -> dict[str, str]:
        """In-scope prefix -> namespace bindings at *element* (memoized)."""
        cached = self._ns_memo.get(id(element))
        if cached is not None:
            return cached
        parent = element.parent_node
        base = (
            self._bindings(parent)
            if isinstance(parent, Element)
            else {"xml": XML_NAMESPACE}
        )
        overrides: dict[str, str] | None = None
        for name, value in element.attributes.items():
            if name == "xmlns":
                overrides = overrides or {}
                overrides[""] = value
            elif name.startswith("xmlns:"):
                overrides = overrides or {}
                overrides[name[len("xmlns:") :]] = value
        bindings = {**base, **overrides} if overrides else base
        self._ns_memo[id(element)] = bindings
        return bindings

    def _element_key(self, element: Element) -> str:
        """The expanded name *element* matches schema components under.

        For namespace-free schemas this stays the lexical tag name —
        the pre-namespace behavior, byte for byte.  An undeclared prefix
        also falls back to the lexical name rather than failing, so the
        schema's "no such element" diagnostics do the explaining.
        """
        if not self._namespaced:
            return element.tag_name
        prefix, colon, local = element.tag_name.partition(":")
        bindings = self._bindings(element)
        if not colon:
            return expanded_name(bindings.get("") or None, element.tag_name)
        uri = bindings.get(prefix)
        if uri is None:
            return element.tag_name
        return expanded_name(uri, local)

    def _display(self, element: Element) -> str:
        """Element name as shown in diagnostics: Clark when namespaced."""
        return self._element_key(element)

    def _attribute_uri(self, element: Element, prefix: str) -> str | None:
        return self._bindings(element).get(prefix)

    def _attribute_items(
        self, element: Element
    ) -> list[tuple[str, str, str]]:
        """(lexical name, matching key, value) for schema-checked attributes.

        Namespace declarations and XSI attributes — identified by their
        *resolved* namespace, whatever prefix they wear — are filtered
        out.  An undeclared ``xsi:`` prefix keeps its conventional
        meaning (legacy documents); any other undeclared prefix leaves
        the attribute matched by its lexical name, where the
        "not declared" diagnostic will name it verbatim.
        """
        items: list[tuple[str, str, str]] = []
        for name, value in element.attributes.items():
            if name == "xmlns" or name.startswith("xmlns:"):
                continue
            prefix, colon, local = name.partition(":")
            if not colon:
                # Unprefixed attributes are in *no* namespace — the
                # default namespace does not apply to attribute names.
                items.append((name, name, value))
                continue
            uri = self._attribute_uri(element, prefix)
            if uri is None:
                if prefix == "xsi":
                    continue
                items.append((name, name, value))
                continue
            if uri == XSI_NAMESPACE:
                continue
            items.append((name, expanded_name(uri, local), value))
        return items

    def _xsi_type_value(self, element: Element) -> str | None:
        """The value of the XSI ``type`` attribute on *element*, if any."""
        for name, value in element.attributes.items():
            prefix, colon, local = name.partition(":")
            if not colon or local != "type" or prefix == "xmlns":
                continue
            uri = self._attribute_uri(element, prefix)
            if uri == XSI_NAMESPACE or (uri is None and prefix == "xsi"):
                return value
        return None

    def _xsi_type_key(self, type_name: str, element: Element) -> str:
        """Resolve the QName *value* of ``xsi:type`` to a type key."""
        if not self._namespaced:
            # Pre-namespace behavior: strip any prefix, look up locally.
            return type_name.rpartition(":")[2]
        prefix, colon, local = type_name.partition(":")
        bindings = self._bindings(element)
        if not colon:
            return expanded_name(bindings.get("") or None, type_name)
        uri = bindings.get(prefix)
        if uri is None:
            return local
        return expanded_name(uri, local)

    # -- element dispatch ------------------------------------------------------

    def _check_element(
        self,
        element: Element,
        declaration: ElementDeclaration,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        type_definition = declaration.resolved_type()
        override = self._xsi_type_value(element)
        if override is not None:
            type_definition = self._resolve_xsi_type(
                override, element, type_definition, path, errors
            )
        if isinstance(type_definition, ComplexType) and type_definition.abstract:
            errors.append(
                ValidationError(
                    f"type '{type_definition.name}' of element "
                    f"'{declaration.key}' is abstract",
                    path=path,
                )
            )
        if declaration.fixed is not None:
            text = element.text_content
            if text != declaration.fixed:
                errors.append(
                    ValidationError(
                        f"element '{declaration.key}' must have the fixed "
                        f"value {declaration.fixed!r}, found {text!r}",
                        path=path,
                    )
                )
        if isinstance(type_definition, SimpleType):
            self._check_simple_element(element, type_definition, path, errors)
            return
        self._check_complex_element(element, type_definition, path, errors)

    def _resolve_xsi_type(
        self,
        type_name: str,
        element: Element,
        declared: TypeDefinition,
        path: str,
        errors: list[ValidationError],
    ) -> TypeDefinition:
        """``xsi:type`` substitutes a *derived* type for the declared one
        — the instance-document face of "type extension … reflected by
        inheritance" (paper Sect. 3)."""
        key = self._xsi_type_key(type_name, element)
        candidate = self._schema.types.get(key)
        if candidate is None:
            errors.append(
                ValidationError(
                    f"xsi:type names unknown type '{type_name}'", path=path
                )
            )
            return declared
        compatible = (
            declared is ANY_TYPE
            or (
                isinstance(candidate, ComplexType)
                and isinstance(declared, ComplexType)
                and candidate.is_derived_from(declared)
            )
            or (
                isinstance(candidate, SimpleType)
                and isinstance(declared, SimpleType)
                and candidate.is_derived_from(declared)
            )
        )
        if not compatible:
            declared_name = getattr(declared, "name", None) or "<anonymous>"
            errors.append(
                ValidationError(
                    f"xsi:type '{type_name}' is not derived from the "
                    f"declared type '{declared_name}'",
                    path=path,
                )
            )
            return declared
        if isinstance(candidate, ComplexType) and candidate.abstract:
            errors.append(
                ValidationError(
                    f"xsi:type names the abstract type '{type_name}'",
                    path=path,
                )
            )
        return candidate

    def _check_simple_element(
        self,
        element: Element,
        simple_type: SimpleType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        if element.child_elements():
            errors.append(
                ValidationError(
                    f"element <{self._display(element)}> has simple type "
                    f"'{simple_type.name}' but contains child elements",
                    path=path,
                )
            )
            return
        plain_attributes = [
            label if self._namespaced else name
            for name, label, __ in self._attribute_items(element)
        ]
        if plain_attributes:
            errors.append(
                ValidationError(
                    f"element <{self._display(element)}> of simple type may "
                    f"not carry attributes ({', '.join(plain_attributes)})",
                    path=path,
                )
            )
        try:
            simple_type.parse(element.text_content)
        except SimpleTypeError as error:
            errors.append(
                ValidationError(
                    f"content of <{self._display(element)}>: {error.message}",
                    path=path,
                )
            )

    # -- complex types ---------------------------------------------------------------

    def _check_complex_element(
        self,
        element: Element,
        complex_type: ComplexType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        if complex_type is ANY_TYPE:
            return  # the ur-type accepts anything
        self._check_attributes(element, complex_type, path, errors)
        content_type = complex_type.content_type
        child_elements = element.child_elements()
        has_text = any(
            isinstance(node, Text) and node.data.strip()
            for node in element.iter_children()
        )
        if content_type is ContentType.EMPTY:
            if child_elements or has_text:
                errors.append(
                    ValidationError(
                        f"element <{self._display(element)}> must be empty",
                        path=path,
                    )
                )
            return
        if content_type is ContentType.SIMPLE:
            if child_elements:
                errors.append(
                    ValidationError(
                        f"element <{self._display(element)}> has simple "
                        "content but contains child elements",
                        path=path,
                    )
                )
                return
            assert complex_type.simple_content is not None
            try:
                complex_type.simple_content.parse(element.text_content)
            except SimpleTypeError as error:
                errors.append(
                    ValidationError(
                        f"content of <{self._display(element)}>: "
                        f"{error.message}",
                        path=path,
                    )
                )
            return
        if content_type is ContentType.ELEMENT_ONLY and has_text:
            errors.append(
                ValidationError(
                    f"element <{self._display(element)}> has element-only "
                    "content but contains text",
                    path=path,
                )
            )
        self._check_children(element, complex_type, child_elements, path, errors)

    def _check_children(
        self,
        element: Element,
        complex_type: ComplexType,
        child_elements: list[Element],
        path: str,
        errors: list[ValidationError],
    ) -> None:
        dfa = self._schema.content_dfa(complex_type)
        matcher = dfa.matcher()
        for index, child in enumerate(child_elements):
            matched = matcher.step(self._element_key(child))
            if matched is None:
                expected = ", ".join(
                    f"<{key}>" for key in matcher.expected()
                ) or "no further elements"
                errors.append(
                    ValidationError(
                        f"child {index + 1} of <{self._display(element)}> is "
                        f"<{self._display(child)}>; expected {expected}",
                        path=path,
                    )
                )
                return
            child_path = f"{path}/{self._display(child)}[{index}]"
            assert isinstance(matched, ElementDeclaration)
            self._check_element(child, matched, child_path, errors)
        if not matcher.at_accepting_state():
            expected = ", ".join(f"<{key}>" for key in matcher.expected())
            errors.append(
                ValidationError(
                    f"content of <{self._display(element)}> ends too early; "
                    f"expected {expected}",
                    path=path,
                )
            )

    # -- attributes -------------------------------------------------------------------

    def _check_attributes(
        self,
        element: Element,
        complex_type: ComplexType,
        path: str,
        errors: list[ValidationError],
    ) -> None:
        uses = complex_type.effective_attribute_uses()
        present: set[str] = set()
        for name, key, value in self._attribute_items(element):
            present.add(key)
            label = key if self._namespaced else name
            use = uses.get(key)
            if use is None:
                errors.append(
                    ValidationError(
                        f"attribute '{label}' is not declared on "
                        f"<{self._display(element)}>",
                        path=path,
                    )
                )
                continue
            if use.fixed is not None and value != use.fixed:
                errors.append(
                    ValidationError(
                        f"attribute '{label}' must have the fixed value "
                        f"{use.fixed!r}, found {value!r}",
                        path=path,
                    )
                )
                continue
            try:
                use.declaration.resolved_type().parse(value)
            except SimpleTypeError as error:
                errors.append(
                    ValidationError(
                        f"attribute '{label}' of <{self._display(element)}>: "
                        f"{error.message}",
                        path=path,
                    )
                )
        for key, use in uses.items():
            if use.required and key not in present:
                errors.append(
                    ValidationError(
                        f"required attribute '{key}' missing on "
                        f"<{self._display(element)}>",
                        path=path,
                    )
                )


def validate(
    document: Document, schema: Schema
) -> list[ValidationError]:
    """One-shot validation convenience."""
    return SchemaValidator(schema).validate(document)


def type_of_element(
    schema: Schema, element_name: str
) -> TypeDefinition:
    """The resolved type of a global element (helper for tooling)."""
    return schema.element(element_name).resolved_type()

"""Value-space parsing for the XML Schema primitive types.

Each ``parse_*`` function maps a whitespace-normalized literal to a Python
value, raising :class:`~repro.errors.SimpleTypeError` when the literal is
outside the type's lexical space.  Canonical-form writers (``canonical_*``)
support round-tripping and enumeration comparison.
"""

from __future__ import annotations

import datetime
import decimal
import re
from dataclasses import dataclass

from repro.errors import SimpleTypeError
from repro.xml.chars import is_name, is_ncname, is_nmtoken

_BOOLEAN_VALUES = {"true": True, "1": True, "false": False, "0": False}

_DECIMAL_RE = re.compile(r"[+-]?(\d+(\.\d*)?|\.\d+)\Z")
_INTEGER_RE = re.compile(r"[+-]?\d+\Z")
_FLOAT_RE = re.compile(
    r"([+-]?(\d+(\.\d*)?|\.\d+)([eE][+-]?\d+)?|[+-]?INF|NaN)\Z"
)
_DATE_RE = re.compile(
    r"(?P<sign>-?)(?P<year>\d{4,})-(?P<month>\d{2})-(?P<day>\d{2})"
    r"(?P<tz>Z|[+-]\d{2}:\d{2})?\Z"
)
_TIME_RE = re.compile(
    r"(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})(?P<fraction>\.\d+)?"
    r"(?P<tz>Z|[+-]\d{2}:\d{2})?\Z"
)
_DATETIME_RE = re.compile(
    r"(?P<sign>-?)(?P<year>\d{4,})-(?P<month>\d{2})-(?P<day>\d{2})"
    r"T(?P<hour>\d{2}):(?P<minute>\d{2}):(?P<second>\d{2})(?P<fraction>\.\d+)?"
    r"(?P<tz>Z|[+-]\d{2}:\d{2})?\Z"
)
_GYEAR_RE = re.compile(r"-?\d{4,}(Z|[+-]\d{2}:\d{2})?\Z")
_GYEARMONTH_RE = re.compile(r"-?\d{4,}-\d{2}(Z|[+-]\d{2}:\d{2})?\Z")
_GMONTHDAY_RE = re.compile(r"--\d{2}-\d{2}(Z|[+-]\d{2}:\d{2})?\Z")
_GDAY_RE = re.compile(r"---\d{2}(Z|[+-]\d{2}:\d{2})?\Z")
_GMONTH_RE = re.compile(r"--\d{2}(Z|[+-]\d{2}:\d{2})?\Z")
_DURATION_RE = re.compile(
    r"(?P<sign>-?)P"
    r"(?:(?P<years>\d+)Y)?(?:(?P<months>\d+)M)?(?:(?P<days>\d+)D)?"
    r"(?:T(?:(?P<hours>\d+)H)?(?:(?P<minutes>\d+)M)?"
    r"(?:(?P<seconds>\d+(\.\d+)?)S)?)?\Z"
)
_HEX_RE = re.compile(r"([0-9a-fA-F]{2})*\Z")
_BASE64_RE = re.compile(r"[A-Za-z0-9+/]*={0,2}\Z")
_LANGUAGE_RE = re.compile(r"[a-zA-Z]{1,8}(-[a-zA-Z0-9]{1,8})*\Z")


@dataclass(frozen=True, order=True)
class Duration:
    """An ``xsd:duration`` value, kept in its two partial components.

    Durations only partially order in general; this model compares by
    (months, seconds), which is exact for values used in facets as long
    as both components move in the same direction — sufficient here.
    """

    months: int = 0
    seconds: decimal.Decimal = decimal.Decimal(0)

    def __str__(self) -> str:
        if self.months == 0 and self.seconds == 0:
            return "PT0S"
        sign = "-" if (self.months < 0 or self.seconds < 0) else ""
        months = abs(self.months)
        seconds = abs(self.seconds)
        pieces = [sign, "P"]
        years, months = divmod(months, 12)
        if years:
            pieces.append(f"{years}Y")
        if months:
            pieces.append(f"{months}M")
        days, rest = divmod(seconds, 86400)
        hours, rest = divmod(rest, 3600)
        minutes, rest = divmod(rest, 60)
        if days:
            pieces.append(f"{int(days)}D")
        if hours or minutes or rest:
            pieces.append("T")
            if hours:
                pieces.append(f"{int(hours)}H")
            if minutes:
                pieces.append(f"{int(minutes)}M")
            if rest:
                pieces.append(f"{rest.normalize()}S")
        return "".join(pieces)


def _fail(type_name: str, literal: str) -> SimpleTypeError:
    return SimpleTypeError(
        f"'{literal}' is not a valid {type_name} literal"
    )


def parse_string(literal: str) -> str:
    return literal


def parse_boolean(literal: str) -> bool:
    if literal not in _BOOLEAN_VALUES:
        raise _fail("boolean", literal)
    return _BOOLEAN_VALUES[literal]


def parse_decimal(literal: str) -> decimal.Decimal:
    if not _DECIMAL_RE.match(literal):
        raise _fail("decimal", literal)
    return decimal.Decimal(literal)


def parse_integer(literal: str) -> int:
    if not _INTEGER_RE.match(literal):
        raise _fail("integer", literal)
    return int(literal)


def parse_float(literal: str) -> float:
    if not _FLOAT_RE.match(literal):
        raise _fail("float", literal)
    if literal == "INF":
        return float("inf")
    if literal == "-INF":
        return float("-inf")
    if literal == "NaN":
        return float("nan")
    return float(literal)


def _parse_timezone(token: str | None) -> datetime.timezone | None:
    if token is None:
        return None
    if token == "Z":
        return datetime.timezone.utc
    sign = 1 if token[0] == "+" else -1
    hours = int(token[1:3])
    minutes = int(token[4:6])
    if hours > 14 or minutes > 59:
        raise SimpleTypeError(f"'{token}' is not a valid timezone offset")
    return datetime.timezone(sign * datetime.timedelta(hours=hours, minutes=minutes))


def parse_date(literal: str) -> datetime.date:
    match = _DATE_RE.match(literal)
    if not match or match.group("sign"):
        raise _fail("date", literal)
    _parse_timezone(match.group("tz"))  # check form; date value drops it
    try:
        return datetime.date(
            int(match.group("year")),
            int(match.group("month")),
            int(match.group("day")),
        )
    except ValueError:
        raise _fail("date", literal)


def parse_time(literal: str) -> datetime.time:
    match = _TIME_RE.match(literal)
    if not match:
        raise _fail("time", literal)
    fraction = match.group("fraction") or ""
    microsecond = int(round(float("0" + fraction) * 1_000_000)) if fraction else 0
    try:
        return datetime.time(
            int(match.group("hour")),
            int(match.group("minute")),
            int(match.group("second")),
            microsecond,
            tzinfo=_parse_timezone(match.group("tz")),
        )
    except ValueError:
        raise _fail("time", literal)


def parse_datetime(literal: str) -> datetime.datetime:
    match = _DATETIME_RE.match(literal)
    if not match or match.group("sign"):
        raise _fail("dateTime", literal)
    fraction = match.group("fraction") or ""
    microsecond = int(round(float("0" + fraction) * 1_000_000)) if fraction else 0
    try:
        return datetime.datetime(
            int(match.group("year")),
            int(match.group("month")),
            int(match.group("day")),
            int(match.group("hour")),
            int(match.group("minute")),
            int(match.group("second")),
            microsecond,
            tzinfo=_parse_timezone(match.group("tz")),
        )
    except ValueError:
        raise _fail("dateTime", literal)


def parse_duration(literal: str) -> Duration:
    match = _DURATION_RE.match(literal)
    if not match or literal.endswith("P") or literal.endswith("T"):
        raise _fail("duration", literal)
    fields = match.groupdict()
    if not any(fields[name] for name in
               ("years", "months", "days", "hours", "minutes", "seconds")):
        raise _fail("duration", literal)
    sign = -1 if fields["sign"] else 1
    months = sign * (int(fields["years"] or 0) * 12 + int(fields["months"] or 0))
    seconds = sign * (
        decimal.Decimal(fields["days"] or 0) * 86400
        + decimal.Decimal(fields["hours"] or 0) * 3600
        + decimal.Decimal(fields["minutes"] or 0) * 60
        + decimal.Decimal(fields["seconds"] or 0)
    )
    return Duration(months, seconds)


def parse_hex_binary(literal: str) -> bytes:
    if not _HEX_RE.match(literal):
        raise _fail("hexBinary", literal)
    return bytes.fromhex(literal)


def parse_base64_binary(literal: str) -> bytes:
    import base64

    compact = literal.replace(" ", "")
    if not _BASE64_RE.match(compact) or len(compact) % 4:
        raise _fail("base64Binary", literal)
    try:
        return base64.b64decode(compact, validate=True)
    except ValueError:
        raise _fail("base64Binary", literal)


def parse_any_uri(literal: str) -> str:
    # Per the spec the anyURI lexical space is extremely permissive; reject
    # only characters that can never appear in a URI reference.
    if any(char in literal for char in " <>{}|\\^`\"") and "%20" not in literal:
        for char in " <>{}|\\^`\"":
            if char in literal:
                raise _fail("anyURI", literal)
    return literal


def parse_qname_literal(literal: str) -> str:
    prefix, colon, local = literal.partition(":")
    if colon:
        if not (is_ncname(prefix) and is_ncname(local)):
            raise _fail("QName", literal)
    elif not is_ncname(literal):
        raise _fail("QName", literal)
    return literal


def parse_name(literal: str) -> str:
    if not is_name(literal):
        raise _fail("Name", literal)
    return literal


def parse_ncname(literal: str) -> str:
    if not is_ncname(literal):
        raise _fail("NCName", literal)
    return literal


def parse_nmtoken(literal: str) -> str:
    if not is_nmtoken(literal):
        raise _fail("NMTOKEN", literal)
    return literal


def parse_language(literal: str) -> str:
    if not _LANGUAGE_RE.match(literal):
        raise _fail("language", literal)
    return literal


def parse_gregorian(kind: str, literal: str) -> str:
    """gYear/gYearMonth/gMonthDay/gDay/gMonth — validated lexically."""
    patterns = {
        "gYear": _GYEAR_RE,
        "gYearMonth": _GYEARMONTH_RE,
        "gMonthDay": _GMONTHDAY_RE,
        "gDay": _GDAY_RE,
        "gMonth": _GMONTH_RE,
    }
    if not patterns[kind].match(literal):
        raise _fail(kind, literal)
    return literal


def canonical_boolean(value: bool) -> str:
    return "true" if value else "false"


def canonical_decimal(value: decimal.Decimal) -> str:
    text = format(value.normalize(), "f")
    return text if "." in text else text + ".0"


def canonical_integer(value: int) -> str:
    return str(value)


def canonical_float(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "INF"
    if value == float("-inf"):
        return "-INF"
    return repr(value).upper().replace("+", "")

"""Segment compilation: checked templates → precomputed markup runs.

The paper puts validation at *preparation time*; this module moves the
rest of the serving cost there too.  A checked template is partitioned
into three kinds of segments:

* **static strings** — markup the checker already proved: start/end
  tags, defaulted/fixed attributes, literal text.  They are
  name-validated, escaped, and concatenated *once*, at compile time;
* **runs** — dynamic character data (a text hole, or simple content /
  an attribute value mixing literals with holes).  A run remembers the
  simple type and fixed-value constraint of its slot so render-time
  validation matches the typed constructors byte for byte;
* **element holes** — typed subtrees passed in by the caller,
  serialized through :func:`repro.dom.serialize.write_node` (valid by
  the V-DOM invariant, so no re-validation).

``compile_segments`` returns ``None`` whenever any construct falls
outside what the partitioner proves equivalent to the DOM route
(anyType oddities, element-level fixed values); callers then fall back
to ``serialize(render(...))``, so the fast path can never change
output — only speed.
"""

from __future__ import annotations

from typing import Any, Callable

from repro import obs
from repro.errors import SimpleTypeError, VdomTypeError
from repro.xsd.components import ANY_TYPE, ComplexType, ContentType
from repro.xsd.simple import SimpleType
from repro.core.vdom import lexicalize
from repro.xml.entities import escape_attribute, escape_text
from repro.dom.serialize import write_node
from repro.pxml.ast import Hole, TemplateElement, TemplateText
from repro.pxml.checker import CheckedTemplate, HoleSpec


class _Unsupported(Exception):
    """Internal: this template shape must use the DOM fallback.

    Always raised with a short reason string — it becomes the label on
    the ``pxml.segments`` fallback counter, so a perf regression caused
    by templates quietly leaving the fast path is attributable.
    """


#: A run part: ``("lit", text)`` or ``("hole", name)``.
RunPart = tuple[str, str]


def _resolve_slot(
    owner: type, slot: Any
) -> tuple[SimpleType | None, str | None, str]:
    """``(simple_type, fixed, context)`` constraining a run's value.

    ``slot`` is ``"content"`` (element character data) or
    ``("attr", xml_name)``.  Resolved from the *live* class so cache
    rehydration never trusts pickled type objects.
    """
    tag = owner._DECLARATION.name
    type_definition = owner._TYPE
    if slot == "content":
        context = f"content of <{tag}>"
        if isinstance(type_definition, SimpleType):
            return type_definition, None, context
        if (
            isinstance(type_definition, ComplexType)
            and type_definition.content_type is ContentType.SIMPLE
        ):
            return type_definition.simple_content, None, context
        return None, None, context  # mixed/anyType text: any string goes
    kind, xml_name = slot
    assert kind == "attr"
    context = f"attribute '{xml_name}' of <{tag}>"
    if not isinstance(type_definition, ComplexType):
        return None, None, context
    use = type_definition.effective_attribute_uses().get(xml_name)
    if use is None:
        return None, None, context
    return use.declaration.resolved_type(), use.fixed, context


def _make_checker(
    simple_type: SimpleType | None, fixed: str | None, context: str
) -> Callable[[str], None] | None:
    """Render-time validator matching the typed constructors' errors."""
    if simple_type is None and fixed is None:
        return None

    def check(value: str) -> None:
        if fixed is not None and value != fixed:
            raise VdomTypeError(
                f"{context} must have the fixed value {fixed!r}"
            )
        if simple_type is not None:
            try:
                simple_type.parse(value)
            except SimpleTypeError as error:
                raise VdomTypeError(f"{context}: {error.message}")

    return check


class Run:
    """One dynamic character-data slot with its validation closure."""

    __slots__ = ("parts", "escape", "owner", "slot", "checker")

    def __init__(
        self, parts: tuple[RunPart, ...], escape: str, owner: type, slot: Any
    ):
        self.parts = parts
        self.escape = escape  # 'text' | 'attr'
        self.owner = owner
        self.slot = slot
        self.checker = _make_checker(*_resolve_slot(owner, slot))

    def value(self, values: dict[str, Any]) -> str:
        parts = self.parts
        if len(parts) == 1:
            kind, payload = parts[0]
            return payload if kind == "lit" else lexicalize(values[payload])
        return "".join(
            payload if kind == "lit" else lexicalize(values[payload])
            for kind, payload in parts
        )

    def emit(self, values: dict[str, Any], check: bool) -> str:
        literal = self.value(values)
        if check and self.checker is not None:
            self.checker(literal)
        if self.escape == "text":
            return escape_text(literal)
        return escape_attribute(literal)


class ElementHole:
    """A typed-subtree slot, serialized via the iterative fast path."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class SegmentProgram:
    """The compiled segment list plus the hole registry."""

    __slots__ = ("segments", "hole_specs")

    def __init__(
        self, segments: list[Any], hole_specs: dict[str, HoleSpec]
    ):
        self.segments = segments
        self.hole_specs = hole_specs

    @property
    def hole_names(self) -> list[str]:
        return sorted(self.hole_specs)

    @property
    def element_hole_names(self) -> list[str]:
        return sorted(
            name
            for name, spec in self.hole_specs.items()
            if spec.kind == "element"
        )

    def fill(self, values: dict[str, Any], check: bool) -> list[str]:
        """Evaluate every dynamic segment; return the complete piece list.

        Static segments appear by reference (no copy), runs are emitted
        (validated when *check*), element holes are serialized through
        the iterative fast path.  The list exists only if every hole
        value passed — which is what lets a caller stream pieces to a
        socket one by one without risking a validation failure after
        bytes have already left: ``"".join(fill(...))`` is exactly
        ``render(...)``, and any error raises before the first piece is
        handed out.
        """
        pieces: list[str] = []
        for segment in self.segments:
            if type(segment) is str:
                pieces.append(segment)
            elif type(segment) is ElementHole:
                write_node(values[segment.name], pieces)
            else:
                pieces.append(segment.emit(values, check))
        return pieces

    def render(self, values: dict[str, Any], check: bool) -> str:
        """Interpreted twin of the generated ``render_text`` function."""
        return "".join(self.fill(values, check))

    def static_ratio(self) -> float:
        """Fraction of segments precomputed (for stats/inspection)."""
        if not self.segments:
            return 1.0
        static = sum(1 for s in self.segments if type(s) is str)
        return static / len(self.segments)


def compile_segments(checked: CheckedTemplate) -> SegmentProgram | None:
    """Partition *checked* into segments, or ``None`` when unsupported.

    Only :class:`_Unsupported` — the partitioner's own "this shape stays
    on the DOM route" signal — is caught, and every such fallback is
    counted with its reason (``pxml.segments{outcome=fallback,...}``).
    Anything else is a real compiler bug and propagates: a blanket
    ``except Exception`` here once turned those into silent DOM-route
    perf regressions.
    """
    try:
        builder = _SegmentBuilder(checked)
        builder.element(checked.root)
    except _Unsupported as unsupported:
        obs.count(
            "pxml.segments",
            outcome="fallback",
            reason=str(unsupported) or "unsupported shape",
        )
        return None
    obs.count("pxml.segments", outcome="compiled")
    return SegmentProgram(builder.finish(), dict(checked.holes))


class _SegmentBuilder:
    def __init__(self, checked: CheckedTemplate):
        self._checked = checked
        self._segments: list[Any] = []
        self._buffer: list[str] = []

    # -- assembly -----------------------------------------------------------

    def _lit(self, text: str) -> None:
        self._buffer.append(text)

    def _flush(self) -> None:
        if self._buffer:
            self._segments.append("".join(self._buffer))
            self._buffer.clear()

    def _run(self, parts: list[RunPart], escape: str, owner: type, slot) -> None:
        self._flush()
        self._segments.append(Run(tuple(parts), escape, owner, slot))

    def _hole(self, name: str) -> None:
        self._flush()
        self._segments.append(ElementHole(name))

    def finish(self) -> list[Any]:
        self._flush()
        return self._segments

    # -- the walk -----------------------------------------------------------

    def element(self, node: TemplateElement) -> None:
        cls = self._checked.element_classes.get(id(node))
        if cls is None:  # unchecked child (anyType content)
            raise _Unsupported("unchecked anyType child")
        declaration = cls._DECLARATION
        if declaration.fixed is not None:
            # Element-level fixed values need the full text_content
            # comparison; rare enough to leave on the DOM route.
            raise _Unsupported("element-level fixed value")
        tag = declaration.name
        self._lit("<" + tag)
        self._attributes(node, cls)
        kept = self._kept_children(node)
        if not kept:
            self._lit("/>")
            return
        self._lit(">")
        type_definition = cls._TYPE
        if isinstance(type_definition, SimpleType) or (
            isinstance(type_definition, ComplexType)
            and type_definition.content_type is ContentType.SIMPLE
        ):
            self._simple_content(kept, cls)
        else:
            self._generic_content(kept, cls)
        self._lit("</" + tag + ">")

    def _kept_children(self, node: TemplateElement) -> list[Any]:
        """Children the typed constructors actually materialize."""
        kept: list[Any] = []
        for child in node.children:
            if isinstance(child, TemplateText):
                if child.data.strip() or child.cdata:
                    kept.append(child)
                # pure-whitespace layout text is dropped, as in compiled
                # factory-call code
            else:
                kept.append(child)
        return kept

    def _simple_content(self, kept: list[Any], cls: type) -> None:
        """One run covering the element's whole character data."""
        parts: list[RunPart] = []
        dynamic = False
        for child in kept:
            if isinstance(child, TemplateText):
                parts.append(("lit", child.data))
            elif isinstance(child, Hole):
                spec = self._checked.holes[child.name]
                if spec.kind != "text":
                    raise _Unsupported("element hole in simple content")
                parts.append(("hole", child.name))
                dynamic = True
            else:
                raise _Unsupported("nested element in simple content")
        if not dynamic:
            # Fully static simple content: the checker parsed it already.
            self._lit(
                escape_text("".join(payload for _, payload in parts))
            )
            return
        self._run(parts, "text", cls, "content")

    def _generic_content(self, kept: list[Any], cls: type) -> None:
        for child in kept:
            if isinstance(child, TemplateText):
                self._lit(escape_text(child.data))
            elif isinstance(child, Hole):
                spec = self._checked.holes[child.name]
                if spec.kind == "element":
                    self._hole(child.name)
                else:
                    self._run([("hole", child.name)], "text", cls, "content")
            else:
                self.element(child)

    # -- attributes ---------------------------------------------------------

    def _attributes(self, node: TemplateElement, cls: type) -> None:
        fields = cls._ATTRIBUTE_FIELDS
        # dict assignment mirrors Element.set_attribute: a template value
        # overriding a default keeps the default's position.
        ordered: dict[str, list[RunPart]] = {}
        for field in fields.values():
            xml_name = field.xml_name or field.name
            if field.fixed is not None:
                ordered[xml_name] = [("lit", field.fixed)]
            elif field.default is not None:
                ordered[xml_name] = [("lit", field.default)]
        for attribute in node.attributes:
            field = self._field_for(fields, attribute.name)
            xml_name = field.xml_name or field.name
            parts: list[RunPart] = []
            for part in attribute.parts:
                if isinstance(part, str):
                    parts.append(("lit", part))
                else:
                    parts.append(("hole", part.name))
            ordered[xml_name] = parts
        for xml_name, parts in ordered.items():
            self._lit(f' {xml_name}="')
            if all(kind == "lit" for kind, _ in parts):
                self._lit(
                    escape_attribute(
                        "".join(payload for _, payload in parts)
                    )
                )
            else:
                self._run(parts, "attr", cls, ("attr", xml_name))
            self._lit('"')

    @staticmethod
    def _field_for(fields: dict[str, Any], name: str):
        """Mirror ``TypedElement._attribute_field`` resolution."""
        if name in fields:
            return fields[name]
        for field in fields.values():
            if field.xml_name == name or field.name == name:
                return field
        # Undeclared attribute: render() raises a matching error, use it.
        raise _Unsupported("undeclared template attribute")


# -- cache (de)hydration -------------------------------------------------------


def program_to_record(program: SegmentProgram, binding) -> list[Any]:
    """Reduce segments to picklable data (classes become interface keys)."""
    key_by_class = {cls: key for key, cls in binding.classes.items()}
    record: list[Any] = []
    for segment in program.segments:
        if type(segment) is str:
            record.append(("s", segment))
        elif type(segment) is ElementHole:
            record.append(("h", segment.name))
        else:
            owner_key = key_by_class.get(segment.owner)
            if owner_key is None:
                raise LookupError(
                    "segment owner class is outside the binding"
                )
            record.append(
                ("r", segment.parts, segment.escape, owner_key, segment.slot)
            )
    return record


def program_from_record(
    record: list[Any], binding, hole_specs: dict[str, HoleSpec]
) -> SegmentProgram:
    """Rebuild a program against the *live* binding (raises on staleness)."""
    segments: list[Any] = []
    for entry in record:
        tag = entry[0]
        if tag == "s":
            segments.append(entry[1])
        elif tag == "h":
            segments.append(ElementHole(entry[1]))
        elif tag == "r":
            _, parts, escape, owner_key, slot = entry
            owner = binding.classes[owner_key]  # KeyError -> stale
            if isinstance(slot, list):  # survived a JSON-ish round trip
                slot = tuple(slot)
            segments.append(Run(tuple(map(tuple, parts)), escape, owner, slot))
        else:
            raise LookupError(f"unknown segment record tag {tag!r}")
    return SegmentProgram(segments, hole_specs)


def build_text_namespace(program: SegmentProgram, binding) -> dict[str, Any]:
    """Execution namespace for generated ``render_text`` source."""
    namespace: dict[str, Any] = {
        "_lex": lexicalize,
        "_esc_t": escape_text,
        "_esc_a": escape_attribute,
        "_w": write_node,
        "_b": binding,
        "_hole_specs": program.hole_specs,
    }
    for index, segment in enumerate(program.segments):
        if type(segment) is Run and segment.checker is not None:
            namespace[f"_ck{index}"] = segment.checker
    return namespace

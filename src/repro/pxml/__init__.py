"""P-XML — Parametric XML (paper, Sect. 4).

XML *constructors* are document fragments with ``$variable$`` parameter
holes, written in plain markup instead of nested factory calls — "a more
page oriented programming technique".  The pipeline is the paper's
Fig. 9:

* :mod:`repro.pxml.parser` parses constructor text (an XML fragment
  grammar extended with holes),
* :mod:`repro.pxml.checker` validates it **statically** against the
  schema, typing every hole (the generated preprocessor's job),
* :mod:`repro.pxml.compiler` replaces the constructor by V-DOM factory
  calls — the Fig. 11 output — and compiles them to a render function,
* :mod:`repro.pxml.runtime` is the interpreted alternative (ablation),
* :mod:`repro.pxml.preprocessor` rewrites whole Python modules,
  replacing ``pxml("...")`` call sites by generated builder functions.

A template that passes the static check cannot produce an invalid
document: hole values are type-checked on insertion and text holes are
parsed by the simple type of their position at render time.
"""

from repro.pxml.parser import parse_template
from repro.pxml.checker import CheckedTemplate, check_template
from repro.pxml.compiler import compile_template, compile_text_template
from repro.pxml.segments import SegmentProgram, compile_segments
from repro.pxml.template import Template
from repro.pxml.runtime import render_interpreted, render_text_interpreted
from repro.pxml.preprocessor import preprocess_module

__all__ = [
    "CheckedTemplate",
    "SegmentProgram",
    "Template",
    "check_template",
    "compile_segments",
    "compile_template",
    "compile_text_template",
    "parse_template",
    "preprocess_module",
    "render_interpreted",
    "render_text_interpreted",
]

"""Interpreted template rendering (ablation partner of the compiler).

Walks the checked AST directly, constructing typed elements without any
generated code.  Same output, same guarantees — the benchmarks compare
its per-render cost against the compiled path to quantify what the
paper's preprocessing step buys at runtime.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PxmlStaticError
from repro.core.vdom import TypedElement, lexicalize
from repro.pxml.ast import Hole, TemplateElement, TemplateText
from repro.pxml.checker import CheckedTemplate


def _check_hole_values(checked: CheckedTemplate, values: dict[str, Any]) -> None:
    """Shared render-entry validation: names present, names known, types."""
    missing = [name for name in checked.holes if name not in values]
    if missing:
        raise PxmlStaticError(
            f"missing values for holes: {', '.join(sorted(missing))}"
        )
    unexpected = [name for name in values if name not in checked.holes]
    if unexpected:
        raise PxmlStaticError(
            f"unknown holes: {', '.join(sorted(unexpected))}"
        )
    for name, spec in checked.holes.items():
        spec.accepts(values[name])


def render_interpreted(
    checked: CheckedTemplate, **values: Any
) -> TypedElement:
    """Render *checked* with hole *values* by direct AST interpretation."""
    _check_hole_values(checked, values)
    return _build_element(checked, checked.root, values)


_UNCOMPILED = object()  # sentinel: segments not attempted yet for a template


def render_text_interpreted(checked: CheckedTemplate, **values: Any) -> str:
    """Interpreted twin of the segment-compiled ``render_text``.

    Lazily partitions the checked AST into a :class:`SegmentProgram`
    (memoized on *checked*) and renders it directly to text; templates
    the partitioner declines fall back to building and serializing the
    typed tree, so output is always byte-identical to
    ``serialize(render_interpreted(...))``.
    """
    from repro import obs
    from repro.pxml.segments import compile_segments

    _check_hole_values(checked, values)
    program = checked.__dict__.get("_segment_program", _UNCOMPILED)
    if program is _UNCOMPILED:
        program = compile_segments(checked)
        checked._segment_program = program
    if program is None:
        obs.count("render.route", route="dom", reason="segment fallback")
        from repro.dom.serialize import serialize

        return serialize(_build_element(checked, checked.root, values))
    obs.count("render.route", route="segment")
    return program.render(values, checked.binding.validate_on_mutate)


def _build_element(
    checked: CheckedTemplate,
    node: TemplateElement,
    values: dict[str, Any],
) -> TypedElement:
    cls = checked.class_of(node)
    children: list[Any] = []
    for child in node.children:
        if isinstance(child, TemplateText):
            if child.data.strip() or child.cdata:
                children.append(child.data)
        elif isinstance(child, Hole):
            spec = checked.holes[child.name]
            value = values[child.name]
            if spec.kind == "element":
                children.append(value)
            else:
                children.append(lexicalize(value))
        else:
            children.append(_build_element(checked, child, values))
    attributes: dict[str, Any] = {}
    for attribute in node.attributes:
        pieces: list[str] = []
        for part in attribute.parts:
            if isinstance(part, str):
                pieces.append(part)
            else:
                pieces.append(lexicalize(values[part.name]))
        attributes[attribute.name] = "".join(pieces)
    return cls(*children, **attributes)

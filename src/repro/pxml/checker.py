"""Static validation of P-XML constructors against a V-DOM binding.

This is the reproduction of the paper's generated preprocessor front end
(Fig. 9): every constructor is parsed and "validate[d] against the
underlying document description … statically without having to run the
Java program".  The checker walks the template with the same content
DFAs the validator uses and types every ``$hole$``:

* a hole in an attribute value or in simple content is a **text hole**;
  its value is parsed by that position's simple type at render time,
* a hole in element content is an **element hole**; the checker proves
  that *every* element its annotation admits is acceptable at that
  position ("a variable is allowed only in places where the
  corresponding element is intended for").

Holes annotated with a choice-group name make the walk multi-state (the
set of DFA states reachable under any alternative); a template is only
accepted if every continuation stays valid — the conservative reading
that preserves the paper's guarantee in full.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Any

from repro.errors import PxmlStaticError, SimpleTypeError, VdomStateError
from repro.xsd.components import ANY_TYPE, ComplexType, ContentType, ElementDeclaration
from repro.xsd.simple import SimpleType
from repro.core.vdom import Binding, TypedElement, VdomGroup
from repro.pxml.ast import Hole, TemplateElement, TemplateText
from repro.pxml.parser import parse_template


@dataclass
class HoleSpec:
    """Resolved type of one hole."""

    name: str
    kind: str  # 'element' | 'text'
    #: acceptable classes for element holes (singleton unless group-typed)
    classes: tuple[type, ...] = ()
    #: simple type parsing the value, for text holes (None = free text)
    simple_type: SimpleType | None = None

    def accepts(self, value: Any) -> None:
        """Runtime check applied to a hole value at render time."""
        if self.kind == "element":
            if not isinstance(value, self.classes):
                allowed = ", ".join(cls.__name__ for cls in self.classes)
                raise PxmlStaticError(
                    f"hole '{self.name}' expects an instance of {allowed}, "
                    f"got {type(value).__name__}"
                )
            return
        # Text holes accept anything lexicalizable; the simple type check
        # happens inside the typed constructor.

    def compatible_with(self, other: HoleSpec) -> bool:
        if self.kind != other.kind:
            return False
        if self.kind == "element":
            return set(self.classes) == set(other.classes)
        return True


@dataclass
class CheckedTemplate:
    """A template that passed the static check."""

    binding: Binding
    root: TemplateElement
    root_class: type
    holes: dict[str, HoleSpec] = dataclass_field(default_factory=dict)
    #: id(TemplateElement) -> resolved generated class, for the compiler
    element_classes: dict[int, type] = dataclass_field(default_factory=dict)

    def hole_names(self) -> list[str]:
        return sorted(self.holes)

    def class_of(self, node: TemplateElement) -> type:
        return self.element_classes[id(node)]


def check_template(
    binding: Binding,
    template: TemplateElement | str,
    param_types: dict[str, Any] | None = None,
) -> CheckedTemplate:
    """Statically check *template* against *binding*'s schema."""
    if isinstance(template, str):
        template = parse_template(template)
    return _Checker(binding, param_types or {}).check(template)


class _Checker:
    def __init__(self, binding: Binding, param_types: dict[str, Any]):
        self._binding = binding
        self._param_types = param_types
        self._holes: dict[str, HoleSpec] = {}
        self._element_classes: dict[int, type] = {}

    # -- entry ------------------------------------------------------------------

    def check(self, root: TemplateElement) -> CheckedTemplate:
        root_class = self._class_for_element_name(root.name, root)
        self._check_element(root, root_class)
        return CheckedTemplate(
            self._binding,
            root,
            root_class,
            self._holes,
            self._element_classes,
        )

    def _class_for_element_name(
        self, name: str, node: TemplateElement
    ) -> type:
        candidates = self._binding.declarations_by_name.get(name, [])
        if not candidates:
            raise PxmlStaticError(
                f"element <{name}> is not declared in the schema",
                node.location,
            )
        if len(candidates) > 1:
            raise PxmlStaticError(
                f"element name '{name}' is declared more than once in the "
                "schema; start the template from an unambiguous element",
                node.location,
            )
        return candidates[0]

    # -- hole specs ----------------------------------------------------------------

    def _record(self, spec: HoleSpec, hole: Hole) -> None:
        existing = self._holes.get(spec.name)
        if existing is not None and not existing.compatible_with(spec):
            raise PxmlStaticError(
                f"hole '{spec.name}' is used with conflicting types",
                hole.location,
            )
        if existing is None:
            self._holes[spec.name] = spec

    def _annotation_of(self, hole: Hole) -> Any:
        if hole.name in self._param_types:
            return self._param_types[hole.name]
        return hole.annotation

    def _resolve_element_annotation(
        self, annotation: Any, hole: Hole
    ) -> tuple[type, ...] | None:
        """Classes admitted by an element/group annotation, or None."""
        if isinstance(annotation, type):
            if issubclass(annotation, TypedElement):
                return (annotation,)
            if issubclass(annotation, VdomGroup):
                return self._group_members(annotation)
            return None
        if not isinstance(annotation, str) or annotation == "text":
            return None
        candidates = self._binding.declarations_by_name.get(annotation)
        if candidates:
            if len(candidates) > 1:
                raise PxmlStaticError(
                    f"annotation '{annotation}' on hole '{hole.name}' is "
                    "ambiguous (several declarations share the name)",
                    hole.location,
                )
            return (candidates[0],)
        # Try a generated class name (element or group marker).  Only the
        # "no such class" signal means "not an element annotation" — a
        # blanket except here used to swallow real lookup bugs too.
        try:
            cls = self._binding.class_named(annotation)
        except VdomStateError:
            return None
        if issubclass(cls, TypedElement):
            return (cls,)
        if issubclass(cls, VdomGroup):
            return self._group_members(cls)
        return None

    def _group_members(self, group_class: type) -> tuple[type, ...]:
        members = tuple(
            cls
            for cls in self._binding.classes.values()
            if isinstance(cls, type)
            and issubclass(cls, TypedElement)
            and issubclass(cls, group_class)
            and not cls._DECLARATION.abstract
        )
        if not members:
            raise PxmlStaticError(
                f"choice group {group_class.__name__} has no concrete members"
            )
        return members

    # -- element walk ------------------------------------------------------------------

    def _check_element(self, node: TemplateElement, cls: type) -> None:
        self._element_classes[id(node)] = cls
        declaration: ElementDeclaration = cls._DECLARATION
        if declaration.abstract:
            raise PxmlStaticError(
                f"element '{declaration.name}' is abstract and cannot be "
                "constructed",
                node.location,
            )
        type_definition = cls._TYPE
        if isinstance(type_definition, ComplexType) and type_definition.abstract:
            raise PxmlStaticError(
                f"type '{type_definition.name}' of <{declaration.name}> is "
                "abstract",
                node.location,
            )
        if isinstance(type_definition, SimpleType):
            if node.attributes:
                raise PxmlStaticError(
                    f"<{node.name}> has a simple type and may not carry "
                    f"attributes ('{node.attributes[0].name}' is not "
                    "declared)",
                    node.attributes[0].location,
                )
            self._check_simple_element(node, type_definition)
            return
        if type_definition is ANY_TYPE:
            self._check_anytype_element(node)
            return
        assert isinstance(type_definition, ComplexType)
        self._check_attributes(node, type_definition)
        content_type = type_definition.content_type
        if content_type is ContentType.EMPTY:
            self._check_empty(node)
            return
        if content_type is ContentType.SIMPLE:
            assert type_definition.simple_content is not None
            self._check_simple_element(node, type_definition.simple_content)
            return
        self._check_children(
            node, type_definition, mixed=content_type is ContentType.MIXED
        )

    def _check_empty(self, node: TemplateElement) -> None:
        for child in node.children:
            if isinstance(child, TemplateText) and not child.data.strip():
                continue
            raise PxmlStaticError(
                f"<{node.name}> must be empty",
                getattr(child, "location", node.location),
            )

    def _check_anytype_element(self, node: TemplateElement) -> None:
        """anyType content: recurse only for declared names; holes need
        explicit annotations."""
        for child in node.children:
            if isinstance(child, TemplateElement):
                candidates = self._binding.declarations_by_name.get(child.name)
                if candidates and len(candidates) == 1:
                    self._check_element(child, candidates[0])
            elif isinstance(child, Hole):
                annotation = self._annotation_of(child)
                classes = self._resolve_element_annotation(annotation, child)
                if classes:
                    self._record(
                        HoleSpec(child.name, "element", classes), child
                    )
                else:
                    self._record(HoleSpec(child.name, "text"), child)

    def _check_simple_element(
        self, node: TemplateElement, simple_type: SimpleType
    ) -> None:
        static_parts: list[str] = []
        has_hole = False
        for child in node.children:
            if isinstance(child, TemplateText):
                static_parts.append(child.data)
            elif isinstance(child, Hole):
                has_hole = True
                annotation = self._annotation_of(child)
                if annotation not in (None, "text"):
                    raise PxmlStaticError(
                        f"hole '{child.name}' sits in simple content and "
                        "must be text",
                        child.location,
                    )
                self._record(
                    HoleSpec(child.name, "text", simple_type=simple_type),
                    child,
                )
            else:
                raise PxmlStaticError(
                    f"<{node.name}> has simple content and may not contain "
                    f"<{child.name}>",
                    child.location,
                )
        if not has_hole:
            literal = "".join(static_parts)
            try:
                simple_type.parse(literal)
            except SimpleTypeError as error:
                raise PxmlStaticError(
                    f"content of <{node.name}>: {error.message}",
                    node.location,
                )

    # -- attributes ----------------------------------------------------------------------

    def _check_attributes(
        self, node: TemplateElement, complex_type: ComplexType
    ) -> None:
        uses = complex_type.effective_attribute_uses()
        present: set[str] = set()
        for attribute in node.attributes:
            use = uses.get(attribute.name)
            if use is None:
                raise PxmlStaticError(
                    f"attribute '{attribute.name}' is not declared on "
                    f"<{node.name}>",
                    attribute.location,
                )
            present.add(attribute.name)
            attr_type = use.declaration.resolved_type()
            if attribute.is_static():
                value = attribute.static_value()
                if use.fixed is not None and value != use.fixed:
                    raise PxmlStaticError(
                        f"attribute '{attribute.name}' must have the fixed "
                        f"value {use.fixed!r}",
                        attribute.location,
                    )
                try:
                    attr_type.parse(value)
                except SimpleTypeError as error:
                    raise PxmlStaticError(
                        f"attribute '{attribute.name}' of <{node.name}>: "
                        f"{error.message}",
                        attribute.location,
                    )
            else:
                for part in attribute.parts:
                    if isinstance(part, Hole):
                        annotation = self._annotation_of(part)
                        if annotation not in (None, "text"):
                            raise PxmlStaticError(
                                f"hole '{part.name}' sits in an attribute "
                                "value and must be text",
                                part.location,
                            )
                        self._record(
                            HoleSpec(part.name, "text", simple_type=attr_type),
                            part,
                        )
        for name, use in uses.items():
            if use.required and name not in present:
                raise PxmlStaticError(
                    f"required attribute '{name}' missing on <{node.name}>",
                    node.location,
                )

    # -- children ----------------------------------------------------------------------------

    def _check_children(
        self, node: TemplateElement, complex_type: ComplexType, mixed: bool
    ) -> None:
        dfa = self._binding.schema.content_dfa(complex_type)
        states: set[int] = {dfa.start_state}

        def expected_in(current: set[int]) -> str:
            names = sorted({key for s in current for key in dfa.transitions[s]})
            return ", ".join(f"<{k}>" for k in names) or "nothing"

        def step_all(
            current: set[int], name: str, location
        ) -> tuple[set[int], list[ElementDeclaration]]:
            """Advance every state on *name*; all must succeed (soundness)."""
            payloads: list[ElementDeclaration] = []
            next_states: set[int] = set()
            for state in current:
                entry = dfa.transitions[state].get(name)
                if entry is None:
                    raise PxmlStaticError(
                        f"<{name}> is not allowed here inside <{node.name}>; "
                        f"expected {expected_in(current)}",
                        location,
                    )
                target, payload = entry
                next_states.add(target)
                payloads.append(payload)
            return next_states, payloads

        for child in node.children:
            if isinstance(child, TemplateText):
                if child.data.strip() and not mixed:
                    raise PxmlStaticError(
                        f"<{node.name}> has element-only content and may "
                        "not contain text",
                        child.location,
                    )
                continue
            if isinstance(child, TemplateElement):
                states, payloads = step_all(states, child.name, child.location)
                child_classes = {
                    self._binding.class_by_declaration.get(id(payload))
                    for payload in payloads
                }
                child_classes.discard(None)
                if len(child_classes) != 1:
                    raise PxmlStaticError(
                        f"<{child.name}> resolves to more than one "
                        "declaration here; restructure the template",
                        child.location,
                    )
                self._check_element(child, child_classes.pop())
                continue
            # A hole in element content.
            annotation = self._annotation_of(child)
            classes = self._resolve_element_annotation(annotation, child)
            if classes is None and annotation in (None, "text"):
                if annotation == "text":
                    if not mixed:
                        raise PxmlStaticError(
                            f"text hole '{child.name}' is not allowed in "
                            f"element-only content of <{node.name}>",
                            child.location,
                        )
                    self._record(HoleSpec(child.name, "text"), child)
                    continue
                if mixed:
                    raise PxmlStaticError(
                        f"hole '{child.name}' sits in mixed content and "
                        f"could be text or an element; annotate it as "
                        f"${child.name}:text$ or ${child.name}:<element>$",
                        child.location,
                    )
                classes = self._infer_element(node, child, dfa, states)
            if classes is None:
                raise PxmlStaticError(
                    f"annotation '{annotation}' on hole '{child.name}' "
                    "names no element, group, or 'text'",
                    child.location,
                )
            # Each alternative must be acceptable from the *current*
            # states; the walk continues from the union of their targets.
            union_states: set[int] = set()
            for cls in classes:
                targets, payloads = step_all(
                    states, cls._DECLARATION.name, child.location
                )
                union_states |= targets
                for payload in payloads:
                    expected_cls = self._binding.class_by_declaration.get(
                        id(payload)
                    )
                    if (
                        expected_cls is not None
                        and expected_cls is not cls
                        and not issubclass(cls, expected_cls)
                    ):
                        raise PxmlStaticError(
                            f"hole '{child.name}' would insert a "
                            f"<{payload.name}> built for a different "
                            "declaration of that name",
                            child.location,
                        )
            states = union_states
            self._record(HoleSpec(child.name, "element", tuple(classes)), child)
        if not all(state in dfa.accepting for state in states):
            expected = sorted(
                {key for s in states for key in dfa.transitions[s]}
            )
            shown = ", ".join(f"<{k}>" for k in expected)
            raise PxmlStaticError(
                f"content of <{node.name}> is incomplete; expected {shown}",
                node.location,
            )

    def _infer_element(
        self, node, hole, dfa, states: set[int]
    ) -> tuple[type, ...]:
        """Infer the single acceptable element for an unannotated hole."""
        per_state = [set(dfa.transitions[s]) for s in states]
        common = set.intersection(*per_state) if per_state else set()
        if len(common) != 1:
            options = ", ".join(sorted(str(n) for n in common)) or "none"
            raise PxmlStaticError(
                f"hole '{hole.name}' is ambiguous here (acceptable elements: "
                f"{options}); annotate it as $"
                f"{hole.name}:<element>$ or ${hole.name}:text$",
                hole.location,
            )
        name = common.pop()
        candidates = self._binding.declarations_by_name.get(name, [])
        if len(candidates) != 1:
            raise PxmlStaticError(
                f"hole '{hole.name}': element name '{name}' is declared "
                "more than once; annotate explicitly",
                hole.location,
            )
        return (candidates[0],)

"""AST for P-XML constructors: XML fragments with parameter holes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import Location


@dataclass
class Hole:
    """``$name$`` or ``$name:annotation$``.

    The annotation names what the variable holds: ``text`` for character
    data, an element name, or a choice-group name.  Unannotated holes are
    inferred by the checker from their position when unambiguous — the
    Python stand-in for the paper's reliance on host-language variable
    declarations.
    """

    name: str
    annotation: str | None = None
    location: Location = field(default_factory=Location)

    def __str__(self) -> str:
        if self.annotation:
            return f"${self.name}:{self.annotation}$"
        return f"${self.name}$"


@dataclass
class TemplateText:
    """Literal character data between holes/elements."""

    data: str
    cdata: bool = False
    location: Location = field(default_factory=Location)


#: A part of an attribute value: literal text or a hole.
AttrPart = str | Hole


@dataclass
class TemplateAttribute:
    """One attribute; its value is a sequence of literals and holes."""

    name: str
    parts: list[AttrPart]
    location: Location = field(default_factory=Location)

    def is_static(self) -> bool:
        return all(isinstance(part, str) for part in self.parts)

    def static_value(self) -> str:
        assert self.is_static()
        return "".join(part for part in self.parts if isinstance(part, str))


@dataclass
class TemplateElement:
    """An element constructor node."""

    name: str
    attributes: list[TemplateAttribute] = field(default_factory=list)
    children: list["TemplateNode"] = field(default_factory=list)
    location: Location = field(default_factory=Location)

    def holes(self) -> list[Hole]:
        """Every hole in this subtree, document order."""
        found: list[Hole] = []
        for attribute in self.attributes:
            found.extend(p for p in attribute.parts if isinstance(p, Hole))
        for child in self.children:
            if isinstance(child, Hole):
                found.append(child)
            elif isinstance(child, TemplateElement):
                found.extend(child.holes())
        return found


TemplateNode = TemplateElement | TemplateText | Hole

"""Parser for P-XML constructor text.

The grammar is the XML element grammar extended with holes:

* ``$name$`` / ``$name:annotation$`` in element content,
* the same inside attribute values,
* ``$$`` escapes a literal dollar sign.

Entity references, CDATA sections, and comments work as in XML.
Comments are dropped (they are developer notes in templates).
"""

from __future__ import annotations

from repro.errors import PxmlSyntaxError, XmlSyntaxError
from repro.xml.chars import is_xml_char
from repro.xml.entities import resolve_reference
from repro.xml.reader import Reader
from repro.pxml.ast import (
    AttrPart,
    Hole,
    TemplateAttribute,
    TemplateElement,
    TemplateText,
)


def parse_template(source: str, origin: str | None = None) -> TemplateElement:
    """Parse one XML constructor; returns its root element."""
    parser = _TemplateParser(source, origin)
    root = parser.parse()
    return root


class _TemplateParser:
    def __init__(self, source: str, origin: str | None):
        self._reader = Reader(source, origin)

    def parse(self) -> TemplateElement:
        reader = self._reader
        reader.skip_space()
        if not reader.looking_at("<"):
            raise PxmlSyntaxError(
                "an XML constructor must start with an element",
                reader.location(),
            )
        try:
            root = self._parse_element()
        except XmlSyntaxError as error:
            raise PxmlSyntaxError(error.message, error.location)
        reader.skip_space()
        if not reader.at_end():
            raise PxmlSyntaxError(
                f"trailing content after the constructor: {reader.peek(20)!r}",
                reader.location(),
            )
        return root

    # -- elements ----------------------------------------------------------------

    def _parse_element(self) -> TemplateElement:
        reader = self._reader
        location = reader.location()
        reader.expect("<", "to open a start tag")
        name = reader.read_name("in a start tag")
        element = TemplateElement(name, location=location)
        seen: set[str] = set()
        while True:
            had_space = reader.skip_space()
            if reader.looking_at("/>"):
                reader.advance(2)
                return element
            if reader.looking_at(">"):
                reader.advance(1)
                break
            if reader.at_end():
                raise PxmlSyntaxError(f"unterminated start tag <{name}>", location)
            if not had_space:
                raise PxmlSyntaxError(
                    "expected white space between attributes", reader.location()
                )
            attribute = self._parse_attribute()
            if attribute.name in seen:
                raise PxmlSyntaxError(
                    f"duplicate attribute '{attribute.name}' on <{name}>",
                    attribute.location,
                )
            seen.add(attribute.name)
            element.attributes.append(attribute)
        self._parse_content(element)
        return element

    def _parse_attribute(self) -> TemplateAttribute:
        reader = self._reader
        location = reader.location()
        name = reader.read_name("as an attribute name")
        reader.skip_space()
        reader.expect("=", f"after attribute name '{name}'")
        reader.skip_space()
        quote = reader.peek()
        if quote not in ("'", '"'):
            raise PxmlSyntaxError(
                f"expected a quoted value for '{name}'", reader.location()
            )
        reader.advance(1)
        parts: list[AttrPart] = []
        literal: list[str] = []

        def flush() -> None:
            if literal:
                parts.append("".join(literal))
                literal.clear()

        while True:
            char = reader.peek()
            if not char:
                raise PxmlSyntaxError(
                    f"unterminated value for attribute '{name}'", location
                )
            if char == quote:
                reader.advance(1)
                break
            if char == "$":
                hole = self._parse_hole()
                if hole is None:
                    literal.append("$")
                else:
                    flush()
                    parts.append(hole)
            elif char == "&":
                reader.advance(1)
                body = reader.read_until(";", "reference")
                literal.append(resolve_reference(body, None, reader.location()))
            elif char == "<":
                raise PxmlSyntaxError(
                    "'<' is not allowed in attribute values", reader.location()
                )
            else:
                literal.append(reader.advance(1))
        flush()
        return TemplateAttribute(name, parts, location)

    # -- content ------------------------------------------------------------------

    def _parse_content(self, element: TemplateElement) -> None:
        reader = self._reader
        text: list[str] = []
        text_location = reader.location()

        def flush() -> None:
            nonlocal text_location
            if text:
                element.children.append(
                    TemplateText("".join(text), location=text_location)
                )
                text.clear()
            text_location = reader.location()

        while True:
            char = reader.peek()
            if not char:
                raise PxmlSyntaxError(
                    f"missing end tag </{element.name}>", element.location
                )
            if reader.looking_at("</"):
                flush()
                location = reader.location()
                reader.advance(2)
                name = reader.read_name("in an end tag")
                reader.skip_space()
                reader.expect(">", "to close the end tag")
                if name != element.name:
                    raise PxmlSyntaxError(
                        f"end tag </{name}> does not match <{element.name}>",
                        location,
                    )
                return
            if reader.looking_at("<!--"):
                flush()
                reader.advance(4)
                reader.read_until("-->", "comment")
            elif reader.looking_at("<![CDATA["):
                location = reader.location()
                reader.advance(len("<![CDATA["))
                body = reader.read_until("]]>", "CDATA section")
                flush()
                element.children.append(
                    TemplateText(body, cdata=True, location=location)
                )
            elif char == "<":
                flush()
                element.children.append(self._parse_element())
            elif char == "$":
                hole = self._parse_hole()
                if hole is None:
                    text.append("$")
                else:
                    flush()
                    element.children.append(hole)
            elif char == "&":
                reader.advance(1)
                body = reader.read_until(";", "reference")
                text.append(resolve_reference(body, None, reader.location()))
            else:
                if not is_xml_char(char):
                    raise PxmlSyntaxError(
                        f"illegal character U+{ord(char):04X}",
                        reader.location(),
                    )
                text.append(reader.advance(1))

    def _parse_hole(self) -> Hole | None:
        """Parse a ``$...$`` hole; ``None`` for the ``$$`` escape."""
        reader = self._reader
        location = reader.location()
        reader.expect("$", "to open a hole")
        if reader.looking_at("$"):
            reader.advance(1)
            return None
        body = reader.read_until("$", "parameter hole")
        name, colon, annotation = body.partition(":")
        name = name.strip()
        annotation = annotation.strip() if colon else None
        if not name.isidentifier():
            raise PxmlSyntaxError(
                f"hole name '{name}' is not a valid identifier", location
            )
        if colon and not annotation:
            raise PxmlSyntaxError(
                f"empty annotation in hole '${body}$'", location
            )
        return Hole(name, annotation, location)

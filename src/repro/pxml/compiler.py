"""Compile checked templates to V-DOM factory-call code (Fig. 11).

The paper's preprocessor substitutes every XML constructor with "suitable
V-DOM code … V-DOM constructors and content setting method calls".  This
compiler does exactly that: a checked template becomes the source of a
Python function whose body is nested ``factory.create_*`` calls, hole
variables appearing as function parameters.  Compiling the source once
yields a render callable; the source itself is the reviewable artifact
(benchmarks compare it against the interpreted renderer).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.vdom import lexicalize
from repro.pxml.ast import (
    Hole,
    TemplateAttribute,
    TemplateElement,
    TemplateText,
)
from repro.pxml.checker import CheckedTemplate
from repro.pxml.segments import (
    ElementHole,
    Run,
    SegmentProgram,
    build_text_namespace,
    compile_segments,
)


def compile_template(
    checked: CheckedTemplate, function_name: str = "render"
) -> tuple[str, Callable[..., Any]]:
    """Return ``(source, callable)`` for *checked*.

    The callable's signature is ``render(factory, *, hole1, hole2, ...)``;
    it returns the constructed root element (a typed V-DOM object).
    """
    source = compile_template_source(checked, function_name)
    namespace: dict[str, Any] = {
        "_lex": lexicalize,
        "_hole_specs": checked.holes,
    }
    exec(compile(source, f"<pxml:{function_name}>", "exec"), namespace)
    return source, namespace[function_name]


def compile_text_template(
    checked: CheckedTemplate, function_name: str = "render_text"
) -> tuple[SegmentProgram, str, Callable[..., str]] | tuple[None, None, None]:
    """Segment-compile *checked* to a direct-to-text render function.

    Returns ``(program, source, callable)``; the callable's signature is
    ``render_text(*, hole1, hole2, ...)`` and it returns the serialized
    markup string — identical bytes to ``serialize(render(...))`` — with
    no ``TypedElement`` tree in between.  Returns ``(None, None, None)``
    when the template's shape is not segment-compilable (the caller
    keeps the DOM route).
    """
    program = compile_segments(checked)
    if program is None:
        return None, None, None
    source, render_text = compile_text_source(
        program, checked.binding, function_name
    )
    return program, source, render_text


def compile_text_source(
    program: SegmentProgram,
    binding: Any,
    function_name: str = "render_text",
) -> tuple[str, Callable[..., str]]:
    """Generate and compile the text-render source for *program*."""
    source = emit_text_source(program, function_name)
    namespace = build_text_namespace(program, binding)
    exec(compile(source, f"<pxml:{function_name}>", "exec"), namespace)
    return source, namespace[function_name]


def emit_text_source(
    program: SegmentProgram, function_name: str = "render_text"
) -> str:
    """Just the generated text-render source (reviewable artifact)."""
    holes = program.hole_names
    signature = f"def {function_name}("
    if holes:
        signature += "*, " + ", ".join(holes)
    signature += "):"
    lines = [signature]
    for name in program.element_hole_names:
        lines.append(f"    _hole_specs[{name!r}].accepts({name})")
    segments = program.segments
    if len(segments) == 1 and type(segments[0]) is str:
        lines.append(f"    return {segments[0]!r}")
        return "\n".join(lines) + "\n"
    if any(
        type(segment) is Run and segment.checker is not None
        for segment in segments
    ):
        lines.append("    _check = _b.validate_on_mutate")
    lines.append("    _p = []")
    lines.append("    _a = _p.append")
    for index, segment in enumerate(segments):
        if type(segment) is str:
            lines.append(f"    _a({segment!r})")
        elif type(segment) is ElementHole:
            lines.append(f"    _w({segment.name}, _p)")
        else:
            escape = "_esc_t" if segment.escape == "text" else "_esc_a"
            expression = _run_expression(segment)
            if segment.checker is not None:
                lines.append(f"    _v{index} = {expression}")
                lines.append("    if _check:")
                lines.append(f"        _ck{index}(_v{index})")
                lines.append(f"    _a({escape}(_v{index}))")
            else:
                lines.append(f"    _a({escape}({expression}))")
    lines.append("    return ''.join(_p)")
    return "\n".join(lines) + "\n"


def _run_expression(run: Run) -> str:
    pieces = [
        repr(payload) if kind == "lit" else f"_lex({payload})"
        for kind, payload in run.parts
    ]
    return " + ".join(pieces) if pieces else "''"


def compile_template_source(
    checked: CheckedTemplate,
    function_name: str = "render",
    spec_prefix: str = "",
) -> str:
    """Just the generated source (for inspection and the preprocessor).

    ``spec_prefix`` namespaces the ``_hole_specs`` lookups so several
    generated functions can share one registry (the preprocessor case).
    """
    return _Compiler(checked).emit(function_name, spec_prefix)


class _Compiler:
    def __init__(self, checked: CheckedTemplate):
        self._checked = checked
        self._binding = checked.binding

    def emit(self, function_name: str, spec_prefix: str = "") -> str:
        holes = self._checked.hole_names()
        parameters = "".join(f", {name}" for name in holes)
        signature = f"def {function_name}(factory"
        if holes:
            signature += f", *{parameters}"
        signature += "):"
        lines = [signature]
        for name, spec in sorted(self._checked.holes.items()):
            if spec.kind == "element":
                lines.append(
                    f"    _hole_specs[{spec_prefix + name!r}].accepts({name})"
                )
        expression = self._element_expression(self._checked.root, depth=1)
        lines.append(f"    return {expression}")
        return "\n".join(lines) + "\n"

    # -- expressions -----------------------------------------------------------

    def _element_expression(self, node: TemplateElement, depth: int) -> str:
        cls = self._class_for(node)
        method = self._binding.factory_method_by_class[cls]
        indent = "    " * (depth + 1)
        arguments: list[str] = []
        for child in node.children:
            if isinstance(child, TemplateText):
                if child.data.strip() or child.cdata:
                    arguments.append(repr(child.data))
                # pure-whitespace literals between elements are layout
            elif isinstance(child, Hole):
                spec = self._checked.holes[child.name]
                if spec.kind == "element":
                    arguments.append(child.name)
                else:
                    arguments.append(f"_lex({child.name})")
            else:
                arguments.append(self._element_expression(child, depth + 1))
        attribute_items: list[str] = []
        for attribute in node.attributes:
            attribute_items.append(
                f"{attribute.name!r}: {self._attribute_expression(attribute)}"
            )
        if attribute_items:
            arguments.append("**{" + ", ".join(attribute_items) + "}")
        if not arguments:
            return f"factory.{method}()"
        joined = f",\n{indent}".join(arguments)
        closing_indent = "    " * depth
        return f"factory.{method}(\n{indent}{joined},\n{closing_indent})"

    def _attribute_expression(self, attribute: TemplateAttribute) -> str:
        pieces: list[str] = []
        for part in attribute.parts:
            if isinstance(part, str):
                pieces.append(repr(part))
            else:
                pieces.append(f"_lex({part.name})")
        if not pieces:
            return "''"
        if len(pieces) == 1:
            piece = pieces[0]
            return piece if piece.startswith("_lex") else piece
        return " + ".join(pieces)

    def _class_for(self, node: TemplateElement) -> type:
        """The class the checker proved for this element node."""
        return self._checked.class_of(node)

"""The public P-XML entry point: parse + check once, render many."""

from __future__ import annotations

from typing import Any, Callable

from repro.core.vdom import Binding, TypedElement
from repro.pxml.checker import CheckedTemplate, check_template
from repro.pxml.compiler import compile_template
from repro.pxml.parser import parse_template
from repro.pxml.runtime import render_interpreted


class Template:
    """A statically validated XML constructor.

    ::

        template = Template(binding, '''
            <shipTo country="US">
              <name>$n$</name>
              <street>123 Maple Street</street>
              ...
            </shipTo>''')
        ship_to = template.render(n="Alice Smith")

    Checking happens in ``__init__`` — the paper's "compile time".  A
    ``Template`` that exists can only render schema-valid fragments.
    """

    def __init__(
        self,
        binding: Binding,
        source: str,
        param_types: dict[str, Any] | None = None,
        compiled: bool = True,
    ):
        self.binding = binding
        self.source = source
        self.ast = parse_template(source)
        self.checked: CheckedTemplate = check_template(
            binding, self.ast, param_types
        )
        self._render: Callable[..., TypedElement] | None = None
        self.generated_source: str | None = None
        if compiled:
            self.generated_source, self._render = compile_template(self.checked)

    @property
    def hole_names(self) -> list[str]:
        return self.checked.hole_names()

    def render(self, **values: Any) -> TypedElement:
        """Instantiate the template; returns a typed (valid) element."""
        if self._render is not None:
            return self._render(self.binding.factory, **values)
        return render_interpreted(self.checked, **values)

    def render_document(self, **values: Any):
        """Render and wrap in a document (root must be global)."""
        return self.binding.document(self.render(**values))

    def __repr__(self) -> str:
        mode = "compiled" if self._render is not None else "interpreted"
        return (
            f"Template(<{self.ast.name}>, holes={self.hole_names}, {mode})"
        )


def template_for(binding: Binding, source: str, **kwargs: Any) -> Template:
    """Convenience: ``template_for(binding, "<a>...</a>")``."""
    return Template(binding, source, **kwargs)

"""The public P-XML entry point: parse + check once, render many."""

from __future__ import annotations

from typing import Any, Callable

from repro import obs
from repro.core.vdom import Binding, TypedElement
from repro.pxml.checker import CheckedTemplate, check_template
from repro.pxml.compiler import compile_template, compile_text_template
from repro.pxml.parser import parse_template
from repro.pxml.runtime import render_interpreted, render_text_interpreted


class Template:
    """A statically validated XML constructor.

    ::

        template = Template(binding, '''
            <shipTo country="US">
              <name>$n$</name>
              <street>123 Maple Street</street>
              ...
            </shipTo>''')
        ship_to = template.render(n="Alice Smith")

    Checking happens in ``__init__`` — the paper's "compile time".  A
    ``Template`` that exists can only render schema-valid fragments.

    With a :class:`repro.cache.ReproCache` (and a binding produced by a
    cached :func:`repro.bind`), the checked + compiled form is reused
    across processes: a warm start skips parsing, the static check, and
    code generation, going straight to the generated render function.
    The guarantee is preserved — the cached artifact exists only because
    the checker accepted exactly this source against exactly this
    schema, and both are part of the cache key.
    """

    def __init__(
        self,
        binding: Binding,
        source: str,
        param_types: dict[str, Any] | None = None,
        compiled: bool = True,
        cache: Any = None,
    ):
        self.binding = binding
        self.source = source
        self.checked: CheckedTemplate | None = None
        self._render: Callable[..., TypedElement] | None = None
        self._render_text: Callable[..., str] | None = None
        self.generated_source: str | None = None
        self.text_source: str | None = None
        self._segments = None
        self._hole_names: list[str] = []
        self._hole_specs: dict[str, Any] = {}
        self._root_name: str | None = None
        cache_key = self._cache_key(cache, source, param_types, compiled)
        if cache_key is not None and self._load_cached(cache, cache_key):
            return
        self.ast = parse_template(source)
        self._root_name = self.ast.name
        self.checked = check_template(binding, self.ast, param_types)
        self._hole_names = self.checked.hole_names()
        self._hole_specs = self.checked.holes
        if compiled:
            self.generated_source, self._render = compile_template(self.checked)
            self._segments, self.text_source, self._render_text = (
                compile_text_template(self.checked)
            )
            # Seed the interpreted twin's memo so a mixed usage pattern
            # never re-partitions the same checked AST.
            self.checked._segment_program = self._segments
        if cache_key is not None and compiled:
            self._store_cached(cache, cache_key)

    # -- cache plumbing ---------------------------------------------------------

    def _cache_key(
        self,
        cache: Any,
        source: str,
        param_types: dict[str, Any] | None,
        compiled: bool,
    ) -> str | None:
        """Chained fingerprint, or ``None`` when caching cannot apply."""
        if cache is None or not compiled:
            return None
        base = self.binding.cache_fingerprint
        if base is None:
            # An unfingerprinted binding gives no stable schema identity
            # to key on; skip caching rather than risk a wrong reuse.
            return None
        from repro.cache.fingerprint import combine

        annotations = (
            sorted((name, str(value)) for name, value in param_types.items())
            if param_types
            else ()
        )
        return combine(base, "template", source, param_types=annotations)

    def _load_cached(self, cache: Any, key: str) -> bool:
        from repro.cache.artifacts import ArtifactError, load_template
        from repro.core.vdom import lexicalize

        payload = cache.get_bytes("template", key)
        if payload is None:
            return False
        try:
            record = load_template(payload, self.binding)
        except ArtifactError:
            cache.stats.record_corrupt("template")
            cache.invalidate(key)
            return False
        self.ast = None
        self._root_name = record["root"]
        self.generated_source = record["generated_source"]
        self._hole_names = sorted(record["holes"])
        self._hole_specs = record["holes"]
        namespace: dict[str, Any] = {
            "_lex": lexicalize,
            "_hole_specs": record["holes"],
        }
        exec(
            compile(self.generated_source, "<pxml:render>", "exec"), namespace
        )
        self._render = namespace["render"]
        self._segments = record.get("program")
        self.text_source = record.get("text_source")
        if self._segments is not None and self.text_source is not None:
            from repro.pxml.segments import build_text_namespace

            text_namespace = build_text_namespace(self._segments, self.binding)
            exec(
                compile(self.text_source, "<pxml:render_text>", "exec"),
                text_namespace,
            )
            self._render_text = text_namespace["render_text"]
        return True

    def _store_cached(self, cache: Any, key: str) -> None:
        from repro.cache.artifacts import ArtifactError, dump_template

        assert self.checked is not None and self.generated_source is not None
        try:
            payload = dump_template(
                self.binding,
                self.generated_source,
                self._root_name or "",
                self.checked.holes,
                text_source=self.text_source,
                segment_program=self._segments,
            )
        except ArtifactError:
            return
        cache.put_bytes("template", key, payload)

    # -- public surface ----------------------------------------------------------

    @property
    def hole_names(self) -> list[str]:
        return self._hole_names

    def checked_holes(self) -> dict[str, Any]:
        """Hole name → :class:`~repro.pxml.checker.HoleSpec`.

        Unlike ``self.checked.holes`` this also works on a
        cache-rehydrated template, whose ``checked`` AST never existed
        in this process — the specs ride in the cached artifact.
        """
        if self.checked is not None:
            return self.checked.holes
        return self._hole_specs

    def checked_root_class(self) -> type | None:
        """The generated class of the template's root element.

        ``None`` only for a cache-rehydrated template whose root name is
        ambiguous in the binding (several local declarations share it).
        """
        if self.checked is not None:
            return self.checked.root_class
        candidates = self.binding.declarations_by_name.get(
            self._root_name or "", []
        )
        return candidates[0] if len(candidates) == 1 else None

    def render(self, **values: Any) -> TypedElement:
        """Instantiate the template; returns a typed (valid) element."""
        if self._render is not None:
            return self._render(self.binding.factory, **values)
        assert self.checked is not None
        return render_interpreted(self.checked, **values)

    def render_text(self, **values: Any) -> str:
        """Render directly to serialized markup, skipping the DOM.

        Byte-identical to ``serialize(self.render(**values))`` but emits
        the string from precomputed segments; the static check in
        ``__init__`` (plus per-hole validation at render time) preserves
        the validity guarantee without materializing a tree.  Templates
        whose shape the segment compiler declines transparently take the
        render-then-serialize route.
        """
        if self._render_text is not None:
            obs.count("render.route", route="segment")
            return self._render_text(**values)
        if self.checked is not None:
            return render_text_interpreted(self.checked, **values)
        # A cached template whose segment program did not survive
        # rehydration: the only remaining route is render-then-serialize.
        obs.count("render.route", route="dom", reason="no segment program")
        from repro.dom.serialize import serialize

        return serialize(self.render(**values))

    def stream_text(self, **values: Any) -> list[str] | None:
        """The ``render_text`` output as a list of pieces, or ``None``.

        The pieces concatenate to exactly ``render_text(**values)`` —
        static segments by reference, hole values validated and emitted —
        but stay unjoined so a streaming caller (the serve tier's
        chunked mode) can put precomputed static markup on the wire
        without building the whole body first.  Every hole is validated
        *before* the list is returned: an invalid value raises here,
        while no byte has been committed, preserving the 422/400
        semantics of the buffered path.

        Returns ``None`` when this template has no segment program (the
        DOM-fallback shapes, or a cached artifact whose program did not
        survive rehydration) — those render only as whole strings.
        """
        if self._segments is None:
            return None
        obs.count("render.route", route="segment-stream")
        return self._segments.fill(values, check=True)

    def render_document(self, **values: Any):
        """Render and wrap in a document (root must be global)."""
        return self.binding.document(self.render(**values))

    def __repr__(self) -> str:
        mode = "compiled" if self._render is not None else "interpreted"
        return (
            f"Template(<{self._root_name}>, holes={self.hole_names}, {mode})"
        )


def template_for(binding: Binding, source: str, **kwargs: Any) -> Template:
    """Convenience: ``template_for(binding, "<a>...</a>")``."""
    return Template(binding, source, **kwargs)

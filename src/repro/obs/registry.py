"""The metrics registry backing :mod:`repro.obs`.

One :class:`ObsRegistry` lives per process (module-level singleton in
``repro.obs``); workers of the bulk-ingest pool each own their own and
ship :meth:`snapshot` deltas back to the parent, which folds them in
with :meth:`merge`.

Three instrument kinds, all aggregated — nothing here keeps per-event
records, so memory stays O(distinct instrument names):

* **counters** — monotonically increasing integers.  Labels are folded
  into the key deterministically (``ingest.route{route=fused}``) so a
  snapshot is a flat, JSON-ready dict;
* **timers** — ``(count, total_seconds)`` pairs fed by the ``timeit``
  context manager;
* **spans** — timers whose key is the ``/``-joined path of the
  enclosing span stack (thread-local), giving a cheap hierarchy:
  ``bulk.validate/cache.bind`` is the bind time observed *inside* a
  bulk run.

The registry itself is always live; the enable/disable gate (the
near-zero-overhead part) lives in ``repro.obs``.
"""

from __future__ import annotations

import threading
import time
from typing import Any

__all__ = ["ObsRegistry", "diff_snapshots", "render_table"]


def _key(name: str, labels: dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class _SpanStack(threading.local):
    def __init__(self):
        self.names: list[str] = []


class _Timed:
    """Context manager recording elapsed wall time into *sink*."""

    __slots__ = ("_registry", "_name", "_is_span", "_started")

    def __init__(self, registry: "ObsRegistry", name: str, is_span: bool):
        self._registry = registry
        self._name = name
        self._is_span = is_span

    def __enter__(self):
        if self._is_span:
            self._registry._stack.names.append(self._name)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info):
        elapsed = time.perf_counter() - self._started
        registry = self._registry
        if self._is_span:
            stack = registry._stack.names
            path = "/".join(stack)
            stack.pop()
            registry._record(registry.spans, path, elapsed)
        else:
            registry._record(registry.timers, self._name, elapsed)
        return False


class ObsRegistry:
    """Process-local counters/timers/spans with a mergeable snapshot."""

    def __init__(self):
        self._lock = threading.Lock()
        self._stack = _SpanStack()
        self.counters: dict[str, int] = {}
        self.timers: dict[str, list[float]] = {}  # key -> [count, seconds]
        self.spans: dict[str, list[float]] = {}  # path -> [count, seconds]

    # -- recording ----------------------------------------------------------

    def count(self, name: str, n: int = 1, **labels: Any) -> None:
        key = _key(name, labels)
        with self._lock:
            self.counters[key] = self.counters.get(key, 0) + n

    def timeit(self, name: str, **labels: Any) -> _Timed:
        return _Timed(self, _key(name, labels), is_span=False)

    def span(self, name: str, **labels: Any) -> _Timed:
        return _Timed(self, _key(name, labels), is_span=True)

    def _record(self, sink: dict[str, list[float]], key: str, elapsed: float) -> None:
        with self._lock:
            entry = sink.get(key)
            if entry is None:
                sink[key] = [1, elapsed]
            else:
                entry[0] += 1
                entry[1] += elapsed

    # -- reading / merging --------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready copy: counters flat, timers/spans as count+ms."""
        with self._lock:
            return {
                "counters": dict(self.counters),
                "timers": {
                    key: {"count": int(entry[0]), "total_ms": round(entry[1] * 1000, 3)}
                    for key, entry in self.timers.items()
                },
                "spans": {
                    key: {"count": int(entry[0]), "total_ms": round(entry[1] * 1000, 3)}
                    for key, entry in self.spans.items()
                },
            }

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot`-shaped dict (e.g. a worker delta) in."""
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self.counters[key] = self.counters.get(key, 0) + value
            for sink_name in ("timers", "spans"):
                sink = getattr(self, sink_name)
                for key, value in snapshot.get(sink_name, {}).items():
                    entry = sink.get(key)
                    if entry is None:
                        sink[key] = [value["count"], value["total_ms"] / 1000]
                    else:
                        entry[0] += value["count"]
                        entry[1] += value["total_ms"] / 1000

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()
            self.timers.clear()
            self.spans.clear()


def diff_snapshots(new: dict[str, Any], old: dict[str, Any]) -> dict[str, Any]:
    """``new - old`` for two snapshots; zero entries are dropped.

    Used by bulk-pool workers to attribute activity to individual files:
    every worker keeps the snapshot taken after its previous record and
    ships only the delta.
    """
    counters = {}
    for key, value in new.get("counters", {}).items():
        delta = value - old.get("counters", {}).get(key, 0)
        if delta:
            counters[key] = delta
    out: dict[str, Any] = {"counters": counters}
    for sink in ("timers", "spans"):
        entries = {}
        for key, value in new.get(sink, {}).items():
            before = old.get(sink, {}).get(key)
            count = value["count"] - (before["count"] if before else 0)
            total = value["total_ms"] - (before["total_ms"] if before else 0.0)
            if count or total:
                entries[key] = {"count": count, "total_ms": round(total, 3)}
        out[sink] = entries
    return out


def render_table(snapshot: dict[str, Any]) -> str:
    """The human-readable ``--stats`` table."""
    lines: list[str] = []

    def section(title: str, rows: list[tuple[str, str]]) -> None:
        if not rows:
            return
        lines.append(title)
        width = max(len(name) for name, _ in rows)
        for name, value in rows:
            lines.append(f"  {name.ljust(width)}  {value}")

    section(
        "counters",
        [
            (key, str(value))
            for key, value in sorted(snapshot.get("counters", {}).items())
        ],
    )
    for sink, title in (("timers", "timers"), ("spans", "spans")):
        section(
            title,
            [
                (key, f"{value['count']}x  {value['total_ms']}ms")
                for key, value in sorted(snapshot.get(sink, {}).items())
            ],
        )
    if not lines:
        return "(no observations recorded)"
    return "\n".join(lines)

"""``repro.obs`` — near-zero-overhead pipeline observability.

PRs 1–3 moved work out of the serving path (compiled schemas, segment
rendering, fused ingest), and with it the *evidence* that the fast path
ran: a cache miss, a DOM fallback, or a legacy-route parse looks exactly
like the fast path, only slower.  This module makes those runtime
decisions measurable — the complement of the paper's preparation-time
argument: once checks move out of sight, you need counters to prove
they stayed gone.

Usage (every call is a no-op while disabled, which is the default)::

    from repro import obs

    obs.enable()                      # or REPRO_OBS=1, or the CLI --stats
    ...
    obs.count("ingest.route", route="fused")
    with obs.timeit("cache.bind"):
        ...
    with obs.span("bulk.validate"):  # nests: inner spans get a path
        ...
    obs.snapshot()   # {"counters": ..., "timers": ..., "spans": ...}

Design constraints:

* **disabled is free** — one module-global read and a branch per call
  site; the overhead benchmark (``benchmarks/test_obs_overhead.py``)
  holds the PR 2/3 throughput floors with instrumentation compiled in;
* **process-local** — no I/O, no globals beyond this module; the
  bulk-ingest pool ships worker snapshots back and merges them;
* **JSON-ready snapshots** — the ``--stats-json`` artifact and the
  benchmark assertions both read :func:`snapshot` directly.
"""

from __future__ import annotations

import os
from typing import Any

from repro.obs.registry import ObsRegistry, diff_snapshots, render_table

__all__ = [
    "ObsRegistry",
    "count",
    "diff_snapshots",
    "disable",
    "enable",
    "enabled",
    "merge",
    "render_table",
    "reset",
    "snapshot",
    "span",
    "timeit",
]

#: environment variable that switches collection on for the process
OBS_ENV = "REPRO_OBS"

_registry = ObsRegistry()
_enabled = os.environ.get(OBS_ENV, "") not in ("", "0")


class _NoopTimed:
    """Shared do-nothing context manager for disabled timeit/span."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopTimed()


def enabled() -> bool:
    """Is collection currently on?"""
    return _enabled


def enable(reset: bool = False) -> None:
    """Switch collection on (optionally clearing prior observations)."""
    global _enabled
    if reset:
        _registry.reset()
    _enabled = True


def disable() -> None:
    """Switch collection off; recorded observations are kept."""
    global _enabled
    _enabled = False


def count(name: str, n: int = 1, **labels: Any) -> None:
    """Add *n* to a counter; labels fold into the key deterministically."""
    if _enabled:
        _registry.count(name, n, **labels)


def timeit(name: str, **labels: Any):
    """Context manager recording one wall-time observation."""
    if _enabled:
        return _registry.timeit(name, **labels)
    return _NOOP


def span(name: str, **labels: Any):
    """Like :func:`timeit` but hierarchical: nested spans record under
    the ``/``-joined path of their ancestors (per thread)."""
    if _enabled:
        return _registry.span(name, **labels)
    return _NOOP


def snapshot() -> dict[str, Any]:
    """JSON-ready copy of everything recorded so far."""
    return _registry.snapshot()


def merge(other: dict[str, Any]) -> None:
    """Fold a snapshot (e.g. from a pool worker) into this process."""
    _registry.merge(other)


def reset() -> None:
    """Drop all recorded observations (the enabled flag is untouched)."""
    _registry.reset()

#!/usr/bin/env python
"""Run the real-world schema gauntlet and emit a per-schema report.

Binds every corpus family (multi-namespace, multi-document schemas),
validates every instance through the object-DFA, table-driven,
warm-cache, pooled, and lazy-subset lanes, and insists all verdicts are
byte-identical.  Also proves stale-format cache recovery: entries
written under the previous on-disk format version are invisible to the
current reader, which recompiles and then runs warm.

Usage:
    python scripts/run_gauntlet.py [--report gauntlet_report.json]
                                   [--no-pool] [--cache-dir DIR]

Exit status is nonzero when any family fails to bind, any lane
disagrees, or any verdict contradicts the instance's valid-*/invalid-*
name.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))
sys.path.insert(0, os.path.join(REPO, "tests", "integration"))

import corpus_runner  # noqa: E402


def check_stale_format_recovery(cache_dir: str) -> dict:
    """Write a binding under the previous CACHE_FORMAT_VERSION, then
    prove the current reader recompiles past it and runs warm after."""
    import importlib

    from repro.cache.manager import ReproCache

    fingerprint_module = importlib.import_module("repro.cache.fingerprint")
    current = fingerprint_module.CACHE_FORMAT_VERSION

    family = os.path.join(corpus_runner.CORPUS_DIR, "secreport")
    schema_path = os.path.join(family, "schema", "main.xsd")
    with open(schema_path, encoding="utf-8") as handle:
        schema_text = handle.read()

    fingerprint_module.CACHE_FORMAT_VERSION = current - 1
    try:
        ReproCache(cache_dir).bind(schema_text, location=schema_path)
    finally:
        fingerprint_module.CACHE_FORMAT_VERSION = current

    fresh = ReproCache(cache_dir)
    fresh.bind(schema_text, location=schema_path)
    recompiled = fresh.stats.misses >= 1

    warm = ReproCache(cache_dir)
    warm.bind(schema_text, location=schema_path)
    warmed = warm.stats.misses == 0 and warm.stats.hits >= 1

    return {
        "from_version": current - 1,
        "to_version": current,
        "recompiled_past_stale_entry": recompiled,
        "warm_after_recovery": warmed,
        "ok": recompiled and warmed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--report", default="gauntlet_report.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--no-pool", action="store_true",
        help="skip the worker-pool lane (e.g. cramped CI runners)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="persistent cache directory (default: a fresh temp dir)",
    )
    arguments = parser.parse_args(argv)

    cache_dir = arguments.cache_dir or tempfile.mkdtemp(prefix="gauntlet-")
    reports = []
    ok = True
    for name, case_dir in corpus_runner.iter_cases():
        report = corpus_runner.run_case(
            case_dir,
            cache_dir=os.path.join(cache_dir, name),
            use_pool=not arguments.no_pool,
        )
        status = "ok" if report["ok"] else "FAILED"
        print(
            f"{name}: {status} — {len(report['instances'])} instance(s), "
            f"{report['related_documents']} related document(s), "
            f"namespaces: {', '.join(report['namespaces'])}"
        )
        for instance in report["instances"]:
            marker = (
                "ok"
                if instance["agreed"]
                and instance["lanes_identical"]
                and instance["lazy_identical"] in (True, None)
                else "FAILED"
            )
            print(
                f"  [{marker}] {instance['name']}: valid={instance['valid']} "
                f"lanes_identical={instance['lanes_identical']} "
                f"lazy_identical={instance['lazy_identical']}"
            )
        reports.append(report)
        ok = ok and report["ok"]

    recovery = check_stale_format_recovery(os.path.join(cache_dir, "_format"))
    print(
        "stale-format recovery "
        f"(v{recovery['from_version']} -> v{recovery['to_version']}): "
        + ("ok" if recovery["ok"] else "FAILED")
    )
    ok = ok and recovery["ok"]

    payload = {
        "families": reports,
        "stale_format_recovery": recovery,
        "ok": ok,
    }
    with open(arguments.report, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"report written to {arguments.report}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

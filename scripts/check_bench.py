#!/usr/bin/env python3
"""CI benchmark-regression gate.

Reads the floor registry (``benchmarks/floors.json``), finds each
entry's ``BENCH_*.json`` artifact under a directory tree, extracts the
measured metric by dotted path, and fails if any number is below its
floor — or if an expected artifact is missing entirely (a benchmark
that silently stopped producing its artifact must not pass the gate).

Artifacts written under ``REPRO_BENCH_QUICK=1`` record
``{"_meta": {"quick": true}}``; for those the entry's ``quick_floor``
(when present) is enforced instead of the full floor, mirroring what
the benchmark itself asserted when it ran.

A floor entry may name a ``skip_if`` marker — a dotted path into the
artifact.  When the marker is truthy the floor is waived for that
artifact (reported as ``skip``, with the reason the benchmark recorded
next to the marker as ``<prefix>.floor_skip_reason``): the benchmark
ran and published its numbers but declared the floor inapplicable,
e.g. a parallel-scaling ratio measured on a runner without enough
cores.  A *missing* artifact still fails — only an explicit marker
can waive a floor.

Usage::

    python scripts/check_bench.py [artifact-dir]

*artifact-dir* defaults to the current directory and is searched
recursively (``actions/download-artifact`` unpacks each artifact into
its own subdirectory).
"""

import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FLOORS_PATH = os.path.join(REPO_ROOT, "benchmarks", "floors.json")


def find_artifact(root: str, filename: str) -> str | None:
    """The first file named *filename* under *root*, or None."""
    for dirpath, _dirnames, filenames in sorted(os.walk(root)):
        if filename in filenames:
            return os.path.join(dirpath, filename)
    return None


def extract(report: dict, dotted: str):
    """Walk *report* by the dotted *path* from floors.json.

    Only the final separator splits a metric name from its containing
    scenario — scenario keys themselves may contain anything but dots
    (``serve:hot_cache``, ``bind:purchase_order``).
    """
    node = report
    for part in dotted.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def check_artifacts(
    floors: dict, artifact_dir: str
) -> tuple[list[str], list[str]]:
    """``(problems, skipped)`` — violations and waived floors.

    *problems* holds every floor violation / missing artifact as a
    printable string; *skipped* holds floors waived by their ``skip_if``
    marker (with the benchmark's recorded reason).
    """
    problems = []
    skipped = []
    for name, entry in floors.items():
        path = find_artifact(artifact_dir, entry["artifact"])
        if path is None:
            problems.append(
                f"{name}: artifact {entry['artifact']} not found under "
                f"{artifact_dir}"
            )
            continue
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
        marker = entry.get("skip_if")
        if marker and extract(report, marker):
            prefix = marker.rsplit(".", 1)[0]
            reason = extract(report, f"{prefix}.floor_skip_reason")
            skipped.append(
                f"{name}: floor waived by {marker}"
                + (f" ({reason})" if reason else "")
            )
            continue
        quick = bool(report.get("_meta", {}).get("quick"))
        floor = (
            entry.get("quick_floor", entry["floor"])
            if quick
            else entry["floor"]
        )
        value = extract(report, entry["path"])
        if value is None:
            problems.append(
                f"{name}: metric {entry['path']!r} missing from {path}"
            )
        elif value < floor:
            mode = "quick" if quick else "full"
            problems.append(
                f"{name}: {value} < floor {floor} ({mode} mode, "
                f"{entry['path']} in {entry['artifact']})"
            )
    return problems, skipped


def main(argv: list[str]) -> int:
    artifact_dir = argv[1] if len(argv) > 1 else "."
    with open(FLOORS_PATH, encoding="utf-8") as handle:
        floors = json.load(handle)
    problems, skipped = check_artifacts(floors, artifact_dir)
    checked = len(floors)
    for line in skipped:
        print(f"  skip {line}")
    if problems:
        print(f"bench-gate: {len(problems)}/{checked} checks FAILED")
        for problem in problems:
            print(f"  FAIL {problem}")
        return 1
    skipped_names = {line.split(":", 1)[0] for line in skipped}
    cleared = checked - len(skipped)
    print(
        f"bench-gate: all {cleared} floors clear"
        + (f" ({len(skipped)} waived)" if skipped else "")
    )
    for name, entry in sorted(floors.items()):
        if name not in skipped_names:
            print(f"  ok   {name} ({entry['path']} >= {entry['floor']})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Regenerate every ``BENCH_*.json`` artifact locally, then gate it.

CI runs each benchmark module in its own matrix job and feeds the
uploaded artifacts to ``scripts/check_bench.py``; this script is the
one-command local equivalent: run the same modules (quick mode by
default, ``--full`` for the real floors), collect their JSON artifacts
into one directory, and finish by running the same regression gate over
the results.

Usage::

    python scripts/run_benches.py                  # quick run -> bench_artifacts/
    python scripts/run_benches.py --full           # full floors (slow)
    python scripts/run_benches.py --only parse-ingest serve-throughput
    python scripts/run_benches.py --out /tmp/bench --no-gate

Exit status is non-zero when a benchmark fails or the gate reports a
floor violation, so the script can sit directly in a pre-push hook.
"""

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: name -> (pytest target, artifact filename); mirrors the CI bench matrix
BENCHMARKS = {
    "cache-amortization": (
        "benchmarks/test_cache_amortization.py",
        "BENCH_cache_amortization.json",
    ),
    "render-throughput": (
        "benchmarks/test_render_throughput.py",
        "BENCH_render_throughput.json",
    ),
    "parse-ingest": (
        "benchmarks/test_parse_ingest.py",
        "BENCH_parse_ingest.json",
    ),
    # Same module, one test: CI's bench-bulk leg runs it on the full
    # runner so the ingest:bulk_scaling floor gates on a distinct
    # artifact (the parse-ingest leg also records bulk_scaling, but
    # the gate reads only BENCH_bulk_scaling.json for that floor).
    "bulk-scaling": (
        "benchmarks/test_parse_ingest.py::test_bulk_scaling",
        "BENCH_bulk_scaling.json",
    ),
    "query-transform": (
        "benchmarks/test_query_transform.py",
        "BENCH_query_transform.json",
    ),
    "serve-throughput": (
        "benchmarks/test_serve_throughput.py",
        "BENCH_serve_throughput.json",
    ),
    "obs-overhead": (
        "benchmarks/test_obs_overhead.py",
        "BENCH_obs_overhead.json",
    ),
}


def run_benchmark(name: str, out_dir: str, quick: bool) -> bool:
    """One module -> one artifact; True when pytest exited cleanly."""
    target, artifact = BENCHMARKS[name]
    env = dict(os.environ)
    env["REPRO_BENCH_JSON"] = os.path.join(out_dir, artifact)
    env["REPRO_BENCH_QUICK"] = "1" if quick else "0"
    env["PYTHONPATH"] = os.pathsep.join(
        part
        for part in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH"))
        if part
    )
    command = [sys.executable, "-m", "pytest", target, "-q", "-s"]
    try:  # pragma: no cover - depends on the local environment
        import pytest_benchmark  # noqa: F401

        command.append("--benchmark-disable")
    except ImportError:
        pass
    mode = "quick" if quick else "full"
    print(f"== {name} ({mode}) -> {env['REPRO_BENCH_JSON']}", flush=True)
    completed = subprocess.run(command, cwd=REPO_ROOT, env=env)
    return completed.returncode == 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full iteration counts and enforce the full floors "
        "(default: quick mode, the CI smoke configuration)",
    )
    parser.add_argument(
        "--only",
        nargs="+",
        choices=sorted(BENCHMARKS),
        metavar="NAME",
        help="run only these benchmarks (default: all of them)",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "bench_artifacts"),
        help="directory collecting the BENCH_*.json artifacts "
        "(default: bench_artifacts/)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="skip the check_bench.py floor gate after the runs",
    )
    arguments = parser.parse_args(argv[1:])
    os.makedirs(arguments.out, exist_ok=True)
    names = arguments.only or sorted(BENCHMARKS)
    failures = [
        name
        for name in names
        if not run_benchmark(name, arguments.out, quick=not arguments.full)
    ]
    if failures:
        print(f"run_benches: FAILED benchmarks: {', '.join(failures)}")
        return 1
    if arguments.no_gate:
        return 0
    if arguments.only:
        # A partial run cannot satisfy the full floor registry (missing
        # artifacts fail the gate by design); report and leave gating to
        # a complete run.
        print(
            "run_benches: partial run (--only) — skipping the floor gate; "
            f"artifacts are under {arguments.out}"
        )
        return 0
    from check_bench import main as gate  # same directory

    return gate(["check_bench.py", arguments.out])


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    sys.exit(main(sys.argv))

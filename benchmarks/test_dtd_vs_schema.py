"""The DTD→Schema upgrade, measured (Sect. 1's motivation).

Compares the prior-work pipeline ([14]: DTD-derived V-DOM) against the
paper's schema-derived one on the same language and corpus:

* detection coverage — which faults each binding catches,
* cost — binding generation and per-document checking.

Expected shape: identical structural coverage and cost, but the DTD
binding is blind to every value-level fault (patterns, facets, types),
which is precisely why the paper upgraded to XML Schema.
"""

from repro.dom import parse_document
from repro.dtd import DtdValidator, bind_dtd, parse_dtd
from repro.errors import VdomTypeError
from repro.schemas import (
    PURCHASE_ORDER_DOCUMENT,
    PURCHASE_ORDER_DTD,
    PURCHASE_ORDER_INVALID_DOCUMENTS,
    PURCHASE_ORDER_SCHEMA,
)

import pytest


@pytest.fixture(scope="module")
def dtd_binding():
    return bind_dtd(PURCHASE_ORDER_DTD)


def _coverage(binding):
    caught = set()
    for fault, text in PURCHASE_ORDER_INVALID_DOCUMENTS.items():
        try:
            binding.from_dom(parse_document(text).document_element)
        except VdomTypeError:
            caught.add(fault)
    return caught


def test_expressiveness_gap_table(po_binding, dtd_binding, capsys):
    schema_caught = _coverage(po_binding)
    dtd_caught = _coverage(dtd_binding)
    assert schema_caught == set(PURCHASE_ORDER_INVALID_DOCUMENTS)
    assert dtd_caught < schema_caught
    gap = sorted(schema_caught - dtd_caught)
    print("\nfaults missed by the DTD-derived binding:")
    for fault in gap:
        print(f"  {fault}")
    # Exactly the value-level faults DTDs cannot express:
    assert gap == ["bad-date", "bad-price", "bad-quantity", "bad-sku"]


def test_bench_bind_from_dtd(benchmark):
    binding = benchmark(bind_dtd, PURCHASE_ORDER_DTD)
    assert "create_purchase_order" in binding.factory_names()


def test_bench_bind_from_schema(benchmark):
    from repro.core import bind

    binding = benchmark(bind, PURCHASE_ORDER_SCHEMA)
    assert "create_purchase_order" in binding.factory_names()


def test_bench_dtd_validate(benchmark):
    validator = DtdValidator(
        parse_dtd(PURCHASE_ORDER_DTD, root_name="purchaseOrder")
    )
    document = parse_document(PURCHASE_ORDER_DOCUMENT)
    errors = benchmark(validator.validate, document)
    assert errors == []


def test_bench_dtd_unmarshal(benchmark, dtd_binding):
    document = parse_document(PURCHASE_ORDER_DOCUMENT)
    typed = benchmark(dtd_binding.from_dom, document.document_element)
    assert typed.tag_name == "purchaseOrder"

"""Shared benchmark fixtures and the purchase-order workload generator.

Workloads scale by item count; every experiment that sweeps document
size uses :func:`purchase_order_text` so the approaches are compared on
byte-identical inputs.
"""

import random

import pytest

from repro.core import bind
from repro.schemas import PURCHASE_ORDER_SCHEMA, WML_SCHEMA

_PRODUCTS = (
    "Lawnmower", "Baby Monitor", "Garden Hose", "Rake", "Sprinkler",
    "Work Gloves", "Wheelbarrow", "Hedge Trimmer", "Bird Feeder",
)


def purchase_order_text(item_count: int, seed: int = 7) -> str:
    """A valid purchase order document with *item_count* items."""
    rng = random.Random(seed)
    items = []
    for index in range(item_count):
        product = _PRODUCTS[index % len(_PRODUCTS)]
        sku = f"{rng.randint(100, 999)}-{chr(65 + index % 26)}{chr(65 + (index // 26) % 26)}"
        quantity = rng.randint(1, 99)
        price = f"{rng.randint(1, 500)}.{rng.randint(0, 99):02d}"
        comment = (
            f"      <comment>note {index}</comment>\n"
            if index % 3 == 0
            else ""
        )
        items.append(
            f'    <item partNum="{sku}">\n'
            f"      <productName>{product}</productName>\n"
            f"      <quantity>{quantity}</quantity>\n"
            f"      <USPrice>{price}</USPrice>\n"
            f"{comment}"
            f"    </item>\n"
        )
    return (
        '<purchaseOrder orderDate="1999-10-20">\n'
        '  <shipTo country="US">\n'
        "    <name>Alice Smith</name>\n"
        "    <street>123 Maple Street</street>\n"
        "    <city>Mill Valley</city>\n"
        "    <state>CA</state>\n"
        "    <zip>90952</zip>\n"
        "  </shipTo>\n"
        '  <billTo country="US">\n'
        "    <name>Robert Smith</name>\n"
        "    <street>8 Oak Avenue</street>\n"
        "    <city>Old Town</city>\n"
        "    <state>PA</state>\n"
        "    <zip>95819</zip>\n"
        "  </billTo>\n"
        "  <items>\n" + "".join(items) + "  </items>\n"
        "</purchaseOrder>\n"
    )


def build_typed_purchase_order(binding, item_count: int, seed: int = 7):
    """Build the same order through the typed (V-DOM) API."""
    rng = random.Random(seed)
    factory = binding.factory
    items = []
    for index in range(item_count):
        product = _PRODUCTS[index % len(_PRODUCTS)]
        sku = f"{rng.randint(100, 999)}-{chr(65 + index % 26)}{chr(65 + (index // 26) % 26)}"
        quantity = rng.randint(1, 99)
        price = f"{rng.randint(1, 500)}.{rng.randint(0, 99):02d}"
        children = [
            factory.create_product_name(product),
            factory.create_quantity(quantity),
            factory.create_us_price(price),
        ]
        if index % 3 == 0:
            children.append(factory.create_comment(f"note {index}"))
        items.append(factory.create_item(*children, part_num=sku))
    return factory.create_purchase_order(
        factory.create_ship_to(
            factory.create_name("Alice Smith"),
            factory.create_street("123 Maple Street"),
            factory.create_city("Mill Valley"),
            factory.create_state("CA"),
            factory.create_zip("90952"),
        ),
        factory.create_bill_to(
            factory.create_name("Robert Smith"),
            factory.create_street("8 Oak Avenue"),
            factory.create_city("Old Town"),
            factory.create_state("PA"),
            factory.create_zip("95819"),
        ),
        factory.create_items(*items),
        order_date="1999-10-20",
    )


@pytest.fixture(scope="session")
def po_binding():
    return bind(PURCHASE_ORDER_SCHEMA)


@pytest.fixture(scope="session")
def wml_binding():
    return bind(WML_SCHEMA)


@pytest.fixture(scope="session")
def po_text_small():
    return purchase_order_text(10)


@pytest.fixture(scope="session")
def po_text_medium():
    return purchase_order_text(100)


@pytest.fixture(scope="session")
def po_text_large():
    return purchase_order_text(1000)

"""Ablation — incremental append checking vs full re-validation.

`parent.add(child)` resumes the content DFA from a cached state (O(1)
per append) instead of re-walking every child (O(n)).  This bench pins
the win and a test pins the equivalence: interleaving a slow-path
mutation invalidates the cache, and verdicts never differ from a full
check.
"""

import pytest

from repro.errors import VdomTypeError


def build_options(factory, count):
    select = factory.create_select(
        factory.create_option("..", value="/"), name="d"
    )
    for index in range(count):
        select.add(factory.create_option(f"o{index}", value=f"/{index}"))
    return select


@pytest.mark.parametrize("count", (50, 200, 800))
def test_bench_incremental_append_loop(benchmark, wml_binding, count):
    factory = wml_binding.factory
    select = benchmark(build_options, factory, count)
    assert len(select.child_elements()) == count + 1


def test_incremental_and_full_check_agree(wml_binding):
    factory = wml_binding.factory
    select = build_options(factory, 50)
    select.check_valid_deep()  # full check approves the fast-path result

    # A slow-path mutation (remove) invalidates the cache...
    select.remove_child(select.child_elements()[0])
    # ...and subsequent appends still work and stay valid.
    select.add(factory.create_option("again", value="/x"))
    select.check_valid_deep()

    # Fast-path rejections leave the tree untouched.
    before = len(select.child_elements())
    with pytest.raises(VdomTypeError):
        select.add(factory.create_p())
    assert len(select.child_elements()) == before
    select.check_valid_deep()


def test_incremental_respects_completeness(po_binding):
    """An append that would leave content incomplete is rejected even
    on the fast path (shipTo after shipTo is never acceptable)."""
    factory = po_binding.factory
    order = factory.create_purchase_order(
        factory.create_ship_to(
            factory.create_name("n"), factory.create_street("s"),
            factory.create_city("c"), factory.create_state("st"),
            factory.create_zip("1"),
        ),
        factory.create_bill_to(
            factory.create_name("n"), factory.create_street("s"),
            factory.create_city("c"), factory.create_state("st"),
            factory.create_zip("2"),
        ),
        factory.create_items(),
    )
    with pytest.raises(VdomTypeError):
        order.append_child(factory.create_comment("after items"))

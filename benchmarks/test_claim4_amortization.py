"""CLAIM-4 — preprocessing is static and pays once.

The server-page baseline must validate every rendered page to match
V-DOM's guarantee; P-XML checks the template once and renders with no
validation at all.  This experiment renders N pages under both regimes
and locates the crossover.
"""

import time


from repro.dom import parse_document
from repro.pxml import Template
from repro.serverpages import ServerPage
from repro.xsd import SchemaValidator

from benchmarks.test_fig8_serverpage import CONTEXT, DIRECTORY_PAGE

PXML_OPTION = '<option value="$value$">$label:text$</option>'
PXML_PAGE = "<p><b>$current:text$</b><br/>$s:select$<br/></p>"


def render_pxml(binding, option_template, page_template):
    factory = binding.factory
    select = factory.create_select(
        option_template.render(value=CONTEXT["parentDir"], label=".."),
        name="directories",
    )
    for sub_dir, label in CONTEXT["subDirs"]:
        select.add(option_template.render(value=sub_dir, label=label))
    page = page_template.render(current=CONTEXT["currentDir"], s=select)
    return factory.create_wml(
        factory.create_card(page, id="dirs", title="Directories")
    )


def render_baseline_with_validation(page, validator):
    output = page.render(**CONTEXT)
    document = parse_document(output)
    assert validator.validate(document) == []
    return output


def test_bench_pxml_render_amortized(benchmark, wml_binding):
    """Per-render cost after the one-time check (the amortized regime)."""
    option_template = Template(wml_binding, PXML_OPTION)
    page_template = Template(wml_binding, PXML_PAGE)
    result = benchmark(render_pxml, wml_binding, option_template, page_template)
    assert result.tag_name == "wml"


def test_bench_baseline_render_plus_validate(benchmark, wml_binding):
    """Per-render cost of the checked baseline."""
    page = ServerPage(DIRECTORY_PAGE)
    validator = SchemaValidator(wml_binding.schema)
    output = benchmark(render_baseline_with_validation, page, validator)
    assert "<select" in output


def test_bench_baseline_render_unchecked(benchmark):
    """Per-render cost of the unchecked baseline (no guarantee at all)."""
    page = ServerPage(DIRECTORY_PAGE)
    output = benchmark(page.render, **CONTEXT)
    assert "<select" in output


def test_claim4_crossover(wml_binding, capsys):
    """Total cost over N renders: find where P-XML's pay-once check wins
    against render+validate."""
    validator = SchemaValidator(wml_binding.schema)
    page = ServerPage(DIRECTORY_PAGE)

    def total_baseline(n):
        start = time.perf_counter()
        for __ in range(n):
            render_baseline_with_validation(page, validator)
        return time.perf_counter() - start

    def total_pxml(n):
        start = time.perf_counter()
        option_template = Template(wml_binding, PXML_OPTION)
        page_template = Template(wml_binding, PXML_PAGE)
        for __ in range(n):
            render_pxml(wml_binding, option_template, page_template)
        return time.perf_counter() - start

    print("\nN       baseline+validate(s)  pxml-total(s)")
    crossover = None
    for n in (1, 10, 100, 500):
        baseline = total_baseline(n)
        pxml = total_pxml(n)
        print(f"{n:6d}  {baseline:.6f}              {pxml:.6f}")
        if crossover is None and pxml < baseline:
            crossover = n
    # Validation costs grow with every render; the compiled template's
    # fixed check cost amortizes — by N=500 P-XML must be ahead.
    assert total_pxml(500) < total_baseline(500)

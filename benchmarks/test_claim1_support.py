"""Support code for the CLAIM-1 matrix (no tests here).

Maps each corpus fault to the stage that detects it per approach.
``FAULT_TEMPLATES`` expresses the statically-expressible faults as P-XML
constructors; faults that only exist in runtime data (a value computed
at request time) are data-dependent and legitimately invisible to the
static checker — the paper's P-XML pushes those to the typed constructor
at render time, i.e. the V-DOM stage.
"""

from repro import Template, parse_document, validate
from repro.errors import PxmlStaticError, VdomTypeError
from repro.schemas import PURCHASE_ORDER_INVALID_DOCUMENTS

#: Faults expressible as literal templates (no holes) → static stage.
FAULT_TEMPLATES = {
    "bad-quantity": "<quantity>100</quantity>",
    "bad-sku": (
        '<item partNum="87-AA"><productName>x</productName>'
        "<quantity>1</quantity><USPrice>1.0</USPrice></item>"
    ),
    "bad-price": (
        "<item partNum='123-AB'><productName>x</productName>"
        "<quantity>1</quantity><USPrice>expensive</USPrice></item>"
    ),
    "bad-date": '<purchaseOrder orderDate="late autumn">'
    "$s:shipTo$$b:billTo$$i:items$</purchaseOrder>",
    "wrong-country": (
        '<shipTo country="DE"><name>n</name><street>s</street>'
        "<city>c</city><state>st</state><zip>1</zip></shipTo>"
    ),
    "missing-child": (
        "<shipTo><name>n</name><street>s</street>"
        "<state>st</state><zip>1</zip></shipTo>"
    ),
    "wrong-element-order": (
        "<purchaseOrder>$s:shipTo$$b:billTo$$i:items$"
        "$c:comment$</purchaseOrder>"
    ),
    "missing-required-attribute": (
        "<item><productName>x</productName><quantity>1</quantity>"
        "<USPrice>1.0</USPrice></item>"
    ),
    "undeclared-element": (
        "<item partNum='123-AB'><productName>x</productName>"
        "<color>red</color><quantity>1</quantity>"
        "<USPrice>1.0</USPrice></item>"
    ),
    "text-in-element-content": "<items>loose text</items>",
}


def detection_stage_dom(binding, fault: str) -> str:
    """Generic DOM: build always succeeds; only validation notices."""
    document = parse_document(PURCHASE_ORDER_INVALID_DOCUMENTS[fault])
    assert document.document_element is not None  # building succeeded
    if validate(document, binding.schema):
        return "validation"
    return "undetected"


def detection_stage_vdom(binding, fault: str) -> str:
    """V-DOM: typed construction (unmarshalling) refuses the fault."""
    document = parse_document(PURCHASE_ORDER_INVALID_DOCUMENTS[fault])
    try:
        binding.from_dom(document.document_element)
    except VdomTypeError:
        return "construction"
    return "undetected"


def detection_stage_pxml(binding, fault: str) -> str | None:
    """P-XML: a literal-template rendering of the fault fails statically.

    Returns ``None`` for faults with no static rendering in the corpus.
    """
    template_source = FAULT_TEMPLATES.get(fault)
    if template_source is None:
        return None
    try:
        Template(binding, template_source)
    except PxmlStaticError:
        return "static"
    return "undetected"

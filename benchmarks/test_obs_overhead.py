"""OBS OVERHEAD — the instrumentation must be free while disabled.

``repro.obs`` threads counters and timers through every stage that
PRs 2 and 3 made fast: the fused ingest loop, segment rendering, the
cache manager.  The deal is that a disabled instrument costs one
module-global read and a branch — so the throughput floors those PRs
shipped must still hold with the instrumentation compiled in and
switched off.  This experiment holds the line:

* **call-site cost** — a disabled ``count``/``timeit``/``span`` stays
  under a microsecond-scale bound (generous for CI runners; the real
  cost is tens of nanoseconds),
* **render floor** — ``render_text`` still clears the PR 2 speedup
  floor over the DOM route on the same benchmark template,
* **ingest floor** — fused ingest still clears the PR 3 speedup floor
  over the seed pipeline on the same corpus,
* **enabled cost** — for scale, the enabled-mode render throughput is
  recorded (no floor: collection is opt-in and allowed to cost).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer iterations, relaxed floors,
* ``REPRO_BENCH_JSON=<path>``  — where to write the JSON artifact
  (default: ``BENCH_obs_overhead.json``).
"""

import json
import os
import time

import pytest

from benchmarks.conftest import purchase_order_text
from benchmarks.test_parse_ingest import _seed_pipeline
from benchmarks.test_render_throughput import PO_TEMPLATE, PO_VALUES
from repro import obs
from repro.core import bind
from repro.dom.serialize import serialize
from repro.ingest import fused_parse
from repro.pxml import Template
from repro.schemas import PURCHASE_ORDER_SCHEMA

#: PR 2/3 shipped 3x floors; this experiment re-asserts them with the
#: obs call sites present and disabled
REQUIRED_SPEEDUP = 3.0
QUICK_SPEEDUP = 1.5

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
CALLS = 20_000 if QUICK else 200_000
RENDERS = 300 if QUICK else 2000
ITEMS = 100 if QUICK else 300
REPEATS = 3 if QUICK else 5
FLOOR = QUICK_SPEEDUP if QUICK else REQUIRED_SPEEDUP

#: worst tolerated per-call cost of a *disabled* instrument — orders of
#: magnitude above the real cost, tight enough to catch accidental work
#: (string formatting, dict writes) sneaking ahead of the enabled-check
MAX_DISABLED_CALL_US = 2.0

#: module-level result sink, flushed at teardown
RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get("REPRO_BENCH_JSON", "BENCH_obs_overhead.json")
    if target and RESULTS:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test starts disabled and leaves no state behind."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _best_seconds(action, repeats=REPEATS):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        action()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def test_disabled_call_sites_are_nanoscale(capsys):
    """A disabled count/timeit/span must not do per-call work."""

    def burn_count():
        for _ in range(CALLS):
            obs.count("bench.counter", route="fused")

    def burn_timed():
        for _ in range(CALLS):
            with obs.timeit("bench.timer"):
                pass

    count_us = _best_seconds(burn_count) / CALLS * 1e6
    timed_us = _best_seconds(burn_timed) / CALLS * 1e6
    RESULTS["disabled_call_cost"] = {
        "count_us_per_call": round(count_us, 4),
        "timeit_us_per_call": round(timed_us, 4),
        "calls": CALLS,
        "budget_us": MAX_DISABLED_CALL_US,
    }
    print(
        f"\ndisabled call cost: count {count_us:.3f}us  "
        f"timeit {timed_us:.3f}us  (budget {MAX_DISABLED_CALL_US}us)"
    )
    assert count_us < MAX_DISABLED_CALL_US
    assert timed_us < MAX_DISABLED_CALL_US
    assert obs.snapshot()["counters"] == {}


def test_render_floor_holds_with_obs_disabled(capsys):
    """The PR 2 criterion, re-run with instrumentation present."""
    binding = bind(PURCHASE_ORDER_SCHEMA)
    template = Template(binding, PO_TEMPLATE)
    assert template.text_source is not None

    def text_route():
        for _ in range(RENDERS):
            template.render_text(**PO_VALUES)

    def dom_route():
        for _ in range(RENDERS):
            serialize(template.render(**PO_VALUES))

    text_rps = RENDERS / _best_seconds(text_route)
    dom_rps = RENDERS / _best_seconds(dom_route)
    obs.enable(reset=True)
    enabled_rps = RENDERS / _best_seconds(text_route)
    obs.disable()
    speedup = text_rps / dom_rps
    RESULTS["render"] = {
        "text_renders_per_sec": round(text_rps, 1),
        "dom_renders_per_sec": round(dom_rps, 1),
        "text_enabled_renders_per_sec": round(enabled_rps, 1),
        "speedup_disabled": round(speedup, 2),
        "floor": FLOOR,
        "renders": RENDERS,
    }
    print(
        f"\nrender with obs off: text {text_rps:.0f}/s  dom {dom_rps:.0f}/s "
        f"-> {speedup:.2f}x (floor {FLOOR}x); enabled {enabled_rps:.0f}/s"
    )
    assert speedup >= FLOOR, (
        f"render_text with disabled obs is only {speedup:.2f}x the DOM "
        f"route (need >= {FLOOR}x): instrumentation is not free"
    )


def test_ingest_floor_holds_with_obs_disabled(capsys):
    """The PR 3 criterion, re-run with instrumentation present."""
    binding = bind(PURCHASE_ORDER_SCHEMA)
    text = purchase_order_text(ITEMS)
    fused = _best_seconds(lambda: fused_parse(binding, text))
    seed = _best_seconds(lambda: _seed_pipeline(binding, text))
    speedup = seed / fused
    RESULTS["ingest"] = {
        "seed_ms": round(seed * 1000, 2),
        "fused_ms": round(fused * 1000, 2),
        "speedup_disabled": round(speedup, 2),
        "floor": FLOOR,
        "document_bytes": len(text),
    }
    print(
        f"\ningest with obs off: seed {seed * 1000:.1f}ms  "
        f"fused {fused * 1000:.1f}ms -> {speedup:.2f}x (floor {FLOOR}x)"
    )
    assert speedup >= FLOOR, (
        f"fused ingest with disabled obs is only {speedup:.2f}x the seed "
        f"pipeline (need >= {FLOOR}x): instrumentation is not free"
    )

"""Ablation — Glushkov DFA vs naive backtracking content matching.

DESIGN.md calls out the automaton construction as a design choice worth
ablating: the paper's ASU-style DFA matches children in O(n), whereas a
direct backtracking interpretation of the particle tree can go
exponential on ambiguous models and is linear-with-large-constants even
on friendly ones.
"""


from repro.automata import (
    Alternation,
    Epsilon,
    Regex,
    Repetition,
    Sequence,
    Symbol,
    UNBOUNDED,
    build_dfa,
)


def backtrack_match(regex: Regex, word: tuple, start: int = 0) -> set[int]:
    """Positions reachable after matching a prefix from *start* (naive)."""
    if isinstance(regex, Epsilon):
        return {start}
    if isinstance(regex, Symbol):
        if start < len(word) and word[start] == regex.payload:
            return {start + 1}
        return set()
    if isinstance(regex, Sequence):
        positions = {start}
        for part in regex.parts:
            next_positions: set[int] = set()
            for position in positions:
                next_positions |= backtrack_match(part, word, position)
            positions = next_positions
            if not positions:
                return set()
        return positions
    if isinstance(regex, Alternation):
        positions: set[int] = set()
        for alternative in regex.alternatives:
            positions |= backtrack_match(alternative, word, start)
        return positions
    assert isinstance(regex, Repetition)
    count = 0
    frontier = {start}
    positions: set[int] = set() if regex.min_occurs > 0 else {start}
    limit = (
        regex.max_occurs if regex.max_occurs != UNBOUNDED else len(word) + 1
    )
    while count < limit and frontier:
        next_frontier: set[int] = set()
        for position in frontier:
            next_frontier |= backtrack_match(regex.child, word, position)
        count += 1
        frontier = next_frontier - frontier if next_frontier == frontier else next_frontier
        if count >= regex.min_occurs:
            positions |= frontier
        if not next_frontier:
            break
    return positions


def backtrack_accepts(regex: Regex, word: list) -> bool:
    return len(word) in backtrack_match(regex, tuple(word), 0)


# items: (item)* with item alternating across 3 kinds
WORKLOAD_REGEX = Sequence(
    [
        Symbol("shipTo"),
        Symbol("billTo"),
        Repetition(Symbol("comment"), 0, 1),
        Repetition(
            Alternation([Symbol("itemA"), Symbol("itemB"), Symbol("itemC")]),
            0,
            UNBOUNDED,
        ),
    ]
)

WORKLOAD_WORD = ["shipTo", "billTo", "comment"] + [
    f"item{'ABC'[i % 3]}" for i in range(300)
]


def test_ablation_agreement():
    dfa = build_dfa(WORKLOAD_REGEX)
    assert dfa.accepts(WORKLOAD_WORD)
    assert backtrack_accepts(WORKLOAD_REGEX, WORKLOAD_WORD)
    bad = WORKLOAD_WORD + ["shipTo"]
    assert not dfa.accepts(bad)
    assert not backtrack_accepts(WORKLOAD_REGEX, bad)


def test_bench_dfa_build_once_match_many(benchmark):
    dfa = build_dfa(WORKLOAD_REGEX)

    def run():
        return dfa.accepts(WORKLOAD_WORD)

    assert benchmark(run)


def test_bench_backtracking_match(benchmark):
    def run():
        return backtrack_accepts(WORKLOAD_REGEX, WORKLOAD_WORD)

    assert benchmark(run)


def test_bench_dfa_including_build(benchmark):
    """Build + match, for fairness against the build-free backtracker."""

    def run():
        return build_dfa(WORKLOAD_REGEX).accepts(WORKLOAD_WORD)

    assert benchmark(run)

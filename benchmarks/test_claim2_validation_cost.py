"""CLAIM-2 — "the expensive validation at run-time".

The paper says low-level bindings pay a full validation walk per
document, while V-DOM documents are valid by construction.  Sweep the
document size and measure each strategy end-to-end:

* ``dom``:        parse → DOM → **validate** → serialize (baseline),
* ``vdom-build``: build typed tree directly → serialize (no validation),
* ``vdom-load``:  parse → typed unmarshal (validation fused into build),
* ``novalidate``: parse → serialize without any checking — the floor.

Expected shape: ``vdom-build`` ≈ ``dom`` (enforcement replaces the
validation walk, paying DFA costs during construction instead), both
bounded below by ``novalidate``; the win is not wall-clock but *when*
errors surface — with construction-time enforcement the validation walk
can be skipped entirely because it can never fail.
"""

import pytest

from repro.dom import parse_document, serialize
from repro.xsd import SchemaValidator

from benchmarks.conftest import build_typed_purchase_order, purchase_order_text

SIZES = (10, 100, 1000)


@pytest.mark.parametrize("size", SIZES)
def test_bench_dom_parse_validate_serialize(benchmark, po_binding, size):
    text = purchase_order_text(size)
    validator = SchemaValidator(po_binding.schema)

    def run():
        document = parse_document(text)
        assert validator.validate(document) == []
        return serialize(document)

    assert benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_bench_vdom_build_serialize(benchmark, po_binding, size):
    def run():
        typed = build_typed_purchase_order(po_binding, size)
        return serialize(po_binding.document(typed))

    assert benchmark(run)


@pytest.mark.parametrize("size", SIZES)
def test_bench_vdom_parse_unmarshal(benchmark, po_binding, size):
    text = purchase_order_text(size)

    def run():
        document = parse_document(text)
        return po_binding.from_dom(document.document_element)

    assert benchmark(run).tag_name == "purchaseOrder"


@pytest.mark.parametrize("size", SIZES)
def test_bench_floor_parse_serialize(benchmark, size):
    text = purchase_order_text(size)

    def run():
        return serialize(parse_document(text))

    assert benchmark(run)


def test_claim2_shape(po_binding, capsys):
    """Sanity on the claim's shape with one-shot timings."""
    import time

    rows = []
    for size in SIZES:
        text = purchase_order_text(size)
        validator = SchemaValidator(po_binding.schema)

        start = time.perf_counter()
        document = parse_document(text)
        parse_cost = time.perf_counter() - start

        start = time.perf_counter()
        assert validator.validate(document) == []
        validate_cost = time.perf_counter() - start

        start = time.perf_counter()
        build_typed_purchase_order(po_binding, size)
        build_cost = time.perf_counter() - start

        rows.append((size, parse_cost, validate_cost, build_cost))
    print("\nitems  parse(s)   validate(s)  vdom-build(s)")
    for size, parse_cost, validate_cost, build_cost in rows:
        print(
            f"{size:5d}  {parse_cost:.6f}   {validate_cost:.6f}     "
            f"{build_cost:.6f}"
        )
    # The validation walk grows with document size — the cost V-DOM
    # construction renders unnecessary.
    assert rows[-1][2] > rows[0][2]

"""CLAIM-1 — the error-detection-stage matrix.

The paper's argument is qualitative: generic approaches find invalid
documents "not until runtime requiring extensive testing", while V-DOM /
P-XML find them at construction / statically.  This experiment makes the
matrix measurable: for every fault in the corpus it records *which stage*
detects it under each approach and prints the paper-style summary table;
the benchmark measures time-to-detection for each stage.
"""


from repro import Template, parse_document, validate
from repro.errors import PxmlStaticError, VdomTypeError
from repro.schemas import PURCHASE_ORDER_INVALID_DOCUMENTS

from benchmarks.test_claim1_support import (
    FAULT_TEMPLATES,
    detection_stage_dom,
    detection_stage_pxml,
    detection_stage_vdom,
)


def test_claim1_matrix(po_binding, capsys):
    """Regenerate the stage matrix; V-DOM/P-XML always detect earlier."""
    stage_rank = {
        "static": 0,  # before the program runs (P-XML)
        "construction": 1,  # while building (V-DOM)
        "validation": 2,  # post-hoc validator walk (generic DOM)
        "undetected": 3,
    }
    rows = []
    for fault in sorted(PURCHASE_ORDER_INVALID_DOCUMENTS):
        dom_stage = detection_stage_dom(po_binding, fault)
        vdom_stage = detection_stage_vdom(po_binding, fault)
        pxml_stage = detection_stage_pxml(po_binding, fault)
        rows.append((fault, dom_stage, vdom_stage, pxml_stage))
        assert dom_stage == "validation"
        assert vdom_stage == "construction"
        assert stage_rank[vdom_stage] < stage_rank[dom_stage]
        if pxml_stage is not None:
            assert pxml_stage == "static"
            assert stage_rank[pxml_stage] < stage_rank[vdom_stage]
    print("\nfault                            DOM          V-DOM         P-XML")
    for fault, dom_stage, vdom_stage, pxml_stage in rows:
        print(
            f"{fault:32s} {dom_stage:12s} {vdom_stage:12s} "
            f"{pxml_stage or 'n/a (data-dependent)'}"
        )


def test_bench_detection_dom(benchmark, po_binding):
    """Time to detect 'bad-quantity' via parse + full validation."""
    text = PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"]

    def run():
        return validate(parse_document(text), po_binding.schema)

    errors = benchmark(run)
    assert errors


def test_bench_detection_vdom(benchmark, po_binding):
    """Time to detect the same fault via typed unmarshalling."""
    text = PURCHASE_ORDER_INVALID_DOCUMENTS["bad-quantity"]

    def run():
        document = parse_document(text)
        try:
            po_binding.from_dom(document.document_element)
        except VdomTypeError as error:
            return error
        raise AssertionError("fault missed")

    assert benchmark(run) is not None


def test_bench_detection_pxml_static(benchmark, po_binding):
    """Time to detect the fault statically, no document at all."""

    def run():
        try:
            Template(po_binding, FAULT_TEMPLATES["bad-quantity"])
        except PxmlStaticError as error:
            return error
        raise AssertionError("fault missed")

    assert benchmark(run) is not None

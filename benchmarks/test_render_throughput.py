"""RENDER — the serving hot path with and without the DOM.

The segment compiler moves serialization work to preparation time: a
checked template becomes precomputed static markup runs plus dynamic
hole slots, and ``Template.render_text`` emits the final string without
building a ``TypedElement`` tree.  This experiment measures renders/sec
for the two routes on the paper's own languages:

* **dom**  — ``serialize(template.render(**values))``: typed construction
  (validity checks included) followed by the iterative serializer,
* **text** — ``template.render_text(**values)``: direct string emission
  with the same per-hole validation.

Acceptance floor (the ISSUE's criterion): ``render_text`` must clear
**3x** the DOM route's renders/sec on the purchase-order benchmark
template (1.5x in ``REPRO_BENCH_QUICK`` mode, where noisy CI runners
and tiny iteration counts make the full floor flaky).  The XHTML mixed
template and an element-hole variant are measured and recorded without
a floor — element holes share the subtree serialization cost between
both routes, so their speedup is structurally smaller.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer iterations, relaxed floor,
* ``REPRO_BENCH_JSON=<path>``  — where to write the JSON artifact
  (default: ``BENCH_render_throughput.json``).
"""

import json
import os
import time

import pytest

from benchmarks import bench_floor
from repro.core import bind
from repro.dom.serialize import serialize
from repro.pxml import Template
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.schemas.xhtml import XHTML_SUBSET_SCHEMA

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
RENDERS = 300 if QUICK else 2000
REPEATS = 3 if QUICK else 5
#: the ISSUE's acceptance criterion (CI-noise-tolerant in quick mode),
#: shared with the bench-gate via benchmarks/floors.json
FLOOR = bench_floor("render_text_speedup", QUICK)

#: module-level result sink, flushed at teardown
RESULTS: dict[str, dict[str, float]] = {}

#: the purchase-order benchmark template: text holes only, so the two
#: routes differ exactly by "build a tree and walk it" vs "emit"
PO_TEMPLATE = """<purchaseOrder orderDate="$d$">
  <shipTo country="US">
    <name>$ship_name$</name>
    <street>$ship_street$</street>
    <city>Mill Valley</city>
    <state>CA</state>
    <zip>90952</zip>
  </shipTo>
  <billTo country="US">
    <name>$bill_name$</name>
    <street>8 Oak Avenue</street>
    <city>Old Town</city>
    <state>PA</state>
    <zip>95819</zip>
  </billTo>
  <comment>$c$</comment>
  <items>
    <item partNum="872-AA">
      <productName>$p1$</productName>
      <quantity>$q1$</quantity>
      <USPrice>148.95</USPrice>
    </item>
    <item partNum="926-AA">
      <productName>$p2$</productName>
      <quantity>1</quantity>
      <USPrice>39.98</USPrice>
      <shipDate>1999-05-21</shipDate>
    </item>
  </items>
</purchaseOrder>"""

PO_VALUES = {
    "d": "1999-10-20",
    "ship_name": "Alice Smith",
    "ship_street": "123 Maple Street",
    "bill_name": "Robert Smith & Sons",
    "c": "Hurry, my lawn is going wild",
    "p1": "Lawnmower",
    "q1": 1,
    "p2": "Baby Monitor",
}

XHTML_TEMPLATE = (
    "<p>last updated: <b>$when:text$</b> by <i>$who:text$</i>"
    " — see $link:a$ for details</p>"
)


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get(
        "REPRO_BENCH_JSON", "BENCH_render_throughput.json"
    )
    if target and RESULTS:
        RESULTS["_meta"] = {"quick": QUICK}
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


def _renders_per_second(action, renders=RENDERS, repeats=REPEATS):
    """Best-of-*repeats* renders/sec (max biases against warmup noise)."""
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(renders):
            action()
        elapsed = time.perf_counter() - start
        rates.append(renders / elapsed)
    return max(rates)


def _measure(template, values):
    dom_rps = _renders_per_second(
        lambda: serialize(template.render(**values))
    )
    text_rps = _renders_per_second(lambda: template.render_text(**values))
    return {
        "dom_renders_per_sec": round(dom_rps, 1),
        "text_renders_per_sec": round(text_rps, 1),
        "speedup": round(text_rps / dom_rps, 2),
        "renders": RENDERS,
        "repeats": REPEATS,
        "output_bytes": len(template.render_text(**values)),
    }


def test_purchase_order_throughput(capsys):
    """The headline number: render_text vs render+serialize, with floor."""
    binding = bind(PURCHASE_ORDER_SCHEMA)
    template = Template(binding, PO_TEMPLATE)
    assert template.text_source is not None, "template must segment-compile"
    # Correctness precedes speed: both routes must emit identical bytes.
    assert template.render_text(**PO_VALUES) == serialize(
        template.render(**PO_VALUES)
    )
    result = _measure(template, PO_VALUES)
    RESULTS["purchase_order:text_holes"] = result
    print(
        f"\npurchase_order: dom {result['dom_renders_per_sec']:.0f}/s  "
        f"text {result['text_renders_per_sec']:.0f}/s  "
        f"speedup {result['speedup']:.2f}x"
    )
    assert result["speedup"] >= FLOOR, (
        f"render_text is only {result['speedup']:.2f}x the DOM route "
        f"(need >= {FLOOR}x)"
    )


def test_element_hole_throughput(capsys):
    """Element holes: subtree serialization is shared, so no floor.

    Adopting a typed subtree into a render steals it from the previous
    render's tree (and ``<items>`` requires ``item+``, so the theft
    would be rejected) — each iteration therefore builds a fresh item,
    on both routes, exactly as a serving loop would.
    """
    binding = bind(PURCHASE_ORDER_SCHEMA)
    item_template = Template(
        binding,
        '<item partNum="872-AA"><productName>Lawnmower</productName>'
        "<quantity>1</quantity><USPrice>148.95</USPrice></item>",
    )
    items_template = Template(binding, "<items>$one:item$</items>")
    assert items_template.render_text(
        one=item_template.render()
    ) == serialize(items_template.render(one=item_template.render()))

    dom_rps = _renders_per_second(
        lambda: serialize(items_template.render(one=item_template.render()))
    )
    text_rps = _renders_per_second(
        lambda: items_template.render_text(one=item_template.render())
    )
    result = {
        "dom_renders_per_sec": round(dom_rps, 1),
        "text_renders_per_sec": round(text_rps, 1),
        "speedup": round(text_rps / dom_rps, 2),
        "renders": RENDERS,
        "repeats": REPEATS,
    }
    RESULTS["purchase_order:element_holes"] = result
    print(
        f"\nelement_holes: dom {result['dom_renders_per_sec']:.0f}/s  "
        f"text {result['text_renders_per_sec']:.0f}/s  "
        f"speedup {result['speedup']:.2f}x"
    )
    # Still must never be slower than the route it replaces.
    assert result["speedup"] >= 1.0


def test_xhtml_mixed_throughput(capsys):
    """Mixed content with text and element holes, recorded for the doc.

    ``InlineType`` is a ``(b|i|a|br)*`` mixed model, so re-adopting the
    same link element across renders stays legal — the hole value can
    be shared between iterations here.
    """
    binding = bind(XHTML_SUBSET_SCHEMA)
    link = Template(
        binding, '<a href="/changes">change log</a>'
    ).render()
    template = Template(binding, XHTML_TEMPLATE)
    values = {"when": "2026-08-05", "who": "the build bot", "link": link}
    fast = template.render_text(**values)  # before any adoption
    assert fast == serialize(template.render(**values))
    result = _measure(template, values)
    RESULTS["xhtml:mixed"] = result
    print(
        f"\nxhtml_mixed: dom {result['dom_renders_per_sec']:.0f}/s  "
        f"text {result['text_renders_per_sec']:.0f}/s  "
        f"speedup {result['speedup']:.2f}x"
    )
    assert result["speedup"] >= 1.0

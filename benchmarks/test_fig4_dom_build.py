"""FIG4 — building the purchase-order fragment with the generic DOM.

The untyped construction path: nothing stops an invalid tree, and the
cost of finding out is a separate validation walk (measured in CLAIM-2).
"""

from repro.dom import Document, serialize


def build_fig4_fragment():
    """The Fig. 4 tree: purchaseOrder with its four children."""
    document = Document()
    root = document.create_element("purchaseOrder")
    root.set_attribute("orderDate", "1999-10-20")
    document.append_child(root)
    for name, fields in (
        ("shipTo", ("Alice Smith", "123 Maple Street", "Mill Valley", "CA", "90952")),
        ("billTo", ("Robert Smith", "8 Oak Avenue", "Old Town", "PA", "95819")),
    ):
        address = document.create_element(name)
        address.set_attribute("country", "US")
        for tag, value in zip(("name", "street", "city", "state", "zip"), fields):
            child = document.create_element(tag)
            child.append_child(document.create_text_node(value))
            address.append_child(child)
        root.append_child(address)
    comment = document.create_element("comment")
    comment.append_child(
        document.create_text_node("Hurry, my lawn is going wild")
    )
    root.append_child(comment)
    items = document.create_element("items")
    root.append_child(items)
    return document


def test_fig4_artifact():
    document = build_fig4_fragment()
    root = document.document_element
    assert [c.tag_name for c in root.child_elements()] == [
        "shipTo", "billTo", "comment", "items",
    ]


def test_fig4_dom_accepts_invalid_trees():
    """The Fig. 4 disadvantage: an invalid tree builds without protest."""
    document = build_fig4_fragment()
    root = document.document_element
    root.append_child(document.create_element("notInTheSchema"))
    assert "notInTheSchema" in serialize(document)


def test_bench_dom_build_fragment(benchmark):
    document = benchmark(build_fig4_fragment)
    assert document.document_element is not None

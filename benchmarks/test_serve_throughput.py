"""SERVE — sustained request throughput of the HTTP tier.

The segment pipeline's promise is "guaranteed-valid markup at string
cost"; :mod:`repro.serve` puts a socket in front of it.  This
experiment measures how much of the ``render_text`` rate survives the
trip through HTTP framing — an asyncio keep-alive client hammering one
template route and reading complete, ``Content-Length``-framed
responses.

Two checks gate the result:

* **byte parity** — the response body must be byte-identical to calling
  ``Template.render_text`` directly; the serving tier may add headers,
  never touch the payload;
* **throughput floor** — sustained requests/sec must clear a deliberately
  conservative floor (CI boxes are noisy and single-core; the floor
  catches order-of-magnitude regressions such as an accidental
  per-request recompile, not scheduler jitter).

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer requests, relaxed floor,
* ``REPRO_BENCH_JSON=<path>``  — where to write the JSON artifact
  (default: ``BENCH_serve_throughput.json``).
"""

import asyncio
import json
import os
import time

import pytest

from repro.pxml import Template
from repro.serve import ReproServer, RouteTable

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REQUESTS = 150 if QUICK else 800
REPEATS = 2 if QUICK else 4

#: requests/sec the serving tier must sustain (order-of-magnitude floor)
FLOOR_RPS = 50 if QUICK else 200

#: module-level result sink, flushed at teardown
RESULTS: dict[str, dict] = {}

SHIP_TO = """\
<shipTo country="US">
  <name>$name$</name>
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""

TARGET = "/ship_to?name=Alice%20Smith"
HOLE_VALUES = {"name": "Alice Smith"}


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get("REPRO_BENCH_JSON", "BENCH_serve_throughput.json")
    if target and RESULTS:
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


def _routes(po_binding) -> RouteTable:
    table = RouteTable()
    table.add_template("/ship_to", Template(po_binding, SHIP_TO))
    return table


async def _read_response(reader) -> bytes:
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    return await reader.readexactly(length)


async def _client_burst(port: int, count: int) -> bytes:
    """*count* keep-alive requests on one connection; returns last body."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = f"GET {TARGET} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
    body = b""
    for _ in range(count):
        writer.write(payload)
        await writer.drain()
        body = await _read_response(reader)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return body


async def _measure(po_binding) -> tuple[dict, bytes]:
    server = ReproServer(_routes(po_binding), port=0, request_timeout=30.0)
    await server.start()
    try:
        await _client_burst(server.port, 20)  # warmup
        rates = []
        body = b""
        for _ in range(REPEATS):
            start = time.perf_counter()
            body = await _client_burst(server.port, REQUESTS)
            elapsed = time.perf_counter() - start
            rates.append(REQUESTS / elapsed)
        result = {
            "requests_per_sec": round(max(rates), 1),
            "requests": REQUESTS,
            "repeats": REPEATS,
            "response_bytes": len(body),
            "floor_rps": FLOOR_RPS,
            "served_total": server.stats["requests"],
        }
        return result, body
    finally:
        server.request_shutdown()
        await server.drain()


def test_sustained_throughput_and_byte_parity(po_binding):
    expected = Template(po_binding, SHIP_TO).render_text(**HOLE_VALUES)
    result, body = asyncio.run(_measure(po_binding))
    # Parity first: speed means nothing if the bytes are wrong.
    assert body == expected.encode("utf-8")
    RESULTS["serve:ship_to"] = result
    print(
        f"\nserve: {result['requests_per_sec']:.0f} req/s sustained "
        f"({result['response_bytes']} bytes/response, "
        f"floor {FLOOR_RPS} req/s)"
    )
    assert result["requests_per_sec"] >= FLOOR_RPS, (
        f"serving tier sustained only {result['requests_per_sec']:.0f} "
        f"req/s (floor {FLOOR_RPS})"
    )

"""SERVE — sustained request throughput of the HTTP tier.

The segment pipeline's promise is "guaranteed-valid markup at string
cost"; :mod:`repro.serve` puts a socket in front of it.  This
experiment measures how much of the ``render_text`` rate survives the
trip through HTTP framing — an asyncio keep-alive client hammering one
template route and reading complete, ``Content-Length``-framed
responses.

Three scenarios, all sharing the same client machinery:

* ``serve:ship_to``    — the PR 5 baseline: one small template route,
  single keep-alive connection, byte-parity against ``render_text``;
* ``serve:concurrent`` — several keep-alive connections hammering the
  same route at once; records the *aggregate* requests/sec, which is
  what a real deployment sees;
* ``serve:hot_cache``  — a deliberately render-heavy route (hundreds
  of validated holes per page) served cold (``cache_entries=0``) and
  then hot (response cache enabled, same URL repeatedly).  The ratio
  ``hot_over_cold`` is the PR 6 acceptance number, and the cached,
  streamed-then-reassembled, and directly rendered bodies must all be
  byte-identical — the cache and the chunked framing may change *how*
  bytes move, never *which* bytes.

Floors come from :mod:`benchmarks` (``floors.json``) so this module and
the CI ``bench-gate`` can never disagree about the acceptable numbers.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer requests, relaxed floors,
* ``REPRO_BENCH_JSON=<path>``  — where to write the JSON artifact
  (default: ``BENCH_serve_throughput.json``).
"""

import asyncio
import json
import os
import time

import pytest

from benchmarks import bench_floor
from repro.pxml import Template
from repro.serve import ReproServer, RouteTable

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
REQUESTS = 150 if QUICK else 800
REPEATS = 2 if QUICK else 4
CONCURRENCY = 4
#: requests per run against the render-heavy route (each one evaluates
#: hundreds of validated holes, so the cold pass is genuinely slow)
HEAVY_REQUESTS = 40 if QUICK else 200

#: module-level result sink, flushed at teardown
RESULTS: dict[str, dict] = {}

SHIP_TO = """\
<shipTo country="US">
  <name>$name$</name>
  <street>123 Maple Street</street>
  <city>Mill Valley</city>
  <state>CA</state>
  <zip>90952</zip>
</shipTo>"""

TARGET = "/ship_to?name=Alice%20Smith"
HOLE_VALUES = {"name": "Alice Smith"}

#: the hot-cache workload: 150 items, each with three typed holes
#: (pattern-checked partNum, bounded quantity, decimal USPrice) —
#: 450 validations per render puts the route firmly in
#: render-dominated territory, which is exactly where a response
#: cache is supposed to pay off.
HEAVY_ITEM_COUNT = 150
HEAVY_SOURCE = "<items>{}</items>".format(
    "".join(
        f'<item partNum="$p{i}$"><productName>Widget {i}</productName>'
        f"<quantity>$q{i}$</quantity><USPrice>$u{i}$</USPrice></item>"
        for i in range(HEAVY_ITEM_COUNT)
    )
)
HEAVY_VALUES = {}
for _i in range(HEAVY_ITEM_COUNT):
    HEAVY_VALUES[f"p{_i}"] = f"{100 + _i}-AB"
    HEAVY_VALUES[f"q{_i}"] = str(1 + _i % 98)
    HEAVY_VALUES[f"u{_i}"] = f"{_i}.99"
HEAVY_QUERY = "&".join(f"{k}={v}" for k, v in HEAVY_VALUES.items())
HEAVY_TARGET = f"/order?{HEAVY_QUERY}"


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get("REPRO_BENCH_JSON", "BENCH_serve_throughput.json")
    if target and RESULTS:
        RESULTS["_meta"] = {"quick": QUICK}
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


def _routes(po_binding) -> RouteTable:
    table = RouteTable()
    table.add_template("/ship_to", Template(po_binding, SHIP_TO))
    return table


def _heavy_routes(po_binding) -> RouteTable:
    table = RouteTable()
    table.add_template("/order", Template(po_binding, HEAVY_SOURCE))
    return table


async def _read_response(reader) -> bytes:
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    chunked = False
    for line in head.split(b"\r\n"):
        lowered = line.lower()
        if lowered.startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
        elif lowered.startswith(b"transfer-encoding:") and b"chunked" in lowered:
            chunked = True
    if not chunked:
        return await reader.readexactly(length)
    pieces = []
    while True:
        size_line = await reader.readline()
        size = int(size_line.strip(), 16)
        payload = await reader.readexactly(size + 2)
        if size == 0:
            return b"".join(pieces)
        pieces.append(payload[:-2])


async def _client_burst(port: int, count: int, target: str = TARGET) -> bytes:
    """*count* keep-alive requests on one connection; returns last body."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    payload = f"GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n".encode()
    body = b""
    for _ in range(count):
        writer.write(payload)
        await writer.drain()
        body = await _read_response(reader)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return body


async def _measure(po_binding) -> tuple[dict, bytes]:
    server = ReproServer(_routes(po_binding), port=0, request_timeout=30.0)
    await server.start()
    try:
        await _client_burst(server.port, 20)  # warmup
        rates = []
        body = b""
        for _ in range(REPEATS):
            start = time.perf_counter()
            body = await _client_burst(server.port, REQUESTS)
            elapsed = time.perf_counter() - start
            rates.append(REQUESTS / elapsed)
        result = {
            "requests_per_sec": round(max(rates), 1),
            "requests": REQUESTS,
            "repeats": REPEATS,
            "response_bytes": len(body),
            "floor_rps": bench_floor("serve_rps", QUICK),
            "served_total": server.stats["requests"],
        }
        return result, body
    finally:
        server.request_shutdown()
        await server.drain()


async def _measure_concurrent(po_binding) -> dict:
    server = ReproServer(
        _routes(po_binding),
        port=0,
        request_timeout=30.0,
        max_connections=CONCURRENCY * 2,
    )
    await server.start()
    try:
        await _client_burst(server.port, 20)  # warmup
        per_client = max(REQUESTS // CONCURRENCY, 20)
        rates = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            await asyncio.gather(
                *(
                    _client_burst(server.port, per_client)
                    for _ in range(CONCURRENCY)
                )
            )
            elapsed = time.perf_counter() - start
            rates.append(CONCURRENCY * per_client / elapsed)
        return {
            "requests_per_sec": round(max(rates), 1),
            "clients": CONCURRENCY,
            "requests_per_client": per_client,
            "repeats": REPEATS,
            "floor_rps": bench_floor("serve_concurrent_rps", QUICK),
        }
    finally:
        server.request_shutdown()
        await server.drain()


async def _measure_hot_cache(po_binding) -> tuple[dict, bytes, bytes, bytes]:
    """Cold vs hot req/s on the heavy route, plus three bodies for parity."""
    routes = _heavy_routes(po_binding)

    async def run_server(**options) -> tuple[float, bytes]:
        server = ReproServer(
            routes, port=0, request_timeout=30.0, **options
        )
        await server.start()
        try:
            await _client_burst(server.port, 5, HEAVY_TARGET)  # warmup
            best = 0.0
            body = b""
            for _ in range(REPEATS):
                start = time.perf_counter()
                body = await _client_burst(
                    server.port, HEAVY_REQUESTS, HEAVY_TARGET
                )
                elapsed = time.perf_counter() - start
                best = max(best, HEAVY_REQUESTS / elapsed)
            return best, body
        finally:
            server.request_shutdown()
            await server.drain()

    cold_rps, cold_body = await run_server(cache_entries=0)
    hot_rps, hot_body = await run_server()  # cache on (default)
    # One streamed pass: _read_response de-chunks, so the returned body
    # is directly comparable to the buffered ones.
    _, streamed_body = await run_server(cache_entries=0, stream=True)
    result = {
        "cold_rps": round(cold_rps, 1),
        "hot_rps": round(hot_rps, 1),
        "hot_over_cold": round(hot_rps / cold_rps, 2),
        "requests": HEAVY_REQUESTS,
        "holes_per_render": 3 * HEAVY_ITEM_COUNT,
        "response_bytes": len(cold_body),
        "floor_ratio": bench_floor("serve_hot_cache_ratio", QUICK),
    }
    return result, cold_body, hot_body, streamed_body


def test_sustained_throughput_and_byte_parity(po_binding):
    expected = Template(po_binding, SHIP_TO).render_text(**HOLE_VALUES)
    result, body = asyncio.run(_measure(po_binding))
    # Parity first: speed means nothing if the bytes are wrong.
    assert body == expected.encode("utf-8")
    RESULTS["serve:ship_to"] = result
    floor = result["floor_rps"]
    print(
        f"\nserve: {result['requests_per_sec']:.0f} req/s sustained "
        f"({result['response_bytes']} bytes/response, "
        f"floor {floor} req/s)"
    )
    assert result["requests_per_sec"] >= floor, (
        f"serving tier sustained only {result['requests_per_sec']:.0f} "
        f"req/s (floor {floor})"
    )


def test_concurrent_aggregate_throughput(po_binding):
    result = asyncio.run(_measure_concurrent(po_binding))
    RESULTS["serve:concurrent"] = result
    floor = result["floor_rps"]
    print(
        f"\nserve concurrent: {result['requests_per_sec']:.0f} req/s "
        f"aggregate across {result['clients']} connections "
        f"(floor {floor} req/s)"
    )
    assert result["requests_per_sec"] >= floor, (
        f"aggregate throughput {result['requests_per_sec']:.0f} req/s "
        f"across {result['clients']} clients (floor {floor})"
    )


def test_hot_cache_ratio_and_three_way_parity(po_binding):
    expected = Template(po_binding, HEAVY_SOURCE).render_text(**HEAVY_VALUES)
    result, cold, hot, streamed = asyncio.run(_measure_hot_cache(po_binding))
    # Three-way parity: direct render, cached replay, de-chunked stream.
    assert cold == expected.encode("utf-8")
    assert hot == cold
    assert streamed == cold
    RESULTS["serve:hot_cache"] = result
    floor = result["floor_ratio"]
    print(
        f"\nserve hot cache: {result['hot_rps']:.0f} req/s hot vs "
        f"{result['cold_rps']:.0f} cold — {result['hot_over_cold']:.1f}x "
        f"({result['holes_per_render']} holes/render, floor {floor}x)"
    )
    assert result["hot_over_cold"] >= floor, (
        f"response cache bought only {result['hot_over_cold']:.1f}x over "
        f"uncached rendering (floor {floor}x)"
    )

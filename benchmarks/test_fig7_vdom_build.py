"""FIG7 — building the same fragment through V-DOM.

The typed counterpart of FIG4: construction costs more per node (the
content DFA runs at every constructor), but the result is valid by
construction — CLAIM-2 shows where that trade pays for itself.
"""

import pytest

from repro.dom import serialize
from repro.errors import VdomTypeError
from repro.xsd import SchemaValidator

from benchmarks.test_fig4_dom_build import build_fig4_fragment
from benchmarks.conftest import build_typed_purchase_order


def build_fig7_fragment(binding):
    factory = binding.factory
    return factory.create_purchase_order(
        factory.create_ship_to(
            factory.create_name("Alice Smith"),
            factory.create_street("123 Maple Street"),
            factory.create_city("Mill Valley"),
            factory.create_state("CA"),
            factory.create_zip("90952"),
        ),
        factory.create_bill_to(
            factory.create_name("Robert Smith"),
            factory.create_street("8 Oak Avenue"),
            factory.create_city("Old Town"),
            factory.create_state("PA"),
            factory.create_zip("95819"),
        ),
        factory.create_comment("Hurry, my lawn is going wild"),
        factory.create_items(),
        order_date="1999-10-20",
    )


def test_fig7_artifact_matches_fig4_output(po_binding):
    """Typed and untyped construction produce the same document text."""
    typed = build_fig7_fragment(po_binding)
    untyped = build_fig4_fragment()
    assert serialize(po_binding.document(typed)) == serialize(untyped)


def test_fig7_invalid_tree_is_unrepresentable(po_binding):
    """The Fig. 7 point: the invalid variant of FIG4 cannot be built."""
    typed = build_fig7_fragment(po_binding)
    with pytest.raises(VdomTypeError):
        typed.add(po_binding.factory.create_comment("second comment"))


def test_fig7_output_validates_without_a_validator_pass(po_binding):
    typed = build_fig7_fragment(po_binding)
    validator = SchemaValidator(po_binding.schema)
    assert validator.validate(po_binding.document(typed)) == []


def test_bench_vdom_build_fragment(benchmark, po_binding):
    element = benchmark(build_fig7_fragment, po_binding)
    assert element.tag_name == "purchaseOrder"


def test_bench_vdom_build_100_items(benchmark, po_binding):
    element = benchmark(build_typed_purchase_order, po_binding, 100)
    assert len(element.items.item_list) == 100


def test_bench_vdom_vs_dom_overhead(benchmark, po_binding):
    """Construction overhead of enforcement, same fragment as FIG4."""
    benchmark(build_fig7_fragment, po_binding)

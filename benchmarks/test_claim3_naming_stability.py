"""CLAIM-3 — naming-scheme stability under schema evolution.

The paper's Sect. 3 walks through three evolution scenarios; this
experiment counts, per naming scheme, how many generated names survive
each step (a surviving name = client code that keeps compiling).
"""

import pytest

from repro.xsd import parse_schema
from repro.core import generate_interfaces, normalize
from repro.core.naming import (
    ExplicitFirstNaming,
    InheritedNaming,
    MergedNaming,
    SynthesizedNaming,
)
from repro.schemas.variants import (
    NAMED_GROUP_SCHEMA,
    PURCHASE_ORDER_CHOICE3_SCHEMA,
    PURCHASE_ORDER_CHOICE_SCHEMA,
)

SCHEMES = {
    "synthesized": SynthesizedNaming,
    "inherited": InheritedNaming,
    "merged": MergedNaming,
    "explicit-first": ExplicitFirstNaming,
}


def interface_names(schema_text: str, scheme) -> set[str]:
    schema = parse_schema(schema_text)
    normalize(schema, scheme())
    model = generate_interfaces(schema)
    return {interface.key for interface in model}


#: (scenario, before-schema, after-schema)
SCENARIOS = [
    (
        "add-choice-alternative",
        PURCHASE_ORDER_CHOICE_SCHEMA,
        PURCHASE_ORDER_CHOICE3_SCHEMA,
    ),
]


@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_bench_normalization_cost(benchmark, scheme_name):
    scheme = SCHEMES[scheme_name]

    def run():
        schema = parse_schema(PURCHASE_ORDER_CHOICE_SCHEMA)
        return normalize(schema, scheme())

    result = benchmark(run)
    assert result.schema is not None


def test_claim3_stability_table(capsys):
    """The paper's qualitative comparison, quantified."""
    print(
        "\nscenario                 scheme          surviving  broken  new"
    )
    outcomes = {}
    for scenario, before_text, after_text in SCENARIOS:
        for scheme_name, scheme in SCHEMES.items():
            before = interface_names(before_text, scheme)
            after = interface_names(after_text, scheme)
            surviving = len(before & after)
            broken = len(before - after)
            new = len(after - before)
            outcomes[(scenario, scheme_name)] = (surviving, broken, new)
            print(
                f"{scenario:24s} {scheme_name:15s} {surviving:9d} "
                f"{broken:7d} {new:4d}"
            )
    # The paper's conclusion: inherited (and therefore merged) naming
    # keeps every pre-existing name when a choice alternative is added;
    # synthesized naming breaks the group name and its dependents.
    scenario = "add-choice-alternative"
    assert outcomes[(scenario, "synthesized")][1] > 0
    assert outcomes[(scenario, "inherited")][1] == 0
    assert outcomes[(scenario, "merged")][1] == 0
    assert outcomes[(scenario, "explicit-first")][1] == 0


def test_claim3_explicit_name_scenario():
    """Named groups survive any internal reshuffling by construction."""
    names = interface_names(NAMED_GROUP_SCHEMA, ExplicitFirstNaming)
    assert "AddressGroupGroup" in names


def test_claim3_synthesized_breakage_is_the_group_chain():
    before = interface_names(PURCHASE_ORDER_CHOICE_SCHEMA, SynthesizedNaming)
    after = interface_names(
        PURCHASE_ORDER_CHOICE3_SCHEMA, SynthesizedNaming
    )
    broken = before - after
    assert any("singAddrORtwoAddr" in name for name in broken)

"""Ablation — compiled P-XML templates vs interpreted rendering.

The paper's preprocessor emits code (Fig. 11); an interpreter over the
checked template AST gives the same guarantee without code generation.
This ablation measures what compilation buys per render.
"""

from repro.dom import serialize
from repro.pxml import Template
from repro.pxml.runtime import render_interpreted

SOURCE = """\
<item partNum="$sku$">
  <productName>$product:text$</productName>
  <quantity>$qty$</quantity>
  <USPrice>$price$</USPrice>
  <comment>$note:text$</comment>
</item>"""

VALUES = dict(sku="872-AA", product="Lawnmower", qty=3, price="148.95",
              note="Confirm this is electric")


def test_modes_agree(po_binding):
    template = Template(po_binding, SOURCE)
    compiled_output = serialize(template.render(**VALUES))
    interpreted_output = serialize(
        render_interpreted(template.checked, **VALUES)
    )
    assert compiled_output == interpreted_output


def test_bench_compiled_render(benchmark, po_binding):
    template = Template(po_binding, SOURCE, compiled=True)
    element = benchmark(template.render, **VALUES)
    assert element.part_num == "872-AA"


def test_bench_interpreted_render(benchmark, po_binding):
    template = Template(po_binding, SOURCE, compiled=False)
    element = benchmark(template.render, **VALUES)
    assert element.part_num == "872-AA"


def test_bench_check_only(benchmark, po_binding):
    """The one-time cost interpretation avoids: compilation."""
    checked_template = Template(po_binding, SOURCE, compiled=False)

    def run():
        return Template(po_binding, SOURCE, compiled=True)

    template = benchmark(run)
    assert template.generated_source is not None
    assert checked_template.hole_names == template.hole_names

"""Ablation — construction-time enforcement vs deferred whole-tree check.

V-DOM validates at every constructor and mutation (`validate_on_mutate`);
the alternative defers everything to one `check_valid_deep` at the end.
Deferring is faster per operation but loses the paper's property that an
invalid tree can never exist (and error reports lose the construction
site).
"""

import pytest

from repro.core import bind
from repro.errors import VdomTypeError
from repro.schemas import PURCHASE_ORDER_SCHEMA

from benchmarks.conftest import build_typed_purchase_order

ITEMS = 200


@pytest.fixture(scope="module")
def eager_binding():
    return bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=True)


@pytest.fixture(scope="module")
def deferred_binding():
    return bind(PURCHASE_ORDER_SCHEMA, validate_on_mutate=False)


def test_modes_agree_on_valid_input(eager_binding, deferred_binding):
    from repro.dom import serialize

    eager = build_typed_purchase_order(eager_binding, 25)
    deferred = build_typed_purchase_order(deferred_binding, 25)
    deferred.check_valid_deep()
    assert serialize(eager) == serialize(deferred)


def test_deferred_mode_lets_invalid_trees_exist(deferred_binding):
    """The property the ablation trades away."""
    factory = deferred_binding.factory
    dangling = factory.create_ship_to(factory.create_name("n"))
    assert dangling.tag_name == "shipTo"  # it exists...
    with pytest.raises(VdomTypeError):
        dangling.check_valid()  # ...and is invalid


def test_eager_mode_never_lets_them_exist(eager_binding):
    factory = eager_binding.factory
    with pytest.raises(VdomTypeError):
        factory.create_ship_to(factory.create_name("n"))


def test_bench_eager_construction(benchmark, eager_binding):
    result = benchmark(build_typed_purchase_order, eager_binding, ITEMS)
    assert len(result.items.item_list) == ITEMS


def test_bench_deferred_construction_plus_final_check(
    benchmark, deferred_binding
):
    def run():
        typed = build_typed_purchase_order(deferred_binding, ITEMS)
        typed.check_valid_deep()
        return typed

    result = benchmark(run)
    assert len(result.items.item_list) == ITEMS


def test_bench_deferred_construction_unchecked(benchmark, deferred_binding):
    result = benchmark(build_typed_purchase_order, deferred_binding, ITEMS)
    assert len(result.items.item_list) == ITEMS

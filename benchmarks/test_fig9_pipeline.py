"""FIG9 — the validation pipeline: preprocessor generator → preprocessor
→ V-DOM program.

Measures each stage of the paper's tooling: specializing the
preprocessor to a schema (binding generation), preprocessing a module
(static checking + code substitution), and running the result.
"""

from repro.core import bind
from repro.pxml import preprocess_module
from repro.pxml.preprocessor import make_preprocessor
from repro.schemas import WML_SCHEMA

PROGRAM = '''
def option_row(full, label):
    return pxml('<option value="$full$">$label:text$</option>')

def page(current, select):
    return pxml("<p><b>$current:text$</b><br/>$select:select$<br/></p>")

def empty_select():
    return pxml('<select name="directories"><option>..</option></select>')
'''


def test_fig9_pipeline_artifact(wml_binding):
    preprocessor = make_preprocessor(wml_binding)
    preamble = (
        "from repro.core import bind\n"
        "from repro.schemas import WML_SCHEMA\n"
        "binding = bind(WML_SCHEMA)\n"
        "factory = binding.factory\n"
    )
    result = preprocessor(preamble + PROGRAM)
    assert result.replaced == 3
    assert "factory.create_option(" in result.source
    namespace: dict = {}
    exec(compile(result.source, "<fig9>", "exec"), namespace)
    option = namespace["option_row"]("/a", "a")
    assert option.get_attribute("value") == "/a"


def test_bench_preprocessor_generation(benchmark):
    """Stage 1: the preprocessor generator (schema → binding)."""
    binding = benchmark(bind, WML_SCHEMA)
    assert binding.schema is not None


def test_bench_preprocessing(benchmark, wml_binding):
    """Stage 2: statically check + rewrite the module."""
    preamble = (
        "binding = None\nfactory = None\n"
    )
    result = benchmark(preprocess_module, preamble + PROGRAM, wml_binding)
    assert result.replaced == 3


def test_bench_preprocessed_program_run(benchmark, wml_binding):
    """Stage 3: run the generated V-DOM program."""
    preamble = (
        "from repro.core import bind\n"
        "from repro.schemas import WML_SCHEMA\n"
        "binding = bind(WML_SCHEMA)\n"
        "factory = binding.factory\n"
    )
    result = preprocess_module(preamble + PROGRAM, wml_binding)
    namespace: dict = {}
    exec(compile(result.source, "<fig9-run>", "exec"), namespace)

    def run():
        select = namespace["empty_select"]()
        for index in range(20):
            select.add(namespace["option_row"](f"/d/{index}", f"d{index}"))
        return namespace["page"]("/workspace", select)

    page = benchmark(run)
    assert len(page.child_elements()) == 4  # b, br, select, br

"""FIG10/FIG11 — the P-XML directory page and its compiled form.

Regenerates the Sect. 5 example: the Fig. 10 template compiles into
Fig. 11-shaped factory calls, and both produce byte-identical pages to
the Fig. 8 server-page baseline.
"""

from repro.dom import parse_document, serialize
from repro.pxml import Template
from repro.xsd import SchemaValidator

from benchmarks.test_fig8_serverpage import CONTEXT, DIRECTORY_PAGE
from repro.serverpages import ServerPage


def render_directory_page(binding, current_dir, parent_dir, sub_dirs):
    """The Fig. 10 program, P-XML style."""
    factory = binding.factory
    option_template = Template(
        binding, '<option value="$value$">$label:text$</option>'
    )
    select = factory.create_select(
        option_template.render(value=parent_dir, label=".."),
        name="directories",
    )
    for sub_dir, label in sub_dirs:
        select.add(option_template.render(value=sub_dir, label=label))
    page_template = Template(
        binding, "<p><b>$current:text$</b><br/>$s:select$<br/></p>"
    )
    page = page_template.render(current=current_dir, s=select)
    return factory.create_wml(
        factory.create_card(page, id="dirs", title="Directories")
    )


def test_fig10_output_matches_fig8_baseline(wml_binding):
    """P-XML and the server page emit the same page — but P-XML proved
    validity before running."""
    typed = render_directory_page(
        wml_binding,
        CONTEXT["currentDir"],
        CONTEXT["parentDir"],
        CONTEXT["subDirs"],
    )
    baseline = ServerPage(DIRECTORY_PAGE).render(**CONTEXT)
    assert serialize(typed) == baseline


def test_fig11_generated_code_shape(wml_binding):
    template = Template(
        wml_binding, "<p><b>$current:text$</b><br/>$s:select$<br/></p>"
    )
    source = template.generated_source
    assert "factory.create_p(" in source
    assert "factory.create_b(" in source
    assert source.count("create_p_type_cc1_group_br") == 2 or (
        source.count("create_br") == 2
    )


def test_fig10_output_validates(wml_binding):
    typed = render_directory_page(wml_binding, "/x", "/", [("/x/a", "a")])
    document = parse_document(serialize(wml_binding.document(typed)))
    assert SchemaValidator(wml_binding.schema).validate(document) == []


def test_bench_template_check_and_compile(benchmark, wml_binding):
    """The pay-once cost: parse + static check + compile."""
    source = "<p><b>$current:text$</b><br/>$s:select$<br/></p>"
    template = benchmark(Template, wml_binding, source)
    assert template.hole_names == ["current", "s"]


def test_bench_template_render(benchmark, wml_binding):
    """The per-render cost after compilation."""
    factory = wml_binding.factory
    template = Template(
        wml_binding, "<p><b>$current:text$</b><br/>$s:select$<br/></p>"
    )
    select = factory.create_select(
        factory.create_option("..", value="/ws"), name="dirs"
    )
    page = benchmark(template.render, current="/ws/media", s=select)
    assert page.tag_name == "p"


def test_bench_full_directory_page(benchmark, wml_binding):
    typed = benchmark(
        render_directory_page,
        wml_binding,
        CONTEXT["currentDir"],
        CONTEXT["parentDir"],
        CONTEXT["subDirs"],
    )
    assert serialize(typed).count("<option") == 3

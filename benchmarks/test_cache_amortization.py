"""CACHE — preparation pays once per machine, not once per process.

The persistent compilation cache moves the paper's program-preparation
work (XSD parse, normalization, interface generation, content-model
DFA construction) into a content-addressed on-disk artifact.  This
experiment measures the amortization directly:

* **cold**  — empty cache directory: full compile + artifact write,
* **warm**  — fresh :class:`~repro.cache.ReproCache` over a populated
  directory: disk read + unpickle + class materialization,
* **live**  — repeat bind on the *same* cache object: the in-process
  binding LRU answers without touching disk at all.

Acceptance floor: warm-start must be at least 5x faster than cold for
both the purchase-order and the XHTML-subset schemas.

Environment knobs (used by the CI smoke job):

* ``REPRO_BENCH_QUICK=1``      — fewer iterations, same assertions,
* ``REPRO_BENCH_JSON=<path>``  — write the measured numbers as JSON.
"""

import json
import os
import shutil
import statistics
import time

import pytest

from benchmarks import bench_floor
from repro.cache import ReproCache
from repro.pxml import Template
from repro.schemas import PURCHASE_ORDER_SCHEMA
from repro.schemas.xhtml import XHTML_SUBSET_SCHEMA

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")
ITERATIONS = 5 if QUICK else 25
#: the ISSUE's acceptance criterion, shared with the CI bench-gate
#: via benchmarks/floors.json (no quick relaxation: the ratio is
#: stable even at low iteration counts)
REQUIRED_SPEEDUP = bench_floor("cache_warm_speedup", QUICK)

#: module-level result sink, flushed to $REPRO_BENCH_JSON at teardown
RESULTS: dict[str, dict[str, float]] = {}


@pytest.fixture(scope="module", autouse=True)
def _write_json_report():
    yield
    target = os.environ.get("REPRO_BENCH_JSON")
    if target and RESULTS:
        RESULTS["_meta"] = {"quick": QUICK}
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(RESULTS, handle, indent=2, sort_keys=True)


def _median_ms(samples):
    return statistics.median(samples) * 1000.0


def measure_amortization(schema_text, cache_dir, iterations=ITERATIONS):
    """Median cold / warm / live bind times (ms) over *iterations* runs."""
    cold, warm, live = [], [], []
    for _ in range(iterations):
        shutil.rmtree(cache_dir, ignore_errors=True)

        start = time.perf_counter()
        ReproCache.persistent(cache_dir).bind(schema_text)
        cold.append(time.perf_counter() - start)

        # A fresh cache object sees none of the first one's live state:
        # this is the cross-process warm start (disk hit).
        start = time.perf_counter()
        reopened = ReproCache.persistent(cache_dir)
        reopened.bind(schema_text)
        warm.append(time.perf_counter() - start)

        start = time.perf_counter()
        reopened.bind(schema_text)
        live.append(time.perf_counter() - start)
    shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cold_ms": _median_ms(cold),
        "warm_ms": _median_ms(warm),
        "live_ms": _median_ms(live),
        "speedup": _median_ms(cold) / _median_ms(warm),
        "iterations": iterations,
    }


@pytest.mark.parametrize(
    "name, schema_text",
    [
        ("purchase_order", PURCHASE_ORDER_SCHEMA),
        ("xhtml_subset", XHTML_SUBSET_SCHEMA),
    ],
)
def test_warm_start_speedup(name, schema_text, tmp_path, capsys):
    """Cold vs warm vs live bind; warm must clear the 5x floor."""
    result = measure_amortization(schema_text, str(tmp_path / "cache"))
    RESULTS[f"bind:{name}"] = result
    print(
        f"\n{name}: cold {result['cold_ms']:.2f}ms  "
        f"warm {result['warm_ms']:.2f}ms  "
        f"live {result['live_ms']:.3f}ms  "
        f"speedup {result['speedup']:.1f}x"
    )
    assert result["speedup"] >= REQUIRED_SPEEDUP, (
        f"warm start of {name} is only {result['speedup']:.1f}x faster "
        f"than cold (need >= {REQUIRED_SPEEDUP}x)"
    )
    # The live LRU must beat even the disk-warm path.
    assert result["live_ms"] <= result["warm_ms"]


def test_template_warm_start(tmp_path, capsys):
    """Cached templates skip parse + static check + code generation."""
    source = (
        '<shipTo country="US"><name>$n$</name>'
        "<street>123 Maple Street</street><city>Mill Valley</city>"
        "<state>CA</state><zip>90952</zip></shipTo>"
    )
    cache_dir = str(tmp_path / "cache")
    cold, warm = [], []
    for _ in range(ITERATIONS):
        shutil.rmtree(cache_dir, ignore_errors=True)
        cache = ReproCache.persistent(cache_dir)
        binding = cache.bind(PURCHASE_ORDER_SCHEMA)

        start = time.perf_counter()
        first = Template(binding, source, cache=cache)
        cold.append(time.perf_counter() - start)

        reopened = ReproCache.persistent(cache_dir)
        rebound = reopened.bind(PURCHASE_ORDER_SCHEMA)
        start = time.perf_counter()
        second = Template(rebound, source, cache=reopened)
        warm.append(time.perf_counter() - start)

        assert str(first.render(n="Alice")) == str(second.render(n="Alice"))
    shutil.rmtree(cache_dir, ignore_errors=True)
    result = {
        "cold_ms": _median_ms(cold),
        "warm_ms": _median_ms(warm),
        "speedup": _median_ms(cold) / _median_ms(warm),
        "iterations": ITERATIONS,
    }
    RESULTS["template:ship_to"] = result
    print(
        f"\ntemplate: cold {result['cold_ms']:.2f}ms  "
        f"warm {result['warm_ms']:.2f}ms  speedup {result['speedup']:.1f}x"
    )
    # The checked+compiled form is reused; loading must not be slower.
    assert result["warm_ms"] <= result["cold_ms"]


def test_bench_bind_cold(benchmark, tmp_path):
    """pytest-benchmark view of the cold path (compile + artifact write)."""
    cache_dir = str(tmp_path / "cache")

    def cold_bind():
        shutil.rmtree(cache_dir, ignore_errors=True)
        return ReproCache.persistent(cache_dir).bind(PURCHASE_ORDER_SCHEMA)

    binding = benchmark(cold_bind)
    assert "purchaseOrder" in binding.schema.elements


def test_bench_bind_warm(benchmark, tmp_path):
    """pytest-benchmark view of the warm path (disk hit, fresh cache)."""
    cache_dir = str(tmp_path / "cache")
    ReproCache.persistent(cache_dir).bind(PURCHASE_ORDER_SCHEMA)

    def warm_bind():
        return ReproCache.persistent(cache_dir).bind(PURCHASE_ORDER_SCHEMA)

    binding = benchmark(warm_bind)
    assert "purchaseOrder" in binding.schema.elements
